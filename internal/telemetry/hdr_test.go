package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sortedQuantile is the oracle: the exact q-quantile of a sample slice
// using the same ceil-rank rule the histogram implements.
func sortedQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestHDRQuantileAccuracy drives log-uniform samples spanning six
// orders of magnitude through the histogram and checks every reported
// quantile against the sorted-slice oracle within the structural error
// bound (1/hdrSubHalf relative, plus one tick of quantization).
func TestHDRQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(408))
	h := NewHDRHistogram()
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// 10 µs .. 100 s, log-uniform.
		v := math.Pow(10, -5+7*rng.Float64())
		h.Observe(v)
		samples = append(samples, v)
	}
	snap := h.Snapshot()
	if snap.Count != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(samples))
	}
	relErr := 1.0/float64(hdrSubHalf) + 1e-6
	for _, q := range []float64{0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 0.9999, 1} {
		got := snap.Quantile(q)
		want := sortedQuantile(samples, q)
		if diff := math.Abs(got - want); diff > want*relErr+hdrTick {
			t.Errorf("q=%v: got %v want %v (err %v, bound %v)", q, got, want, diff, want*relErr)
		}
	}
	wantMean := 0.0
	for _, v := range samples {
		wantMean += v
	}
	wantMean /= float64(len(samples))
	if m := snap.Mean(); math.Abs(m-wantMean) > 1e-9*wantMean {
		t.Errorf("mean = %v, want %v", m, wantMean)
	}
	if snap.Max != sortedQuantile(samples, 1) {
		t.Errorf("max = %v, want %v", snap.Max, sortedQuantile(samples, 1))
	}
}

// TestHDRConcurrentObserve hammers one histogram from many goroutines;
// under -race this doubles as the data-race check, and the final count
// and sum must account for every sample exactly.
func TestHDRConcurrentObserve(t *testing.T) {
	h := NewHDRHistogram()
	const goroutines = 16
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(rng.Float64())
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", snap.Count, goroutines*perG)
	}
	var slotTotal uint64
	for _, c := range snap.Counts {
		slotTotal += c
	}
	if slotTotal != snap.Count {
		t.Fatalf("slot total %d != count %d", slotTotal, snap.Count)
	}
	if snap.Min < 0 || snap.Max > 1 {
		t.Fatalf("min/max out of range: %v/%v", snap.Min, snap.Max)
	}
}

// TestHDRMergeAssociativity checks that snapshot merging is associative
// and commutative: (a∪b)∪c == a∪(b∪c) == (c∪a)∪b, field for field.
func TestHDRMergeAssociativity(t *testing.T) {
	mk := func(seed int64, n int, scale float64) *HDRSnapshot {
		h := NewHDRHistogram()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			h.Observe(scale * rng.Float64())
		}
		return h.Snapshot()
	}
	a := func() *HDRSnapshot { return mk(1, 1000, 0.01) }
	b := func() *HDRSnapshot { return mk(2, 500, 1.0) }
	c := func() *HDRSnapshot { return mk(3, 2000, 10.0) }

	left := a()
	if err := left.Merge(b()); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(c()); err != nil {
		t.Fatal(err)
	}
	bc := b()
	if err := bc.Merge(c()); err != nil {
		t.Fatal(err)
	}
	right := a()
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}
	rotated := c()
	if err := rotated.Merge(a()); err != nil {
		t.Fatal(err)
	}
	if err := rotated.Merge(b()); err != nil {
		t.Fatal(err)
	}
	for _, other := range []*HDRSnapshot{right, rotated} {
		if other.Count != left.Count || math.Abs(other.Sum-left.Sum) > 1e-9 ||
			other.Min != left.Min || other.Max != left.Max {
			t.Fatalf("merge not associative: %+v vs %+v", left, other)
		}
		for i := range left.Counts {
			if left.Counts[i] != other.Counts[i] {
				t.Fatalf("slot %d differs after merge order change", i)
			}
		}
	}
	// Quantiles of the merged view match an oracle over the union.
	var union []float64
	for seed, spec := range map[int64]struct {
		n     int
		scale float64
	}{1: {1000, 0.01}, 2: {500, 1.0}, 3: {2000, 10.0}} {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < spec.n; i++ {
			union = append(union, spec.scale*rng.Float64())
		}
	}
	relErr := 1.0/float64(hdrSubHalf) + 1e-6
	for _, q := range []float64{0.5, 0.99, 0.999} {
		got, want := left.Quantile(q), sortedQuantile(union, q)
		if math.Abs(got-want) > want*relErr+hdrTick {
			t.Errorf("merged q=%v: got %v want %v", q, got, want)
		}
	}
	// Merging an empty or nil snapshot is a no-op.
	before := left.Count
	if err := left.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(NewHDRHistogram().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if left.Count != before {
		t.Fatalf("empty merge changed count")
	}
	// Mismatched slot layouts are rejected, not silently mangled.
	if err := left.Merge(&HDRSnapshot{Counts: make([]uint64, 3), Count: 1}); err == nil {
		t.Fatal("merge of mismatched layouts succeeded")
	}
}

// TestHDRPrometheusExposition checks the text rendering: cumulative le
// buckets, a +Inf bucket equal to the total count, _sum/_count lines,
// and that the document round-trips through the telemetry text parser.
func TestHDRPrometheusExposition(t *testing.T) {
	h := NewHDRHistogram()
	for _, v := range []float64{0.0001, 0.005, 0.005, 0.25, 30} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := h.Snapshot().WritePrometheus(&b, "rai_bench_latency_seconds", L("phase", "total")); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	snap, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	if v, ok := snap.Value("rai_bench_latency_seconds_count", L("phase", "total")); !ok || v != 5 {
		t.Fatalf("_count = %v,%v want 5\n%s", v, ok, text)
	}
	inf, ok := snap.Value("rai_bench_latency_seconds_bucket", L("phase", "total"), L("le", "+Inf"))
	if !ok || inf != 5 {
		t.Fatalf("+Inf bucket = %v,%v want 5\n%s", inf, ok, text)
	}
	// Buckets are cumulative: values never decrease as le grows.
	var lastLE, lastV float64 = -1, -1
	for _, s := range snap.Samples {
		if s.Name != "rai_bench_latency_seconds_bucket" || s.Labels["le"] == "+Inf" {
			continue
		}
		le, err := parseValue(s.Labels["le"])
		if err != nil {
			t.Fatalf("bad le %q", s.Labels["le"])
		}
		if le < lastLE {
			t.Fatalf("le bounds not ascending in exposition:\n%s", text)
		}
		if s.Value < lastV {
			t.Fatalf("bucket counts not cumulative at le=%v:\n%s", le, text)
		}
		lastLE, lastV = le, s.Value
	}
	if lastV > inf {
		t.Fatalf("finite bucket exceeds +Inf bucket:\n%s", text)
	}
	if v, ok := snap.Value("rai_bench_latency_seconds_sum", L("phase", "total")); !ok || math.Abs(v-30.2601) > 1e-9 {
		t.Fatalf("_sum = %v,%v\n%s", v, ok, text)
	}
}
