package telemetry

// Liveness and readiness endpoints for every daemon's metrics mux,
// complementing the ready-file handshake: the file tells a supervisor
// the process booted once; /readyz tells a load balancer (or the bench
// harness) whether the process is accepting work *right now*. The
// distinction matters during graceful drain — a draining daemon is
// alive (don't kill it harder) but not ready (stop routing to it).

import (
	"net/http"
	"sync/atomic"
)

// Health is a daemon's liveness/readiness state. The zero value is
// alive but not ready; daemons flip SetReady(true) once serving and
// SetReady(false) when drain begins. All methods are nil-safe.
type Health struct {
	ready atomic.Bool
}

// NewHealth returns a not-yet-ready Health.
func NewHealth() *Health { return &Health{} }

// SetReady flips the readiness state.
func (h *Health) SetReady(ready bool) {
	if h == nil {
		return
	}
	h.ready.Store(ready)
}

// Ready reports the current readiness state.
func (h *Health) Ready() bool {
	if h == nil {
		return false
	}
	return h.ready.Load()
}

// Mount registers GET /healthz (200 while the process runs — liveness
// is the ability to answer at all) and GET /readyz (200 "ready" or
// 503 "draining") on mux. Pass it into Registry.ServeMetrics alongside
// MountPprof.
func (h *Health) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !h.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("draining\n"))
			return
		}
		_, _ = w.Write([]byte("ready\n"))
	})
}
