// Package archivex packs and unpacks the .tar.bz2 archives RAI moves
// between clients, the file server, and workers: the student's project
// directory on submission and the container's /build directory on
// completion.
//
// Compression uses internal/bzip2w (writing) and compress/bzip2
// (reading). Unpacking is hardened the way a grading pipeline must be:
// entry paths are validated against traversal, and byte/file-count limits
// bound decompression bombs.
package archivex

import (
	"archive/tar"
	"bytes"
	"compress/bzip2"
	"errors"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"strings"

	"rai/internal/bzip2w"
	"rai/internal/vfs"
)

// Limits bounds unpacking. Zero fields mean "use the default".
type Limits struct {
	MaxBytes   int64 // total decompressed bytes (default 1 GiB)
	MaxFiles   int   // number of entries (default 100_000)
	MaxPerFile int64 // per-file bytes (default 256 MiB)
}

// Defaults chosen for a student project archive.
const (
	defaultMaxBytes   = 1 << 30
	defaultMaxFiles   = 100_000
	defaultMaxPerFile = 256 << 20
)

func (l Limits) withDefaults() Limits {
	if l.MaxBytes == 0 {
		l.MaxBytes = defaultMaxBytes
	}
	if l.MaxFiles == 0 {
		l.MaxFiles = defaultMaxFiles
	}
	if l.MaxPerFile == 0 {
		l.MaxPerFile = defaultMaxPerFile
	}
	return l
}

// Errors reported by unpacking.
var (
	ErrTraversal = errors.New("archive entry escapes destination")
	ErrTooLarge  = errors.New("archive exceeds size limits")
	ErrBadEntry  = errors.New("unsupported archive entry")
)

// PackVFS produces a .tar.bz2 of the subtree at root inside f. Entry
// names are relative to root and sorted (vfs walk order), so output is
// deterministic for a given tree. Thin adapter over PackVFSTo.
func PackVFS(f *vfs.FS, root string) ([]byte, error) {
	var buf bytes.Buffer
	if err := PackVFSTo(&buf, f, root); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// PackVFSTo streams a .tar.bz2 of the subtree at root inside f to w.
func PackVFSTo(w io.Writer, f *vfs.FS, root string) error {
	bz, err := bzip2w.NewWriterLevel(w, 6)
	if err != nil {
		return err
	}
	tw := tar.NewWriter(bz)
	rootClean := path.Clean(root)
	err = f.Walk(rootClean, func(p string, fi vfs.FileInfo) error {
		rel := strings.TrimPrefix(p, rootClean)
		rel = strings.TrimPrefix(rel, "/")
		if rel == "" {
			return nil // the root itself
		}
		if fi.Dir {
			return tw.WriteHeader(&tar.Header{
				Name:     rel + "/",
				Typeflag: tar.TypeDir,
				Mode:     0o755,
				ModTime:  fi.ModTime,
			})
		}
		data, err := f.ReadFile(p)
		if err != nil {
			return err
		}
		if err := tw.WriteHeader(&tar.Header{
			Name:    rel,
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: fi.ModTime,
		}); err != nil {
			return err
		}
		_, err = tw.Write(data)
		return err
	})
	if err != nil {
		return err
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return bz.Close()
}

// UnpackVFS extracts a .tar.bz2 into f under dest, enforcing limits.
// Thin adapter over UnpackVFSFrom.
func UnpackVFS(data []byte, f *vfs.FS, dest string, lim Limits) error {
	return UnpackVFSFrom(bytes.NewReader(data), f, dest, lim)
}

// UnpackVFSFrom extracts a .tar.bz2 streamed from r into f under dest,
// enforcing limits. Only one entry's content is held in memory at a
// time, so archives much larger than the heap budget unpack in flat
// memory (bounded by MaxPerFile plus the VFS contents themselves).
func UnpackVFSFrom(r io.Reader, f *vfs.FS, dest string, lim Limits) error {
	lim = lim.withDefaults()
	tr := tar.NewReader(bzip2.NewReader(r))
	var total int64
	files := 0
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("archivex: reading tar: %w", err)
		}
		rel, err := safeRel(hdr.Name)
		if err != nil {
			return err
		}
		files++
		if files > lim.MaxFiles {
			return fmt.Errorf("%w: more than %d entries", ErrTooLarge, lim.MaxFiles)
		}
		switch hdr.Typeflag {
		case tar.TypeDir:
			if err := f.MkdirAll(path.Join(dest, rel)); err != nil {
				return err
			}
		case tar.TypeReg:
			if hdr.Size > lim.MaxPerFile {
				return fmt.Errorf("%w: entry %s is %d bytes", ErrTooLarge, rel, hdr.Size)
			}
			limited := io.LimitReader(tr, lim.MaxPerFile+1)
			content, err := io.ReadAll(limited)
			if err != nil {
				return err
			}
			if int64(len(content)) > lim.MaxPerFile {
				return fmt.Errorf("%w: entry %s larger than declared", ErrTooLarge, rel)
			}
			total += int64(len(content))
			if total > lim.MaxBytes {
				return fmt.Errorf("%w: total exceeds %d bytes", ErrTooLarge, lim.MaxBytes)
			}
			if err := f.WriteFile(path.Join(dest, rel), content); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: %s (type %c)", ErrBadEntry, rel, hdr.Typeflag)
		}
	}
}

// safeRel validates an archive entry name and returns a clean relative
// path that cannot escape the destination.
func safeRel(name string) (string, error) {
	name = strings.TrimSuffix(name, "/")
	if name == "" {
		return "", fmt.Errorf("%w: empty entry name", ErrBadEntry)
	}
	if strings.HasPrefix(name, "/") || strings.Contains(name, "\\") {
		return "", fmt.Errorf("%w: %q", ErrTraversal, name)
	}
	cleaned := path.Clean(name)
	if cleaned == ".." || strings.HasPrefix(cleaned, "../") || cleaned == "." {
		return "", fmt.Errorf("%w: %q", ErrTraversal, name)
	}
	return cleaned, nil
}

// PackDir produces a .tar.bz2 of a host directory. Thin adapter over
// PackDirTo.
func PackDir(dir string) ([]byte, error) {
	var buf bytes.Buffer
	if err := PackDirTo(&buf, dir); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// PackDirTo streams a .tar.bz2 of a host directory to w (used by the
// client to upload the student's project, typically through a temp
// file so the upload can rewind on retry). File bytes flow disk → tar
// → bzip2 → w without the tree ever being resident in memory. Hidden
// VCS directories (.git, .hg, .svn) are skipped, matching the RAI
// client's behaviour of not shipping history.
func PackDirTo(w io.Writer, dir string) error {
	bz, err := bzip2w.NewWriterLevel(w, 6)
	if err != nil {
		return err
	}
	tw := tar.NewWriter(bz)
	err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			return nil
		}
		base := path.Base(rel)
		if d.IsDir() && (base == ".git" || base == ".hg" || base == ".svn") {
			return filepath.SkipDir
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		if d.IsDir() {
			return tw.WriteHeader(&tar.Header{
				Name:     rel + "/",
				Typeflag: tar.TypeDir,
				Mode:     0o755,
				ModTime:  fi.ModTime(),
			})
		}
		if !d.Type().IsRegular() {
			return nil // sockets, symlinks, devices are not shipped
		}
		if err := tw.WriteHeader(&tar.Header{
			Name:    rel,
			Mode:    0o644,
			Size:    fi.Size(),
			ModTime: fi.ModTime(),
		}); err != nil {
			return err
		}
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		_, err = io.Copy(tw, f)
		_ = f.Close()
		return err
	})
	if err != nil {
		return err
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return bz.Close()
}

// UnpackDir extracts a .tar.bz2 into a host directory, enforcing
// limits. Thin adapter over UnpackDirFrom.
func UnpackDir(data []byte, dest string, lim Limits) error {
	return UnpackDirFrom(bytes.NewReader(data), dest, lim)
}

// UnpackDirFrom extracts a .tar.bz2 streamed from r into a host
// directory, enforcing limits. Entries stream straight to their files;
// peak memory is the decompressor's window, independent of archive
// size.
func UnpackDirFrom(r io.Reader, dest string, lim Limits) error {
	lim = lim.withDefaults()
	tr := tar.NewReader(bzip2.NewReader(r))
	var total int64
	files := 0
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("archivex: reading tar: %w", err)
		}
		rel, err := safeRel(hdr.Name)
		if err != nil {
			return err
		}
		files++
		if files > lim.MaxFiles {
			return fmt.Errorf("%w: more than %d entries", ErrTooLarge, lim.MaxFiles)
		}
		hostPath := filepath.Join(dest, filepath.FromSlash(rel))
		switch hdr.Typeflag {
		case tar.TypeDir:
			if err := os.MkdirAll(hostPath, 0o755); err != nil {
				return err
			}
		case tar.TypeReg:
			if hdr.Size > lim.MaxPerFile {
				return fmt.Errorf("%w: entry %s is %d bytes", ErrTooLarge, rel, hdr.Size)
			}
			if err := os.MkdirAll(filepath.Dir(hostPath), 0o755); err != nil {
				return err
			}
			f, err := os.OpenFile(hostPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
			if err != nil {
				return err
			}
			n, err := io.Copy(f, io.LimitReader(tr, lim.MaxPerFile+1))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			if n > lim.MaxPerFile {
				return fmt.Errorf("%w: entry %s larger than declared", ErrTooLarge, rel)
			}
			total += n
			if total > lim.MaxBytes {
				return fmt.Errorf("%w: total exceeds %d bytes", ErrTooLarge, lim.MaxBytes)
			}
		default:
			return fmt.Errorf("%w: %s (type %c)", ErrBadEntry, rel, hdr.Typeflag)
		}
	}
}
