package archivex

// Edge-case round trips (DESIGN.md §16): the delta path replaces the
// tar archive with a manifest that the worker materializes, so the two
// transports must reproduce byte-identical trees — otherwise the build
// cache would key the same project differently depending on which wire
// format carried it. These tests feed both paths the awkward shapes
// real student trees produce and assert the cas tree hash (the build
// cache's identity) agrees everywhere.

import (
	"bytes"
	"fmt"
	"testing"

	"rai/internal/cas"
	"rai/internal/vfs"
)

// edgeTree renders a project with the shapes that historically break
// archivers: empty directories (alone and nested), zero-byte files,
// deep nesting, names needing escaping in object-store keys, and one
// file wide enough to span several content-defined chunks.
func edgeTree(t *testing.T) *vfs.FS {
	t.Helper()
	f := vfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.WriteFile("/proj/rai-build.yml", []byte("rai:\n  version: 0.1\n")))
	must(f.WriteFile("/proj/zero.bin", nil))
	must(f.WriteFile("/proj/a/b/c/d/e/f/g/h/deep.txt", []byte("bottom of the tree\n")))
	must(f.WriteFile("/proj/src/100% gpu?.cu", []byte("__global__ void k(){}\n")))
	must(f.WriteFile("/proj/src/name with spaces & #hash.h", []byte("#pragma once\n")))
	must(f.WriteFile("/proj/src/odd%2Fname.txt", []byte("percent-encoded slash in the name itself\n")))
	must(f.MkdirAll("/proj/empty"))
	must(f.MkdirAll("/proj/nested/also empty/inner"))
	var w bytes.Buffer
	for i := 0; w.Len() < 4*cas.AvgChunk; i++ {
		fmt.Fprintf(&w, "static const float w%06d = %d.%06de-3f;\n", i, i%97, i*i%999983)
	}
	must(f.WriteFile("/proj/src/weights.h", w.Bytes()))
	return f
}

// walkTree flattens a subtree into rel→content for files and rel→nil
// markers for directories, so two trees can be compared exactly.
func walkTree(t *testing.T, f *vfs.FS, root string) (files map[string][]byte, dirs map[string]bool) {
	t.Helper()
	files = make(map[string][]byte)
	dirs = make(map[string]bool)
	err := f.Walk(root, func(p string, fi vfs.FileInfo) error {
		rel := p[len(root):]
		if rel == "" {
			return nil
		}
		if fi.Dir {
			dirs[rel] = true
			return nil
		}
		data, err := f.ReadFile(p)
		if err != nil {
			return err
		}
		files[rel] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files, dirs
}

func assertSameTree(t *testing.T, want, got *vfs.FS, wantRoot, gotRoot string) {
	t.Helper()
	wf, wd := walkTree(t, want, wantRoot)
	gf, gd := walkTree(t, got, gotRoot)
	for rel, data := range wf {
		other, ok := gf[rel]
		if !ok {
			t.Errorf("file %q missing after round trip", rel)
			continue
		}
		if !bytes.Equal(data, other) {
			t.Errorf("file %q content mismatch: %d bytes vs %d", rel, len(data), len(other))
		}
	}
	for rel := range gf {
		if _, ok := wf[rel]; !ok {
			t.Errorf("unexpected extra file %q after round trip", rel)
		}
	}
	for rel := range wd {
		if !gd[rel] {
			t.Errorf("directory %q missing after round trip", rel)
		}
	}
	for rel := range gd {
		if !wd[rel] {
			t.Errorf("unexpected extra directory %q after round trip", rel)
		}
	}
}

// TestPackUnpackEdgeTree proves the tar transport reproduces the edge
// tree exactly: every byte, every empty directory, nothing extra.
func TestPackUnpackEdgeTree(t *testing.T) {
	f := edgeTree(t)
	data, err := PackVFS(f, "/proj")
	if err != nil {
		t.Fatal(err)
	}
	out := vfs.New()
	if err := UnpackVFS(data, out, "/dst", Limits{}); err != nil {
		t.Fatal(err)
	}
	assertSameTree(t, f, out, "/proj", "/dst")
}

// TestEdgeTreeHashStableAcrossTransports is the identity guarantee the
// warm build cache leans on: the cas tree hash of the original tree,
// of the tar round trip, and of the manifest materialization must all
// agree, or identical submissions would miss the cache depending on
// how they traveled.
func TestEdgeTreeHashStableAcrossTransports(t *testing.T) {
	f := edgeTree(t)
	m, src, err := cas.BuildVFS(f, "/proj")
	if err != nil {
		t.Fatal(err)
	}

	// Tar round trip.
	data, err := PackVFS(f, "/proj")
	if err != nil {
		t.Fatal(err)
	}
	tarred := vfs.New()
	if err := UnpackVFS(data, tarred, "/dst", Limits{}); err != nil {
		t.Fatal(err)
	}
	mt, _, err := cas.BuildVFS(tarred, "/dst")
	if err != nil {
		t.Fatal(err)
	}
	if mt.TreeHash != m.TreeHash {
		t.Errorf("tar round trip changed tree hash: %s vs %s", mt.TreeHash, m.TreeHash)
	}

	// Manifest materialization, fetching chunks from the source tree.
	mat := vfs.New()
	if _, _, err := cas.Materialize(m, src.Chunk, mat, "/dst"); err != nil {
		t.Fatal(err)
	}
	mm, _, err := cas.BuildVFS(mat, "/dst")
	if err != nil {
		t.Fatal(err)
	}
	if mm.TreeHash != m.TreeHash {
		t.Errorf("materialization changed tree hash: %s vs %s", mm.TreeHash, m.TreeHash)
	}
	assertSameTree(t, f, mat, "/proj", "/dst")
}

// TestMaterializedTreeMatchesUnpackedArchive closes the loop from the
// worker's point of view: unpack-the-tar and materialize-the-manifest
// must hand the sandbox the same /src, byte for byte.
func TestMaterializedTreeMatchesUnpackedArchive(t *testing.T) {
	f := edgeTree(t)
	m, src, err := cas.BuildVFS(f, "/proj")
	if err != nil {
		t.Fatal(err)
	}
	data, err := PackVFS(f, "/proj")
	if err != nil {
		t.Fatal(err)
	}
	tarred := vfs.New()
	if err := UnpackVFS(data, tarred, "/src", Limits{}); err != nil {
		t.Fatal(err)
	}
	mat := vfs.New()
	if _, _, err := cas.Materialize(m, src.Chunk, mat, "/src"); err != nil {
		t.Fatal(err)
	}
	assertSameTree(t, tarred, mat, "/src", "/src")
}
