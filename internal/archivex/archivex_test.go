package archivex

import (
	"archive/tar"
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rai/internal/bzip2w"
	"rai/internal/vfs"
)

func sampleProject(t *testing.T) *vfs.FS {
	t.Helper()
	f := vfs.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.WriteFile("/proj/rai-build.yml", []byte("rai:\n  version: 0.1\n")))
	must(f.WriteFile("/proj/src/main.cu", []byte("__global__ void k(){}\n")))
	must(f.WriteFile("/proj/src/util.h", bytes.Repeat([]byte("x"), 5000)))
	must(f.MkdirAll("/proj/empty"))
	return f
}

func TestPackUnpackVFSRoundTrip(t *testing.T) {
	f := sampleProject(t)
	data, err := PackVFS(f, "/proj")
	if err != nil {
		t.Fatal(err)
	}
	out := vfs.New()
	if err := UnpackVFS(data, out, "/dst", Limits{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/dst/rai-build.yml", "/dst/src/main.cu", "/dst/src/util.h"} {
		want, _ := f.ReadFile("/proj" + strings.TrimPrefix(p, "/dst"))
		got, err := out.ReadFile(p)
		if err != nil {
			t.Fatalf("missing %s: %v", p, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s content mismatch", p)
		}
	}
	if fi, err := out.Stat("/dst/empty"); err != nil || !fi.Dir {
		t.Errorf("empty dir not preserved: %v", err)
	}
}

func TestPackDeterministic(t *testing.T) {
	f := sampleProject(t)
	a, err := PackVFS(f, "/proj")
	if err != nil {
		t.Fatal(err)
	}
	b, err := PackVFS(f, "/proj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("PackVFS is not deterministic for an unchanged tree")
	}
}

func TestUnpackRejectsTraversal(t *testing.T) {
	evil := []string{"../escape", "/abs/path", "a/../../b", "..", "a\\b"}
	for _, name := range evil {
		data := makeTarBz2(t, map[string]string{name: "boom"})
		out := vfs.New()
		err := UnpackVFS(data, out, "/dst", Limits{})
		if !errors.Is(err, ErrTraversal) && !errors.Is(err, ErrBadEntry) {
			t.Errorf("entry %q: err = %v, want traversal rejection", name, err)
		}
	}
}

func TestUnpackEnforcesLimits(t *testing.T) {
	big := makeTarBz2(t, map[string]string{"big.bin": strings.Repeat("A", 10_000)})
	out := vfs.New()
	if err := UnpackVFS(big, out, "/d", Limits{MaxBytes: 1000}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("MaxBytes: %v", err)
	}
	if err := UnpackVFS(big, vfs.New(), "/d", Limits{MaxPerFile: 1000}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("MaxPerFile: %v", err)
	}
	many := map[string]string{}
	for i := 0; i < 20; i++ {
		many["f"+strings.Repeat("x", i)] = "1"
	}
	if err := UnpackVFS(makeTarBz2(t, many), vfs.New(), "/d", Limits{MaxFiles: 5}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("MaxFiles: %v", err)
	}
}

func TestUnpackRejectsSymlinks(t *testing.T) {
	var raw bytes.Buffer
	bz, _ := bzip2w.NewWriterLevel(&raw, 1)
	tw := tar.NewWriter(bz)
	if err := tw.WriteHeader(&tar.Header{Name: "link", Typeflag: tar.TypeSymlink, Linkname: "/etc/passwd"}); err != nil {
		t.Fatal(err)
	}
	tw.Close()
	bz.Close()
	err := UnpackVFS(raw.Bytes(), vfs.New(), "/d", Limits{})
	if !errors.Is(err, ErrBadEntry) {
		t.Errorf("symlink entry: %v", err)
	}
}

func TestPackDirUnpackDir(t *testing.T) {
	src := t.TempDir()
	if err := os.MkdirAll(filepath.Join(src, "sub", ".git"), 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(src, "main.cu"), []byte("code"), 0o644)
	os.WriteFile(filepath.Join(src, "sub", "a.txt"), []byte("aaa"), 0o644)
	os.WriteFile(filepath.Join(src, "sub", ".git", "HEAD"), []byte("ref"), 0o644)

	data, err := PackDir(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	if err := UnpackDir(data, dst, Limits{}); err != nil {
		t.Fatal(err)
	}
	if got, err := os.ReadFile(filepath.Join(dst, "main.cu")); err != nil || string(got) != "code" {
		t.Errorf("main.cu: %q, %v", got, err)
	}
	if got, err := os.ReadFile(filepath.Join(dst, "sub", "a.txt")); err != nil || string(got) != "aaa" {
		t.Errorf("sub/a.txt: %q, %v", got, err)
	}
	if _, err := os.Stat(filepath.Join(dst, "sub", ".git")); !os.IsNotExist(err) {
		t.Error(".git directory was shipped")
	}
}

func TestCompressionActuallyShrinks(t *testing.T) {
	f := vfs.New()
	f.WriteFile("/p/big.txt", bytes.Repeat([]byte("the same line of source code\n"), 2000))
	data, err := PackVFS(f, "/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 10_000 {
		t.Errorf("58kB of repetitive text compressed to %d bytes; expected far smaller", len(data))
	}
}

// makeTarBz2 builds an archive with the given name->content entries.
func makeTarBz2(t *testing.T, files map[string]string) []byte {
	t.Helper()
	var raw bytes.Buffer
	bz, err := bzip2w.NewWriterLevel(&raw, 1)
	if err != nil {
		t.Fatal(err)
	}
	tw := tar.NewWriter(bz)
	for name, content := range files {
		if err := tw.WriteHeader(&tar.Header{Name: name, Size: int64(len(content)), Mode: 0o644}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bz.Close(); err != nil {
		t.Fatal(err)
	}
	return raw.Bytes()
}
