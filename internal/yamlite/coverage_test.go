package yamlite

import (
	"reflect"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if KindScalar.String() != "scalar" || KindMap.String() != "map" || KindSeq.String() != "seq" {
		t.Error("Kind.String basics")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind = %q", Kind(9).String())
	}
}

func TestMapKeys(t *testing.T) {
	n, err := Parse([]byte("b: 1\na: 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	keys := n.MapKeys()
	if !reflect.DeepEqual(keys, []string{"b", "a"}) {
		t.Fatalf("MapKeys = %v (must preserve document order)", keys)
	}
	// Mutating the returned slice must not affect the node.
	keys[0] = "zz"
	if n.MapKeys()[0] != "b" {
		t.Error("MapKeys aliased internal storage")
	}
	var scalar Node
	if scalar.MapKeys() != nil {
		t.Error("MapKeys on scalar != nil")
	}
}

func TestTopLevelSequence(t *testing.T) {
	n, err := Parse([]byte("- one\n- two\n- three\n"))
	if err != nil {
		t.Fatal(err)
	}
	items, err := n.StringList()
	if err != nil || len(items) != 3 || items[2] != "three" {
		t.Fatalf("top-level seq = %v, %v", items, err)
	}
}

func TestTopLevelScalar(t *testing.T) {
	n, err := Parse([]byte("just a scalar document\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := n.Scalar(); !ok || v != "just a scalar document" {
		t.Fatalf("scalar doc = %q, %v", v, ok)
	}
}

func TestSequenceWithNestedBlocks(t *testing.T) {
	src := `-
  key: nested
- plain
-
`
	n, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != KindSeq || len(n.Items) != 3 {
		t.Fatalf("seq = %+v", n)
	}
	if v, _ := n.Items[0].Get("key").Scalar(); v != "nested" {
		t.Errorf("nested item = %v", n.Items[0])
	}
	if v, _ := n.Items[2].Scalar(); v != "" {
		t.Errorf("empty dash item = %q", v)
	}
}

func TestUnmarshalArrayAndErrors(t *testing.T) {
	type withArray struct {
		A [2]int `yaml:"a"`
	}
	var v withArray
	if err := Unmarshal([]byte("a:\n  - 1\n  - 2\n"), &v); err != nil {
		t.Fatal(err)
	}
	if v.A != [2]int{1, 2} {
		t.Fatalf("array = %v", v.A)
	}
	if err := Unmarshal([]byte("a:\n  - 1\n"), &v); err == nil {
		t.Error("array length mismatch accepted")
	}
	// Sequence into a scalar field.
	type bad struct {
		A int `yaml:"a"`
	}
	var b bad
	if err := Unmarshal([]byte("a:\n  - 1\n"), &b); err == nil {
		t.Error("seq into int accepted")
	}
	// Map into a slice field.
	type bad2 struct {
		A []int `yaml:"a"`
	}
	var b2 bad2
	if err := Unmarshal([]byte("a:\n  b: 1\n"), &b2); err == nil {
		t.Error("map into slice accepted")
	}
	// Non-string map keys.
	var m map[int]string
	if err := Unmarshal([]byte("1: x\n"), &m); err == nil {
		t.Error("int-keyed map accepted")
	}
}

func TestUnmarshalScalarEdgeCases(t *testing.T) {
	type tgt struct {
		B bool    `yaml:"b"`
		I int8    `yaml:"i"`
		F float32 `yaml:"f"`
		U uint    `yaml:"u"`
	}
	var v tgt
	// Nulls zero every kind.
	if err := Unmarshal([]byte("b: ~\ni: ~\nf: ~\nu: ~\n"), &v); err != nil {
		t.Fatal(err)
	}
	if v.B || v.I != 0 || v.F != 0 || v.U != 0 {
		t.Fatalf("nulls = %+v", v)
	}
	for _, bad := range []string{"b: maybe\n", "i: 999\n", "i: xy\n", "f: abc\n", "u: -1\n"} {
		var w tgt
		if err := Unmarshal([]byte(bad), &w); err == nil {
			t.Errorf("Unmarshal(%q) succeeded", bad)
		}
	}
}

func TestMarshalKinds(t *testing.T) {
	type inner struct {
		Name string `yaml:"name"`
	}
	type outer struct {
		B     bool           `yaml:"b"`
		U     uint8          `yaml:"u"`
		F     float64        `yaml:"f"`
		Items []inner        `yaml:"items"`
		Empty []string       `yaml:"empty"`
		M     map[string]int `yaml:"m"`
		Ptr   *inner         `yaml:"ptr"`
		Nil   *inner         `yaml:"nil"`
		Skip  string         `yaml:"skip,omitempty"`
	}
	v := outer{
		B: true, U: 7, F: 2.5,
		Items: []inner{{Name: "x"}, {Name: "y"}},
		M:     map[string]int{"k": 1},
		Ptr:   &inner{Name: "p"},
	}
	blob, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var back outer
	if err := Unmarshal(blob, &back); err != nil {
		t.Fatalf("re-parse of:\n%s\n%v", blob, err)
	}
	if !back.B || back.U != 7 || back.F != 2.5 || len(back.Items) != 2 || back.Items[1].Name != "y" {
		t.Fatalf("round trip = %+v", back)
	}
	if back.M["k"] != 1 || back.Ptr == nil || back.Ptr.Name != "p" || back.Nil != nil {
		t.Fatalf("round trip = %+v", back)
	}
	if strings.Contains(string(blob), "skip") {
		t.Errorf("omitempty field emitted:\n%s", blob)
	}
}

func TestMarshalUnsupported(t *testing.T) {
	if _, err := Marshal(map[string]any{"ch": make(chan int)}); err == nil {
		t.Error("channel marshaled")
	}
	if _, err := Marshal(map[int]int{1: 2}); err == nil {
		t.Error("int-keyed map marshaled")
	}
}

func TestSplitKeyQuotedColon(t *testing.T) {
	n, err := Parse([]byte(`"key: with colon": value` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Get("key: with colon").Scalar(); v != "value" {
		t.Fatalf("quoted key = %+v", n)
	}
}

func TestUnescapeDoubleVariants(t *testing.T) {
	n, err := Parse([]byte(`a: "r\rnul\0slash\/qq\""` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := n.Get("a").Scalar()
	if v != "r\rnul\x00slash/qq\"" {
		t.Fatalf("escapes = %q", v)
	}
	if _, err := Parse([]byte(`a: "dangling\`)); err == nil {
		t.Error("dangling escape accepted")
	}
}

func TestBlockScalarKeepChomp(t *testing.T) {
	n, err := Parse([]byte("a: |+\n  x\nb: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Get("a").Scalar(); v != "x\n" {
		t.Errorf("keep chomp = %q", v)
	}
	// Empty block scalar.
	n, err = Parse([]byte("a: |\nb: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Get("a").Scalar(); v != "" {
		t.Errorf("empty literal = %q", v)
	}
}

func TestDecodeNilAndPointerTargets(t *testing.T) {
	var n *Node
	var x int
	if err := Decode(n, &x); err != nil {
		t.Fatalf("nil node decode: %v", err)
	}
	var notPtr int
	if err := Decode(&Node{Kind: KindScalar, Value: "1"}, notPtr); err == nil {
		t.Error("non-pointer target accepted")
	}
	var nilPtr *int
	if err := Decode(&Node{Kind: KindScalar, Value: "1"}, nilPtr); err == nil {
		t.Error("nil pointer target accepted")
	}
}
