// Package yamlite implements the subset of YAML that RAI build
// specifications use: block mappings, block sequences, plain and quoted
// scalars, comments, literal (|) and folded (>) blocks, and multi-line
// plain-scalar continuation (the paper's Listing 1 splits one command
// across two lines).
//
// The package deliberately omits anchors, aliases, tags, flow collections
// spanning documents, and multi-document streams: rai-build.yml files do
// not use them, and rejecting them loudly is safer for a grading pipeline
// than guessing.
package yamlite

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates node types in a parsed document.
type Kind int

// Node kinds.
const (
	KindScalar Kind = iota
	KindMap
	KindSeq
)

func (k Kind) String() string {
	switch k {
	case KindScalar:
		return "scalar"
	case KindMap:
		return "map"
	case KindSeq:
		return "seq"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is a parsed YAML node.
type Node struct {
	Kind Kind
	// Value holds the scalar text for KindScalar nodes. It is the
	// post-unquoting value; Quoted records whether quoting was used,
	// which suppresses null/bool/number interpretation.
	Value  string
	Quoted bool
	// Keys and Values are parallel for KindMap (preserving order);
	// Items holds sequence elements for KindSeq.
	Keys   []string
	Values []*Node
	Items  []*Node
	// Line is the 1-based source line the node started on.
	Line int
}

// Get returns the value node for key in a mapping node, or nil.
func (n *Node) Get(key string) *Node {
	if n == nil || n.Kind != KindMap {
		return nil
	}
	for i, k := range n.Keys {
		if k == key {
			return n.Values[i]
		}
	}
	return nil
}

// MapKeys returns the mapping keys in document order (nil if not a map).
func (n *Node) MapKeys() []string {
	if n == nil || n.Kind != KindMap {
		return nil
	}
	return append([]string(nil), n.Keys...)
}

// Scalar returns the scalar text and true if n is a scalar node.
func (n *Node) Scalar() (string, bool) {
	if n == nil || n.Kind != KindScalar {
		return "", false
	}
	return n.Value, true
}

// StringList interprets n as a sequence of scalars and returns the values.
func (n *Node) StringList() ([]string, error) {
	if n == nil {
		return nil, nil
	}
	if n.Kind != KindSeq {
		return nil, fmt.Errorf("yamlite: line %d: expected sequence, got %s", n.Line, n.Kind)
	}
	out := make([]string, 0, len(n.Items))
	for _, it := range n.Items {
		s, ok := it.Scalar()
		if !ok {
			return nil, fmt.Errorf("yamlite: line %d: expected scalar sequence item, got %s", it.Line, it.Kind)
		}
		out = append(out, s)
	}
	return out, nil
}

// Interface converts a node tree to generic Go values: map[string]any,
// []any, and typed scalars (nil, bool, int64, float64, string).
func (n *Node) Interface() any {
	if n == nil {
		return nil
	}
	switch n.Kind {
	case KindMap:
		m := make(map[string]any, len(n.Keys))
		for i, k := range n.Keys {
			m[k] = n.Values[i].Interface()
		}
		return m
	case KindSeq:
		s := make([]any, len(n.Items))
		for i, it := range n.Items {
			s[i] = it.Interface()
		}
		return s
	default:
		return scalarValue(n.Value, n.Quoted)
	}
}

// scalarValue applies YAML 1.1-core scalar typing to a plain scalar.
func scalarValue(s string, quoted bool) any {
	if quoted {
		return s
	}
	switch s {
	case "", "~", "null", "Null", "NULL":
		return nil
	case "true", "True", "TRUE":
		return true
	case "false", "False", "FALSE":
		return false
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// line is a logical source line.
type line struct {
	indent int    // count of leading spaces
	text   string // content without indentation, comments stripped
	num    int    // 1-based line number
	raw    string // content without indentation, comments kept (for block scalars)
}

// Parse parses a single YAML document.
func Parse(data []byte) (*Node, error) {
	src := strings.ReplaceAll(string(data), "\r\n", "\n")
	var lines []line
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		if strings.Contains(raw, "\t") {
			// YAML forbids tabs in indentation; reject anywhere in
			// leading whitespace for clarity.
			trimmed := strings.TrimLeft(raw, " ")
			if strings.HasPrefix(trimmed, "\t") {
				return nil, fmt.Errorf("yamlite: line %d: tab character in indentation", num)
			}
		}
		indent := len(raw) - len(strings.TrimLeft(raw, " "))
		body := raw[indent:]
		stripped := stripComment(body)
		if strings.TrimSpace(stripped) == "" && strings.TrimSpace(body) == "" {
			continue // blank line
		}
		if strings.TrimSpace(stripped) == "" {
			// comment-only line
			continue
		}
		if strings.HasPrefix(strings.TrimSpace(stripped), "---") && indent == 0 {
			rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(stripped), "---"))
			if rest == "" {
				continue // document start marker
			}
		}
		lines = append(lines, line{indent: indent, text: strings.TrimRight(stripped, " "), num: num, raw: body})
	}
	if len(lines) == 0 {
		return &Node{Kind: KindMap}, nil
	}
	p := &parser{lines: lines}
	n, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yamlite: line %d: unexpected content %q (bad indentation?)", l.num, l.text)
	}
	return n, nil
}

// stripComment removes a trailing comment, honoring quotes. A '#' begins a
// comment only when preceded by whitespace or at line start (YAML rule).
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inD:
			if c == '\\' {
				i++
			} else if c == '"' {
				inD = false
			}
		case inS:
			if c == '\'' {
				// '' is an escaped quote
				if i+1 < len(s) && s[i+1] == '\'' {
					i++
				} else {
					inS = false
				}
			}
		case c == '"':
			inD = true
		case c == '\'':
			inS = true
		case c == '#':
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) peek() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses a block node whose first line is at exactly indent.
func (p *parser) parseBlock(indent int) (*Node, error) {
	l, ok := p.peek()
	if !ok {
		return &Node{Kind: KindScalar}, nil
	}
	if l.indent != indent {
		return nil, fmt.Errorf("yamlite: line %d: expected indentation %d, got %d", l.num, indent, l.indent)
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseSeq(indent)
	}
	if key, _, ok := splitKey(l.text); ok && key != "" {
		return p.parseMap(indent)
	}
	p.pos++
	return p.finishPlainScalar(l.text, indent, l.num)
}

// parseSeq parses sequence entries at the given indent.
func (p *parser) parseSeq(indent int) (*Node, error) {
	n := &Node{Kind: KindSeq, Line: p.lines[p.pos].num}
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent || !(strings.HasPrefix(l.text, "- ") || l.text == "-") {
			if ok && l.indent > indent {
				return nil, fmt.Errorf("yamlite: line %d: unexpected indentation inside sequence", l.num)
			}
			return n, nil
		}
		p.pos++
		rest := strings.TrimPrefix(l.text, "-")
		rest = strings.TrimPrefix(rest, " ")
		if rest == "" {
			// Nested block on the following lines.
			nl, ok := p.peek()
			if !ok || nl.indent <= indent {
				n.Items = append(n.Items, &Node{Kind: KindScalar, Line: l.num})
				continue
			}
			child, err := p.parseBlock(nl.indent)
			if err != nil {
				return nil, err
			}
			n.Items = append(n.Items, child)
			continue
		}
		// Inline content after the dash. The content column is where a
		// nested mapping would be anchored ("- key: value" style).
		col := indent + (len(l.text) - len(rest))
		if key, val, ok := splitKey(rest); ok && key != "" {
			item, err := p.parseInlineMapEntry(col, key, val, l.num)
			if err != nil {
				return nil, err
			}
			n.Items = append(n.Items, item)
			continue
		}
		sc, err := p.finishPlainScalar(rest, indent, l.num)
		if err != nil {
			return nil, err
		}
		n.Items = append(n.Items, sc)
	}
}

// parseInlineMapEntry handles "- key: value" sequence items: the first
// entry is inline, subsequent entries continue at column col.
func (p *parser) parseInlineMapEntry(col int, key, val string, num int) (*Node, error) {
	m := &Node{Kind: KindMap, Line: num}
	v, err := p.parseValue(val, col, num)
	if err != nil {
		return nil, err
	}
	k, err := unquoteScalar(key, num)
	if err != nil {
		return nil, err
	}
	m.Keys = append(m.Keys, k.Value)
	m.Values = append(m.Values, v)
	for {
		l, ok := p.peek()
		if !ok || l.indent != col {
			return m, nil
		}
		k2, v2raw, ok2 := splitKey(l.text)
		if !ok2 || k2 == "" {
			return m, nil
		}
		p.pos++
		vn, err := p.parseValue(v2raw, col, l.num)
		if err != nil {
			return nil, err
		}
		kn, err := unquoteScalar(k2, l.num)
		if err != nil {
			return nil, err
		}
		if m.Get(kn.Value) != nil {
			return nil, fmt.Errorf("yamlite: line %d: duplicate key %q", l.num, kn.Value)
		}
		m.Keys = append(m.Keys, kn.Value)
		m.Values = append(m.Values, vn)
	}
}

// parseMap parses mapping entries at the given indent.
func (p *parser) parseMap(indent int) (*Node, error) {
	n := &Node{Kind: KindMap, Line: p.lines[p.pos].num}
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent {
			if ok && l.indent > indent {
				return nil, fmt.Errorf("yamlite: line %d: unexpected indentation inside mapping", l.num)
			}
			return n, nil
		}
		key, val, ok2 := splitKey(l.text)
		if !ok2 || key == "" {
			return n, nil
		}
		p.pos++
		kn, err := unquoteScalar(key, l.num)
		if err != nil {
			return nil, err
		}
		if n.Get(kn.Value) != nil {
			return nil, fmt.Errorf("yamlite: line %d: duplicate key %q", l.num, kn.Value)
		}
		vn, err := p.parseValue(val, indent, l.num)
		if err != nil {
			return nil, err
		}
		n.Keys = append(n.Keys, kn.Value)
		n.Values = append(n.Values, vn)
	}
}

// parseValue parses the value part of "key: <val>" where the key line sits
// at indent. An empty val means the value is a nested block (or null).
func (p *parser) parseValue(val string, indent, num int) (*Node, error) {
	val = strings.TrimSpace(val)
	switch {
	case val == "":
		nl, ok := p.peek()
		if !ok || nl.indent <= indent {
			return &Node{Kind: KindScalar, Line: num}, nil // null
		}
		return p.parseBlock(nl.indent)
	case val == "|" || val == ">" || strings.HasPrefix(val, "|") || strings.HasPrefix(val, ">"):
		if isBlockScalarHeader(val) {
			return p.parseBlockScalar(val, indent, num)
		}
		return p.finishPlainScalar(val, indent, num)
	default:
		return p.finishPlainScalar(val, indent, num)
	}
}

func isBlockScalarHeader(s string) bool {
	if s == "" || (s[0] != '|' && s[0] != '>') {
		return false
	}
	rest := s[1:]
	rest = strings.TrimPrefix(rest, "-")
	rest = strings.TrimPrefix(rest, "+")
	return strings.TrimSpace(rest) == ""
}

// parseBlockScalar handles | (literal) and > (folded) block scalars.
func (p *parser) parseBlockScalar(header string, indent, num int) (*Node, error) {
	style := header[0]
	chomp := byte(0)
	if len(header) > 1 {
		switch header[1] {
		case '-', '+':
			chomp = header[1]
		}
	}
	var body []string
	blockIndent := -1
	for {
		l, ok := p.peek()
		if !ok || l.indent <= indent {
			break
		}
		if blockIndent == -1 {
			blockIndent = l.indent
		}
		if l.indent < blockIndent {
			break
		}
		p.pos++
		body = append(body, strings.Repeat(" ", l.indent-blockIndent)+l.raw)
	}
	var text string
	if style == '|' {
		text = strings.Join(body, "\n")
	} else {
		text = strings.Join(body, " ")
	}
	switch chomp {
	case '-':
		// strip: no trailing newline
	case '+':
		text += "\n"
	default:
		if len(body) > 0 {
			text += "\n"
		}
	}
	return &Node{Kind: KindScalar, Value: text, Quoted: true, Line: num}, nil
}

// finishPlainScalar parses a scalar that begins with first (already
// dedented) and may continue on following lines indented deeper than
// indent — the YAML plain-scalar folding used by the paper's Listing 1 to
// split a long command across lines. Continuation lines must not look like
// mapping keys or sequence entries.
func (p *parser) finishPlainScalar(first string, indent, num int) (*Node, error) {
	n, err := unquoteScalar(first, num)
	if err != nil {
		return nil, err
	}
	n.Line = num
	if n.Quoted {
		return n, nil
	}
	parts := []string{n.Value}
	for {
		l, ok := p.peek()
		if !ok || l.indent <= indent {
			break
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			break
		}
		if k, _, ok := splitKey(l.text); ok && k != "" {
			break
		}
		p.pos++
		parts = append(parts, strings.TrimSpace(l.text))
	}
	n.Value = strings.Join(parts, " ")
	return n, nil
}

// splitKey splits "key: value" honoring quotes. Returns ok=false when the
// line is not a mapping entry. A ':' separates key and value only when
// followed by a space or end of line (YAML rule), so commands such as
// "webgpu/rai:root" are not mistaken for mappings.
func splitKey(s string) (key, val string, ok bool) {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inD:
			if c == '\\' {
				i++
			} else if c == '"' {
				inD = false
			}
		case inS:
			if c == '\'' {
				if i+1 < len(s) && s[i+1] == '\'' {
					i++
				} else {
					inS = false
				}
			}
		case c == '"':
			inD = true
		case c == '\'':
			inS = true
		case c == ':':
			if i+1 == len(s) {
				return strings.TrimSpace(s[:i]), "", true
			}
			if s[i+1] == ' ' {
				return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
			}
		}
	}
	return "", "", false
}

// unquoteScalar interprets a single scalar token, handling single and
// double quoting. It rejects unsupported YAML (anchors, aliases, tags,
// flow collections) loudly.
func unquoteScalar(s string, num int) (*Node, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return &Node{Kind: KindScalar, Line: num}, nil
	}
	switch s[0] {
	case '&', '*':
		return nil, fmt.Errorf("yamlite: line %d: anchors/aliases are not supported", num)
	case '!':
		return nil, fmt.Errorf("yamlite: line %d: tags are not supported", num)
	case '{', '[':
		return nil, fmt.Errorf("yamlite: line %d: flow collections are not supported", num)
	case '"':
		if len(s) < 2 || s[len(s)-1] != '"' {
			return nil, fmt.Errorf("yamlite: line %d: unterminated double-quoted scalar", num)
		}
		v, err := unescapeDouble(s[1:len(s)-1], num)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: KindScalar, Value: v, Quoted: true, Line: num}, nil
	case '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, fmt.Errorf("yamlite: line %d: unterminated single-quoted scalar", num)
		}
		return &Node{Kind: KindScalar, Value: strings.ReplaceAll(s[1:len(s)-1], "''", "'"), Quoted: true, Line: num}, nil
	}
	return &Node{Kind: KindScalar, Value: s, Line: num}, nil
}

func unescapeDouble(s string, num int) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("yamlite: line %d: dangling escape in double-quoted scalar", num)
		}
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case '/':
			b.WriteByte('/')
		default:
			return "", fmt.Errorf("yamlite: line %d: unsupported escape \\%c", num, s[i])
		}
	}
	return b.String(), nil
}
