package yamlite

import (
	"reflect"
	"strings"
	"testing"
)

// listing1 is the paper's Listing 1: the default rai-build.yml used by
// Applied Parallel Programming, including the multi-line command split.
const listing1 = `rai:
  version: 0.1
  image: webgpu/rai:root
  commands:
    build:
      - echo "Building project"
      - cmake /src
      - make
      - ./ece408 /data/test10.hdf5 /data/model.hdf5
      - nvprof --export-profile timeline.nvprof
          ./ece408 data/test10.hdf5 /data/model.hdf5
`

func TestParseListing1(t *testing.T) {
	n, err := Parse([]byte(listing1))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rai := n.Get("rai")
	if rai == nil {
		t.Fatal("missing top-level rai key")
	}
	if v, _ := rai.Get("version").Scalar(); v != "0.1" {
		t.Errorf("version = %q, want 0.1", v)
	}
	if img, _ := rai.Get("image").Scalar(); img != "webgpu/rai:root" {
		t.Errorf("image = %q (colon inside value must not split a key)", img)
	}
	cmds, err := rai.Get("commands").Get("build").StringList()
	if err != nil {
		t.Fatalf("build commands: %v", err)
	}
	want := []string{
		`echo "Building project"`,
		"cmake /src",
		"make",
		"./ece408 /data/test10.hdf5 /data/model.hdf5",
		"nvprof --export-profile timeline.nvprof ./ece408 data/test10.hdf5 /data/model.hdf5",
	}
	if !reflect.DeepEqual(cmds, want) {
		t.Errorf("commands = %#v\nwant %#v", cmds, want)
	}
}

func TestParseScalarTyping(t *testing.T) {
	n, err := Parse([]byte("a: 3\nb: 2.5\nc: true\nd: ~\ne: hello\nf: \"7\"\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := n.Interface().(map[string]any)
	if m["a"] != int64(3) {
		t.Errorf("a = %#v, want int64(3)", m["a"])
	}
	if m["b"] != 2.5 {
		t.Errorf("b = %#v, want 2.5", m["b"])
	}
	if m["c"] != true {
		t.Errorf("c = %#v, want true", m["c"])
	}
	if m["d"] != nil {
		t.Errorf("d = %#v, want nil", m["d"])
	}
	if m["e"] != "hello" {
		t.Errorf("e = %#v, want hello", m["e"])
	}
	if m["f"] != "7" {
		t.Errorf("quoted f = %#v, want string 7", m["f"])
	}
}

func TestParseComments(t *testing.T) {
	src := `# leading comment
key: value # trailing comment
url: http://example.com/#fragment
msg: "quoted # not a comment"
`
	n, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, _ := n.Get("key").Scalar(); v != "value" {
		t.Errorf("key = %q", v)
	}
	if v, _ := n.Get("url").Scalar(); v != "http://example.com/#fragment" {
		t.Errorf("url = %q (mid-token # must not start a comment)", v)
	}
	if v, _ := n.Get("msg").Scalar(); v != "quoted # not a comment" {
		t.Errorf("msg = %q", v)
	}
}

func TestParseQuotedScalars(t *testing.T) {
	src := "a: \"line\\nbreak\"\nb: 'it''s'\nc: \"tab\\there\"\n"
	n, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, _ := n.Get("a").Scalar(); v != "line\nbreak" {
		t.Errorf("a = %q", v)
	}
	if v, _ := n.Get("b").Scalar(); v != "it's" {
		t.Errorf("b = %q", v)
	}
	if v, _ := n.Get("c").Scalar(); v != "tab\there" {
		t.Errorf("c = %q", v)
	}
}

func TestParseSeqOfMaps(t *testing.T) {
	src := `jobs:
  - name: first
    gpu: 1
  - name: second
    gpu: 2
`
	n, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	jobs := n.Get("jobs")
	if jobs.Kind != KindSeq || len(jobs.Items) != 2 {
		t.Fatalf("jobs = %+v", jobs)
	}
	if v, _ := jobs.Items[1].Get("name").Scalar(); v != "second" {
		t.Errorf("second name = %q", v)
	}
	if v, _ := jobs.Items[0].Get("gpu").Scalar(); v != "1" {
		t.Errorf("first gpu = %q", v)
	}
}

func TestParseLiteralBlock(t *testing.T) {
	src := "script: |\n  line one\n  line two\nafter: yes\n"
	n, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, _ := n.Get("script").Scalar(); v != "line one\nline two\n" {
		t.Errorf("literal block = %q", v)
	}
}

func TestParseFoldedBlock(t *testing.T) {
	src := "script: >\n  word one\n  word two\n"
	n, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, _ := n.Get("script").Scalar(); v != "word one word two\n" {
		t.Errorf("folded block = %q", v)
	}
}

func TestParseLiteralBlockChomp(t *testing.T) {
	src := "a: |-\n  x\nb: ok\n"
	n, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, _ := n.Get("a").Scalar(); v != "x" {
		t.Errorf("chomped literal = %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"tab indent", "a:\n\tb: 1\n", "tab"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate"},
		{"anchor", "a: &x 1\n", "anchor"},
		{"alias", "a: *x\n", "anchor"},
		{"tag", "a: !!str hi\n", "tags"},
		{"flow map", "a: {b: 1}\n", "flow"},
		{"flow seq", "a: [1, 2]\n", "flow"},
		{"unterminated dquote", "a: \"oops\n", "unterminated"},
		{"unterminated squote", "a: 'oops\n", "unterminated"},
		{"bad escape", `a: "\q"`, "escape"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseEmpty(t *testing.T) {
	for _, src := range []string{"", "\n\n", "# only comments\n", "---\n"} {
		n, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if n.Kind != KindMap || len(n.Keys) != 0 {
			t.Fatalf("Parse(%q) = %+v, want empty map", src, n)
		}
	}
}

type buildFile struct {
	RAI struct {
		Version  string              `yaml:"version"`
		Image    string              `yaml:"image"`
		Commands map[string][]string `yaml:"commands"`
	} `yaml:"rai"`
}

func TestUnmarshalStruct(t *testing.T) {
	var bf buildFile
	if err := Unmarshal([]byte(listing1), &bf); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if bf.RAI.Version != "0.1" {
		t.Errorf("version = %q", bf.RAI.Version)
	}
	if bf.RAI.Image != "webgpu/rai:root" {
		t.Errorf("image = %q", bf.RAI.Image)
	}
	if len(bf.RAI.Commands["build"]) != 5 {
		t.Errorf("build commands = %d, want 5", len(bf.RAI.Commands["build"]))
	}
}

func TestUnmarshalUnknownKeyRejected(t *testing.T) {
	var bf buildFile
	err := Unmarshal([]byte("rai:\n  version: 0.1\n  bogus: 1\n"), &bf)
	if err == nil || !strings.Contains(err.Error(), "unknown key") {
		t.Fatalf("want unknown-key error, got %v", err)
	}
}

func TestUnmarshalScalarKinds(t *testing.T) {
	type tgt struct {
		S  string  `yaml:"s"`
		I  int     `yaml:"i"`
		U  uint16  `yaml:"u"`
		F  float64 `yaml:"f"`
		B  bool    `yaml:"b"`
		P  *int    `yaml:"p"`
		A  any     `yaml:"a"`
		L  []int   `yaml:"l"`
		Sk int     `yaml:"-"`
	}
	src := "s: hi\ni: -4\nu: 65000\nf: 1.5\nb: true\np: 9\na: [0]\nl:\n  - 1\n  - 2\n"
	// flow seq for 'a' is rejected; use nested instead
	src = "s: hi\ni: -4\nu: 65000\nf: 1.5\nb: true\np: 9\na: free\nl:\n  - 1\n  - 2\n"
	var v tgt
	if err := Unmarshal([]byte(src), &v); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if v.S != "hi" || v.I != -4 || v.U != 65000 || v.F != 1.5 || !v.B {
		t.Errorf("scalars = %+v", v)
	}
	if v.P == nil || *v.P != 9 {
		t.Errorf("pointer = %v", v.P)
	}
	if v.A != "free" {
		t.Errorf("any = %#v", v.A)
	}
	if !reflect.DeepEqual(v.L, []int{1, 2}) {
		t.Errorf("list = %v", v.L)
	}
}

func TestUnmarshalOverflow(t *testing.T) {
	type tgt struct {
		U uint8 `yaml:"u"`
	}
	var v tgt
	if err := Unmarshal([]byte("u: 300\n"), &v); err == nil {
		t.Fatal("want overflow error for uint8 = 300")
	}
}

func TestUnmarshalTargetMustBePointer(t *testing.T) {
	var v buildFile
	if err := Unmarshal([]byte("a: 1"), v); err == nil {
		t.Fatal("non-pointer target must error")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	var bf buildFile
	if err := Unmarshal([]byte(listing1), &bf); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	out, err := Marshal(&bf)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var bf2 buildFile
	if err := Unmarshal(out, &bf2); err != nil {
		t.Fatalf("re-Unmarshal of %q: %v", out, err)
	}
	if !reflect.DeepEqual(bf, bf2) {
		t.Errorf("round trip mismatch:\n%+v\n%+v\nencoded:\n%s", bf, bf2, out)
	}
}

func TestMarshalQuoting(t *testing.T) {
	m := map[string]any{
		"plain":  "hello world",
		"colon":  "a: b",
		"hash":   "a # b",
		"bool":   "true",
		"number": "0.1",
		"empty":  "",
		"multi":  "a\nb",
	}
	out, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back map[string]any
	if err := Unmarshal(out, &back); err != nil {
		t.Fatalf("Unmarshal(%q): %v", out, err)
	}
	for k, want := range m {
		if back[k] != want {
			t.Errorf("key %s: got %#v, want %#v\nencoded:\n%s", k, back[k], want, out)
		}
	}
}

func TestMarshalDeterministicMapOrder(t *testing.T) {
	m := map[string]int{"z": 1, "a": 2, "m": 3}
	a, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("non-deterministic marshal:\n%s\n%s", a, b)
		}
	}
	if !strings.HasPrefix(string(a), "a: 2\n") {
		t.Errorf("keys not sorted: %s", a)
	}
}

func TestNodeAccessorsOnWrongKinds(t *testing.T) {
	n, err := Parse([]byte("a: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n.Get("missing") != nil {
		t.Error("Get(missing) != nil")
	}
	if _, ok := n.Scalar(); ok {
		t.Error("map reported as scalar")
	}
	if _, err := n.StringList(); err == nil {
		t.Error("StringList on map must error")
	}
	var nilNode *Node
	if nilNode.Get("x") != nil {
		t.Error("nil.Get != nil")
	}
	if l, err := nilNode.StringList(); err != nil || l != nil {
		t.Error("nil.StringList should be empty, nil error")
	}
}

func TestInterfaceNested(t *testing.T) {
	src := `top:
  list:
    - 1
    - two
  inner:
    x: false
`
	n, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	v := n.Interface().(map[string]any)
	top := v["top"].(map[string]any)
	list := top["list"].([]any)
	if list[0] != int64(1) || list[1] != "two" {
		t.Errorf("list = %#v", list)
	}
	if top["inner"].(map[string]any)["x"] != false {
		t.Errorf("inner.x = %#v", top["inner"])
	}
}
