package yamlite

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// Unmarshal parses data and decodes the document into v, which must be a
// non-nil pointer. Struct fields are matched by `yaml:"name"` tags, or by
// the lower-cased field name when untagged. A tag of "-" skips the field.
// Unknown mapping keys are an error when the destination is a struct,
// mirroring the RAI client's strict handling of rai-build.yml.
func Unmarshal(data []byte, v any) error {
	n, err := Parse(data)
	if err != nil {
		return err
	}
	return Decode(n, v)
}

// Decode decodes a parsed node into v (a non-nil pointer).
func Decode(n *Node, v any) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("yamlite: Decode target must be a non-nil pointer, got %T", v)
	}
	return decodeValue(n, rv.Elem())
}

func decodeValue(n *Node, dst reflect.Value) error {
	if n == nil {
		return nil
	}
	// Fill interface{} destinations with generic values.
	if dst.Kind() == reflect.Interface && dst.NumMethod() == 0 {
		dst.Set(reflect.ValueOf(n.Interface()))
		return nil
	}
	if dst.Kind() == reflect.Pointer {
		// A null scalar leaves (or makes) the pointer nil.
		if n.Kind == KindScalar && !n.Quoted &&
			(n.Value == "" || n.Value == "~" || n.Value == "null" || n.Value == "Null" || n.Value == "NULL") {
			dst.Set(reflect.Zero(dst.Type()))
			return nil
		}
		if dst.IsNil() {
			dst.Set(reflect.New(dst.Type().Elem()))
		}
		return decodeValue(n, dst.Elem())
	}
	switch n.Kind {
	case KindScalar:
		return decodeScalar(n, dst)
	case KindSeq:
		return decodeSeq(n, dst)
	case KindMap:
		return decodeMap(n, dst)
	}
	return fmt.Errorf("yamlite: line %d: unhandled node kind %v", n.Line, n.Kind)
}

func decodeScalar(n *Node, dst reflect.Value) error {
	s := n.Value
	isNull := !n.Quoted && (s == "" || s == "~" || s == "null" || s == "Null" || s == "NULL")
	switch dst.Kind() {
	case reflect.String:
		dst.SetString(s)
	case reflect.Bool:
		if isNull {
			dst.SetBool(false)
			return nil
		}
		b, err := strconv.ParseBool(strings.ToLower(s))
		if err != nil {
			return fmt.Errorf("yamlite: line %d: cannot decode %q into bool", n.Line, s)
		}
		dst.SetBool(b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if isNull {
			dst.SetInt(0)
			return nil
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("yamlite: line %d: cannot decode %q into integer", n.Line, s)
		}
		if dst.OverflowInt(i) {
			return fmt.Errorf("yamlite: line %d: %q overflows %s", n.Line, s, dst.Type())
		}
		dst.SetInt(i)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if isNull {
			dst.SetUint(0)
			return nil
		}
		u, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return fmt.Errorf("yamlite: line %d: cannot decode %q into unsigned integer", n.Line, s)
		}
		if dst.OverflowUint(u) {
			return fmt.Errorf("yamlite: line %d: %q overflows %s", n.Line, s, dst.Type())
		}
		dst.SetUint(u)
	case reflect.Float32, reflect.Float64:
		if isNull {
			dst.SetFloat(0)
			return nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("yamlite: line %d: cannot decode %q into float", n.Line, s)
		}
		dst.SetFloat(f)
	case reflect.Slice, reflect.Map, reflect.Struct:
		if isNull {
			dst.Set(reflect.Zero(dst.Type()))
			return nil
		}
		return fmt.Errorf("yamlite: line %d: cannot decode scalar %q into %s", n.Line, s, dst.Type())
	default:
		return fmt.Errorf("yamlite: line %d: cannot decode scalar into %s", n.Line, dst.Type())
	}
	return nil
}

func decodeSeq(n *Node, dst reflect.Value) error {
	switch dst.Kind() {
	case reflect.Slice:
		out := reflect.MakeSlice(dst.Type(), len(n.Items), len(n.Items))
		for i, it := range n.Items {
			if err := decodeValue(it, out.Index(i)); err != nil {
				return err
			}
		}
		dst.Set(out)
		return nil
	case reflect.Array:
		if dst.Len() != len(n.Items) {
			return fmt.Errorf("yamlite: line %d: sequence length %d does not match array length %d", n.Line, len(n.Items), dst.Len())
		}
		for i, it := range n.Items {
			if err := decodeValue(it, dst.Index(i)); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("yamlite: line %d: cannot decode sequence into %s", n.Line, dst.Type())
	}
}

func decodeMap(n *Node, dst reflect.Value) error {
	switch dst.Kind() {
	case reflect.Map:
		if dst.Type().Key().Kind() != reflect.String {
			return fmt.Errorf("yamlite: line %d: map destination must have string keys, got %s", n.Line, dst.Type())
		}
		out := reflect.MakeMapWithSize(dst.Type(), len(n.Keys))
		for i, k := range n.Keys {
			ev := reflect.New(dst.Type().Elem()).Elem()
			if err := decodeValue(n.Values[i], ev); err != nil {
				return err
			}
			out.SetMapIndex(reflect.ValueOf(k).Convert(dst.Type().Key()), ev)
		}
		dst.Set(out)
		return nil
	case reflect.Struct:
		fields := structFields(dst.Type())
		for i, k := range n.Keys {
			idx, ok := fields[k]
			if !ok {
				return fmt.Errorf("yamlite: line %d: unknown key %q for %s", n.Values[i].Line, k, dst.Type())
			}
			if err := decodeValue(n.Values[i], dst.Field(idx)); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("yamlite: line %d: cannot decode mapping into %s", n.Line, dst.Type())
	}
}

// structFields maps yaml names to exported field indices.
func structFields(t reflect.Type) map[string]int {
	m := make(map[string]int, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := strings.ToLower(f.Name)
		if tag, ok := f.Tag.Lookup("yaml"); ok {
			tag = strings.Split(tag, ",")[0]
			if tag == "-" {
				continue
			}
			if tag != "" {
				name = tag
			}
		}
		m[name] = i
	}
	return m
}

// Marshal renders v as YAML (the same subset Parse accepts). Supported
// inputs: structs (with yaml tags), maps with string keys, slices, and
// scalars. Map keys are emitted in sorted order for determinism; struct
// fields in declaration order.
func Marshal(v any) ([]byte, error) {
	var b strings.Builder
	if err := encodeValue(&b, reflect.ValueOf(v), 0, false); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

func encodeValue(b *strings.Builder, v reflect.Value, indent int, inline bool) error {
	for v.Kind() == reflect.Pointer || v.Kind() == reflect.Interface {
		if v.IsNil() {
			b.WriteString("null\n")
			return nil
		}
		v = v.Elem()
	}
	switch v.Kind() {
	case reflect.Struct:
		return encodeStruct(b, v, indent)
	case reflect.Map:
		return encodeMap(b, v, indent)
	case reflect.Slice, reflect.Array:
		return encodeSeq(b, v, indent)
	case reflect.String:
		b.WriteString(quoteIfNeeded(v.String()))
		b.WriteByte('\n')
		return nil
	case reflect.Bool:
		fmt.Fprintf(b, "%t\n", v.Bool())
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(b, "%d\n", v.Int())
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fmt.Fprintf(b, "%d\n", v.Uint())
		return nil
	case reflect.Float32, reflect.Float64:
		fmt.Fprintf(b, "%g\n", v.Float())
		return nil
	default:
		return fmt.Errorf("yamlite: cannot marshal %s", v.Type())
	}
}

func encodeKV(b *strings.Builder, key string, v reflect.Value, indent int) error {
	pad := strings.Repeat("  ", indent)
	kv := v
	for kv.Kind() == reflect.Pointer || kv.Kind() == reflect.Interface {
		if kv.IsNil() {
			fmt.Fprintf(b, "%s%s: null\n", pad, quoteIfNeeded(key))
			return nil
		}
		kv = kv.Elem()
	}
	switch kv.Kind() {
	case reflect.Struct, reflect.Map:
		if isEmptyCollection(kv) {
			// Flow syntax ({}) is not in the accepted subset; an empty
			// collection round-trips as null -> zero value.
			fmt.Fprintf(b, "%s%s:\n", pad, quoteIfNeeded(key))
			return nil
		}
		fmt.Fprintf(b, "%s%s:\n", pad, quoteIfNeeded(key))
		return encodeValue(b, kv, indent+1, false)
	case reflect.Slice, reflect.Array:
		if kv.Len() == 0 {
			fmt.Fprintf(b, "%s%s:\n", pad, quoteIfNeeded(key))
			return nil
		}
		fmt.Fprintf(b, "%s%s:\n", pad, quoteIfNeeded(key))
		return encodeValue(b, kv, indent+1, false)
	default:
		fmt.Fprintf(b, "%s%s: ", pad, quoteIfNeeded(key))
		return encodeValue(b, kv, 0, true)
	}
}

func isEmptyCollection(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Map:
		return v.Len() == 0
	case reflect.Struct:
		return v.NumField() == 0
	}
	return false
}

func encodeStruct(b *strings.Builder, v reflect.Value, indent int) error {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := strings.ToLower(f.Name)
		omitEmpty := false
		if tag, ok := f.Tag.Lookup("yaml"); ok {
			parts := strings.Split(tag, ",")
			if parts[0] == "-" {
				continue
			}
			if parts[0] != "" {
				name = parts[0]
			}
			for _, opt := range parts[1:] {
				if opt == "omitempty" {
					omitEmpty = true
				}
			}
		}
		if omitEmpty && v.Field(i).IsZero() {
			continue
		}
		if err := encodeKV(b, name, v.Field(i), indent); err != nil {
			return err
		}
	}
	return nil
}

func encodeMap(b *strings.Builder, v reflect.Value, indent int) error {
	if v.Type().Key().Kind() != reflect.String {
		return fmt.Errorf("yamlite: cannot marshal map with %s keys", v.Type().Key())
	}
	keys := make([]string, 0, v.Len())
	for _, k := range v.MapKeys() {
		keys = append(keys, k.String())
	}
	sortStrings(keys)
	for _, k := range keys {
		if err := encodeKV(b, k, v.MapIndex(reflect.ValueOf(k).Convert(v.Type().Key())), indent); err != nil {
			return err
		}
	}
	return nil
}

func encodeSeq(b *strings.Builder, v reflect.Value, indent int) error {
	pad := strings.Repeat("  ", indent)
	for i := 0; i < v.Len(); i++ {
		ev := v.Index(i)
		for ev.Kind() == reflect.Pointer || ev.Kind() == reflect.Interface {
			if ev.IsNil() {
				fmt.Fprintf(b, "%s- null\n", pad)
				continue
			}
			ev = ev.Elem()
		}
		switch ev.Kind() {
		case reflect.Struct, reflect.Map, reflect.Slice, reflect.Array:
			fmt.Fprintf(b, "%s-\n", pad)
			if err := encodeValue(b, ev, indent+1, false); err != nil {
				return err
			}
		default:
			fmt.Fprintf(b, "%s- ", pad)
			if err := encodeValue(b, ev, 0, true); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// quoteIfNeeded quotes a string when a plain YAML scalar would change its
// meaning or be misparsed.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	plainSafe := true
	switch s {
	case "null", "Null", "NULL", "~", "true", "True", "TRUE", "false", "False", "FALSE":
		plainSafe = false
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		plainSafe = false
	}
	if plainSafe {
		for i := 0; i < len(s); i++ {
			c := s[i]
			switch {
			case c == ':' && (i+1 == len(s) || s[i+1] == ' '):
				plainSafe = false
			case c == '#' && i > 0 && s[i-1] == ' ':
				plainSafe = false
			case c == '\n' || c == '\t':
				plainSafe = false
			case i == 0 && (c == '-' || c == '?') && len(s) > 1 && s[1] == ' ':
				plainSafe = false
			case i == 0 && strings.ContainsRune("&*!{}[]\"'|>%@`", rune(c)):
				plainSafe = false
			}
			if !plainSafe {
				break
			}
		}
	}
	if plainSafe && strings.TrimSpace(s) == s {
		return s
	}
	return strconv.Quote(s)
}
