package vfs

import (
	"errors"
	"testing"
)

func TestWalkCallbackErrorStops(t *testing.T) {
	f := New()
	f.WriteFile("/a/1", nil)
	f.WriteFile("/a/2", nil)
	sentinel := errors.New("stop here")
	visits := 0
	err := f.Walk("/", func(p string, fi FileInfo) error {
		visits++
		if p == "/a/1" {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("walk err = %v", err)
	}
	if visits != 3 { // "/", "/a", "/a/1"
		t.Errorf("visits = %d", visits)
	}
}

func TestWalkMissingRoot(t *testing.T) {
	f := New()
	if err := f.Walk("/missing", func(string, FileInfo) error { return nil }); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestWalkSingleFileRoot(t *testing.T) {
	f := New()
	f.WriteFile("/file.txt", []byte("x"))
	var paths []string
	if err := f.Walk("/file.txt", func(p string, fi FileInfo) error {
		paths = append(paths, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != "/file.txt" {
		t.Fatalf("paths = %v", paths)
	}
}

func TestAppendThroughMount(t *testing.T) {
	host, ctr := New(), New()
	host.MkdirAll("/out")
	ctr.Mount("/build", host, "/out", false)
	if err := ctr.AppendFile("/build/log.txt", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := ctr.AppendFile("/build/log.txt", []byte("b")); err != nil {
		t.Fatal(err)
	}
	got, _ := host.ReadFile("/out/log.txt")
	if string(got) != "ab" {
		t.Fatalf("appended = %q", got)
	}
	// Read-only mount rejects appends.
	ro := New()
	ro.Mount("/data", host, "/out", true)
	if err := ro.AppendFile("/data/log.txt", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ro append: %v", err)
	}
}

func TestMkdirAllThroughMount(t *testing.T) {
	host, ctr := New(), New()
	host.MkdirAll("/out")
	ctr.Mount("/build", host, "/out", false)
	if err := ctr.MkdirAll("/build/deep/tree"); err != nil {
		t.Fatal(err)
	}
	if !host.Exists("/out/deep/tree") {
		t.Error("mkdir did not propagate through the mount")
	}
	ro := New()
	ro.Mount("/data", host, "/out", true)
	if err := ro.MkdirAll("/data/evil"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ro mkdir: %v", err)
	}
}

func TestStatAndReadDirThroughMount(t *testing.T) {
	host, ctr := New(), New()
	host.WriteFile("/src/a.txt", []byte("abc"))
	ctr.Mount("/src", host, "/src", true)
	fi, err := ctr.Stat("/src/a.txt")
	if err != nil || fi.Size != 3 {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
	entries, err := ctr.ReadDir("/src")
	if err != nil || len(entries) != 1 || entries[0].Name != "a.txt" {
		t.Fatalf("readdir = %v, %v", entries, err)
	}
	// Stat of the mount point itself resolves to the target dir.
	fi, err = ctr.Stat("/src")
	if err != nil || !fi.Dir {
		t.Fatalf("mountpoint stat = %+v, %v", fi, err)
	}
}

func TestUnmountErrors(t *testing.T) {
	f := New()
	f.MkdirAll("/plain")
	if err := f.Unmount("/plain"); err == nil {
		t.Error("unmount of a plain dir accepted")
	}
	if err := f.Unmount("relative"); err == nil {
		t.Error("relative unmount accepted")
	}
	if err := f.Unmount("/missing/deep"); err == nil {
		t.Error("unmount under missing parent accepted")
	}
}

func TestRemoveRootRejected(t *testing.T) {
	f := New()
	if err := f.Remove("/"); err == nil {
		t.Error("Remove(/) accepted")
	}
	if err := f.RemoveAll("/"); err == nil {
		t.Error("RemoveAll(/) accepted")
	}
}

func TestCopyTreeSingleFile(t *testing.T) {
	src, dst := New(), New()
	src.WriteFile("/one.txt", []byte("1"))
	if err := CopyTree(dst, "/copied.txt", src, "/one.txt"); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.ReadFile("/copied.txt")
	if string(got) != "1" {
		t.Fatalf("copied = %q", got)
	}
}

func TestTreeSizeAcrossMount(t *testing.T) {
	host, ctr := New(), New()
	host.WriteFile("/data/big.bin", make([]byte, 1000))
	ctr.Mount("/data", host, "/data", true)
	ctr.WriteFile("/local.txt", make([]byte, 24))
	size, err := ctr.TreeSize("/")
	if err != nil || size != 1024 {
		t.Fatalf("TreeSize = %d, %v", size, err)
	}
}
