// Package vfs implements the in-memory filesystem used by the sandboxed
// container runtime. It supports directories, regular files, bind mounts
// of other FS subtrees (optionally read-only, the way a RAI worker mounts
// the student's /src), and a byte quota that stands in for the container
// disk limit.
//
// Paths are absolute and slash-separated. The root ("/") always exists.
// An FS is safe for concurrent use. It also adapts to io/fs.FS for
// interoperability with standard-library tooling.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"rai/internal/clock"
)

// Errors reported by FS operations.
var (
	ErrNotExist   = fs.ErrNotExist
	ErrExist      = fs.ErrExist
	ErrNotDir     = errors.New("not a directory")
	ErrIsDir      = errors.New("is a directory")
	ErrReadOnly   = errors.New("read-only file system")
	ErrQuota      = errors.New("disk quota exceeded")
	ErrNotEmpty   = errors.New("directory not empty")
	ErrBadPattern = errors.New("bad path")
)

// FS is an in-memory filesystem rooted at "/".
type FS struct {
	mu    sync.RWMutex
	root  *node
	quota int64 // 0 = unlimited
	used  int64
	now   func() time.Time
}

type node struct {
	name     string
	dir      bool
	data     []byte
	children map[string]*node
	modTime  time.Time
	// mount, when non-nil, redirects resolution into another FS.
	mount *mount
}

type mount struct {
	fs       *FS
	at       string // path inside fs
	readOnly bool
}

// New returns an empty filesystem with no quota.
func New() *FS {
	return &FS{
		root: &node{name: "/", dir: true, children: map[string]*node{}},
		now:  clock.Real{}.Now,
	}
}

// NewWithQuota returns an empty filesystem limited to quota bytes of file
// data (directories and metadata are free).
func NewWithQuota(quota int64) *FS {
	f := New()
	f.quota = quota
	return f
}

// SetClock overrides the time source used for mod times (tests,
// deterministic simulation).
func (f *FS) SetClock(now func() time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = now
}

// Used reports the bytes of file data currently stored (local files only;
// mounted filesystems account their own usage).
func (f *FS) Used() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.used
}

// Quota returns the configured quota (0 = unlimited).
func (f *FS) Quota() int64 { return f.quota }

// clean canonicalizes p and validates that it is absolute.
func clean(p string) (string, error) {
	if p == "" || p[0] != '/' {
		return "", fmt.Errorf("%w: %q is not absolute", ErrBadPattern, p)
	}
	return path.Clean(p), nil
}

// resolveResult locates a node; when the walk crosses a mount the target
// FS and translated path are returned instead.
type resolveResult struct {
	fs       *FS // non-nil when redirected
	path     string
	readOnly bool
	node     *node // local node when not redirected
	parent   *node
	leaf     string
}

// resolve walks p in f. With mkParents, intermediate directories are
// created. The caller must hold f.mu (write lock if mkParents).
func (f *FS) resolve(p string, mkParents bool) (resolveResult, error) {
	p, err := clean(p)
	if err != nil {
		return resolveResult{}, err
	}
	if p == "/" {
		return resolveResult{node: f.root, parent: nil, leaf: "/"}, nil
	}
	parts := strings.Split(strings.TrimPrefix(p, "/"), "/")
	cur := f.root
	for i, part := range parts {
		last := i == len(parts)-1
		child, ok := cur.children[part]
		if !ok {
			if !last {
				if !mkParents {
					return resolveResult{}, fmt.Errorf("%s: %w", p, ErrNotExist)
				}
				child = &node{name: part, dir: true, children: map[string]*node{}, modTime: f.now()}
				cur.children[part] = child
			} else {
				return resolveResult{parent: cur, leaf: part}, nil
			}
		}
		if child.mount != nil {
			rest := strings.Join(parts[i+1:], "/")
			sub := child.mount.at
			if rest != "" {
				sub = path.Join(sub, rest)
			}
			return resolveResult{fs: child.mount.fs, path: sub, readOnly: child.mount.readOnly}, nil
		}
		if last {
			return resolveResult{node: child, parent: cur, leaf: part}, nil
		}
		if !child.dir {
			return resolveResult{}, fmt.Errorf("%s: %w", p, ErrNotDir)
		}
		cur = child
	}
	return resolveResult{}, fmt.Errorf("%s: %w", p, ErrNotExist)
}

// Mount binds src's subtree at srcPath onto dst at dstPath. The mount
// point replaces any existing node at dstPath. readOnly forbids writes
// through this mount.
func (f *FS) Mount(dstPath string, src *FS, srcPath string, readOnly bool) error {
	dstPath, err := clean(dstPath)
	if err != nil {
		return err
	}
	srcPath, err = clean(srcPath)
	if err != nil {
		return err
	}
	if dstPath == "/" {
		return fmt.Errorf("cannot mount over /")
	}
	if src == f {
		return fmt.Errorf("cannot self-mount")
	}
	// Verify source exists and is a directory.
	if fi, err := src.Stat(srcPath); err != nil {
		return fmt.Errorf("mount source: %w", err)
	} else if !fi.IsDir() {
		return fmt.Errorf("mount source %s: %w", srcPath, ErrNotDir)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	dir, leaf := path.Split(dstPath)
	res, err := f.resolve(path.Clean(dir), true)
	if err != nil {
		return err
	}
	if res.fs != nil {
		return fmt.Errorf("cannot mount inside another mount at %s", dstPath)
	}
	parent := res.node
	if parent == nil || !parent.dir {
		return fmt.Errorf("%s: %w", dir, ErrNotDir)
	}
	parent.children[leaf] = &node{
		name:    leaf,
		dir:     true,
		modTime: f.now(),
		mount:   &mount{fs: src, at: srcPath, readOnly: readOnly},
	}
	return nil
}

// Unmount removes a mount point.
func (f *FS) Unmount(p string) error {
	p, err := clean(p)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	dir, leaf := path.Split(p)
	res, err := f.resolve(path.Clean(dir), false)
	if err != nil {
		return err
	}
	if res.fs != nil || res.node == nil || !res.node.dir {
		return fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	n, ok := res.node.children[leaf]
	if !ok || n.mount == nil {
		return fmt.Errorf("%s: not a mount point", p)
	}
	delete(res.node.children, leaf)
	return nil
}

// MkdirAll creates a directory and all parents.
func (f *FS) MkdirAll(p string) error {
	f.mu.Lock()
	res, err := f.resolve(p, true)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	if res.fs != nil {
		f.mu.Unlock()
		if res.readOnly {
			return fmt.Errorf("%s: %w", p, ErrReadOnly)
		}
		return res.fs.MkdirAll(res.path)
	}
	if res.node != nil {
		f.mu.Unlock()
		if !res.node.dir {
			return fmt.Errorf("%s: %w", p, ErrNotDir)
		}
		return nil
	}
	res.parent.children[res.leaf] = &node{name: res.leaf, dir: true, children: map[string]*node{}, modTime: f.now()}
	f.mu.Unlock()
	return nil
}

// WriteFile creates or replaces a file with data.
func (f *FS) WriteFile(p string, data []byte) error {
	f.mu.Lock()
	res, err := f.resolve(p, true)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	if res.fs != nil {
		f.mu.Unlock()
		if res.readOnly {
			return fmt.Errorf("%s: %w", p, ErrReadOnly)
		}
		return res.fs.WriteFile(res.path, data)
	}
	var prev int64
	if res.node != nil {
		if res.node.dir {
			f.mu.Unlock()
			return fmt.Errorf("%s: %w", p, ErrIsDir)
		}
		prev = int64(len(res.node.data))
	}
	if f.quota > 0 && f.used-prev+int64(len(data)) > f.quota {
		f.mu.Unlock()
		return fmt.Errorf("%s: %w", p, ErrQuota)
	}
	f.used += int64(len(data)) - prev
	cp := make([]byte, len(data))
	copy(cp, data)
	if res.node != nil {
		res.node.data = cp
		res.node.modTime = f.now()
	} else {
		res.parent.children[res.leaf] = &node{name: res.leaf, data: cp, modTime: f.now()}
	}
	f.mu.Unlock()
	return nil
}

// AppendFile appends data to a file, creating it if absent.
func (f *FS) AppendFile(p string, data []byte) error {
	f.mu.Lock()
	res, err := f.resolve(p, true)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	if res.fs != nil {
		f.mu.Unlock()
		if res.readOnly {
			return fmt.Errorf("%s: %w", p, ErrReadOnly)
		}
		return res.fs.AppendFile(res.path, data)
	}
	if res.node != nil && res.node.dir {
		f.mu.Unlock()
		return fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	if f.quota > 0 && f.used+int64(len(data)) > f.quota {
		f.mu.Unlock()
		return fmt.Errorf("%s: %w", p, ErrQuota)
	}
	f.used += int64(len(data))
	if res.node != nil {
		res.node.data = append(res.node.data, data...)
		res.node.modTime = f.now()
	} else {
		cp := make([]byte, len(data))
		copy(cp, data)
		res.parent.children[res.leaf] = &node{name: res.leaf, data: cp, modTime: f.now()}
	}
	f.mu.Unlock()
	return nil
}

// ReadFile returns a copy of the file's contents.
func (f *FS) ReadFile(p string) ([]byte, error) {
	f.mu.RLock()
	res, err := f.resolve(p, false)
	if err != nil {
		f.mu.RUnlock()
		return nil, err
	}
	if res.fs != nil {
		f.mu.RUnlock()
		return res.fs.ReadFile(res.path)
	}
	if res.node == nil {
		f.mu.RUnlock()
		return nil, fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	if res.node.dir {
		f.mu.RUnlock()
		return nil, fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	out := make([]byte, len(res.node.data))
	copy(out, res.node.data)
	f.mu.RUnlock()
	return out, nil
}

// FileInfo describes a file or directory.
type FileInfo struct {
	Name    string
	Size    int64
	Dir     bool
	ModTime time.Time
}

// IsDir reports whether the entry is a directory.
func (fi FileInfo) IsDir() bool { return fi.Dir }

// Stat returns metadata for the path.
func (f *FS) Stat(p string) (FileInfo, error) {
	f.mu.RLock()
	res, err := f.resolve(p, false)
	if err != nil {
		f.mu.RUnlock()
		return FileInfo{}, err
	}
	if res.fs != nil {
		f.mu.RUnlock()
		return res.fs.Stat(res.path)
	}
	if res.node == nil {
		f.mu.RUnlock()
		return FileInfo{}, fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	fi := FileInfo{Name: res.node.name, Size: int64(len(res.node.data)), Dir: res.node.dir, ModTime: res.node.modTime}
	f.mu.RUnlock()
	return fi, nil
}

// Exists reports whether p resolves to a file or directory.
func (f *FS) Exists(p string) bool {
	_, err := f.Stat(p)
	return err == nil
}

// ReadDir lists a directory in name order.
func (f *FS) ReadDir(p string) ([]FileInfo, error) {
	f.mu.RLock()
	res, err := f.resolve(p, false)
	if err != nil {
		f.mu.RUnlock()
		return nil, err
	}
	if res.fs != nil {
		f.mu.RUnlock()
		return res.fs.ReadDir(res.path)
	}
	if res.node == nil {
		f.mu.RUnlock()
		return nil, fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	if !res.node.dir {
		f.mu.RUnlock()
		return nil, fmt.Errorf("%s: %w", p, ErrNotDir)
	}
	out := make([]FileInfo, 0, len(res.node.children))
	for _, c := range res.node.children {
		out = append(out, FileInfo{Name: c.name, Size: int64(len(c.data)), Dir: c.dir, ModTime: c.modTime})
	}
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Remove deletes a file or empty directory.
func (f *FS) Remove(p string) error {
	return f.remove(p, false)
}

// RemoveAll deletes a file or directory recursively. Removing a mount
// point detaches it without touching the mounted filesystem.
func (f *FS) RemoveAll(p string) error {
	err := f.remove(p, true)
	if errors.Is(err, ErrNotExist) {
		return nil
	}
	return err
}

func (f *FS) remove(p string, recursive bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp, err := clean(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return fmt.Errorf("cannot remove /")
	}
	// Removing a mount point itself detaches it rather than deleting
	// through it.
	dir, leaf := path.Split(cp)
	if pres, perr := f.resolve(path.Clean(dir), false); perr == nil && pres.fs == nil && pres.node != nil && pres.node.dir {
		if child, ok := pres.node.children[leaf]; ok && child.mount != nil {
			delete(pres.node.children, leaf)
			return nil
		}
	}
	res, err := f.resolve(cp, false)
	if err != nil {
		return err
	}
	if res.fs != nil {
		// The path traverses into a mount: delegate.
		f.mu.Unlock()
		defer f.mu.Lock()
		if res.readOnly {
			return fmt.Errorf("%s: %w", p, ErrReadOnly)
		}
		if recursive {
			return res.fs.RemoveAll(res.path)
		}
		return res.fs.Remove(res.path)
	}
	if res.node == nil {
		return fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	if res.node.dir && !recursive && len(res.node.children) > 0 {
		return fmt.Errorf("%s: %w", p, ErrNotEmpty)
	}
	f.used -= subtreeSize(res.node)
	delete(res.parent.children, res.leaf)
	return nil
}

func subtreeSize(n *node) int64 {
	if n.mount != nil {
		return 0
	}
	if !n.dir {
		return int64(len(n.data))
	}
	var s int64
	for _, c := range n.children {
		s += subtreeSize(c)
	}
	return s
}

// WalkFunc visits a path during Walk.
type WalkFunc func(p string, fi FileInfo) error

// Walk visits every file and directory under root in deterministic
// (depth-first, name-sorted) order, crossing mounts.
func (f *FS) Walk(root string, fn WalkFunc) error {
	fi, err := f.Stat(root)
	if err != nil {
		return err
	}
	root, _ = clean(root)
	if err := fn(root, fi); err != nil {
		return err
	}
	if !fi.Dir {
		return nil
	}
	entries, err := f.ReadDir(root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		child := path.Join(root, e.Name)
		if err := f.Walk(child, fn); err != nil {
			return err
		}
	}
	return nil
}

// CopyTree copies the subtree at srcPath in src into dst at dstPath.
func CopyTree(dst *FS, dstPath string, src *FS, srcPath string) error {
	srcPath, err := clean(srcPath)
	if err != nil {
		return err
	}
	fi, err := src.Stat(srcPath)
	if err != nil {
		return err
	}
	if !fi.Dir {
		data, err := src.ReadFile(srcPath)
		if err != nil {
			return err
		}
		return dst.WriteFile(dstPath, data)
	}
	if err := dst.MkdirAll(dstPath); err != nil {
		return err
	}
	entries, err := src.ReadDir(srcPath)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := CopyTree(dst, path.Join(dstPath, e.Name), src, path.Join(srcPath, e.Name)); err != nil {
			return err
		}
	}
	return nil
}

// TreeSize totals the file bytes under root, crossing mounts.
func (f *FS) TreeSize(root string) (int64, error) {
	var total int64
	err := f.Walk(root, func(p string, fi FileInfo) error {
		if !fi.Dir {
			total += fi.Size
		}
		return nil
	})
	return total, err
}

// ---- io/fs adapter ----

// IOFS returns an io/fs.FS view rooted at dir ("/" for the whole tree).
func (f *FS) IOFS(dir string) fs.FS { return ioFS{f: f, base: dir} }

type ioFS struct {
	f    *FS
	base string
}

func (i ioFS) abs(name string) (string, error) {
	if !fs.ValidPath(name) {
		return "", &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	if name == "." {
		return i.base, nil
	}
	return path.Join(i.base, name), nil
}

func (i ioFS) Open(name string) (fs.File, error) {
	p, err := i.abs(name)
	if err != nil {
		return nil, err
	}
	fi, err := i.f.Stat(p)
	if err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	if fi.Dir {
		entries, err := i.f.ReadDir(p)
		if err != nil {
			return nil, &fs.PathError{Op: "open", Path: name, Err: err}
		}
		return &ioDir{info: fi, entries: entries}, nil
	}
	data, err := i.f.ReadFile(p)
	if err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	return &ioFile{info: fi, data: data}, nil
}

func (i ioFS) ReadDir(name string) ([]fs.DirEntry, error) {
	p, err := i.abs(name)
	if err != nil {
		return nil, err
	}
	entries, err := i.f.ReadDir(p)
	if err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: err}
	}
	out := make([]fs.DirEntry, len(entries))
	for j, e := range entries {
		out[j] = dirEntry{e}
	}
	return out, nil
}

type ioFile struct {
	info FileInfo
	data []byte
	off  int
}

func (f *ioFile) Stat() (fs.FileInfo, error) { return stdInfo{f.info}, nil }
func (f *ioFile) Close() error               { return nil }
func (f *ioFile) Read(p []byte) (int, error) {
	if f.off >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}

type ioDir struct {
	info    FileInfo
	entries []FileInfo
	off     int
}

func (d *ioDir) Stat() (fs.FileInfo, error) { return stdInfo{d.info}, nil }
func (d *ioDir) Close() error               { return nil }
func (d *ioDir) Read([]byte) (int, error) {
	return 0, &fs.PathError{Op: "read", Path: d.info.Name, Err: ErrIsDir}
}

func (d *ioDir) ReadDir(n int) ([]fs.DirEntry, error) {
	if n <= 0 {
		out := make([]fs.DirEntry, 0, len(d.entries)-d.off)
		for ; d.off < len(d.entries); d.off++ {
			out = append(out, dirEntry{d.entries[d.off]})
		}
		return out, nil
	}
	if d.off >= len(d.entries) {
		return nil, io.EOF
	}
	end := d.off + n
	if end > len(d.entries) {
		end = len(d.entries)
	}
	out := make([]fs.DirEntry, 0, end-d.off)
	for ; d.off < end; d.off++ {
		out = append(out, dirEntry{d.entries[d.off]})
	}
	return out, nil
}

type stdInfo struct{ fi FileInfo }

func (s stdInfo) Name() string { return s.fi.Name }
func (s stdInfo) Size() int64  { return s.fi.Size }
func (s stdInfo) Mode() fs.FileMode {
	if s.fi.Dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (s stdInfo) ModTime() time.Time { return s.fi.ModTime }
func (s stdInfo) IsDir() bool        { return s.fi.Dir }
func (s stdInfo) Sys() any           { return nil }

type dirEntry struct{ fi FileInfo }

func (d dirEntry) Name() string { return d.fi.Name }
func (d dirEntry) IsDir() bool  { return d.fi.Dir }
func (d dirEntry) Type() fs.FileMode {
	if d.fi.Dir {
		return fs.ModeDir
	}
	return 0
}
func (d dirEntry) Info() (fs.FileInfo, error) { return stdInfo{d.fi}, nil }
