package vfs

import (
	"errors"
	"io/fs"
	"testing"
	"testing/fstest"
	"testing/quick"
	"time"
)

func TestWriteReadFile(t *testing.T) {
	f := New()
	if err := f.WriteFile("/src/main.cu", []byte("kernel")); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadFile("/src/main.cu")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "kernel" {
		t.Errorf("read %q", got)
	}
	// Parents were auto-created.
	fi, err := f.Stat("/src")
	if err != nil || !fi.Dir {
		t.Fatalf("Stat(/src) = %+v, %v", fi, err)
	}
}

func TestReadFileIsCopy(t *testing.T) {
	f := New()
	f.WriteFile("/a", []byte("abc"))
	got, _ := f.ReadFile("/a")
	got[0] = 'X'
	again, _ := f.ReadFile("/a")
	if string(again) != "abc" {
		t.Error("ReadFile returned aliased storage")
	}
}

func TestWriteFileIsCopy(t *testing.T) {
	f := New()
	data := []byte("abc")
	f.WriteFile("/a", data)
	data[0] = 'X'
	got, _ := f.ReadFile("/a")
	if string(got) != "abc" {
		t.Error("WriteFile aliased caller storage")
	}
}

func TestPathValidation(t *testing.T) {
	f := New()
	for _, p := range []string{"", "relative", "also/relative"} {
		if err := f.WriteFile(p, nil); err == nil {
			t.Errorf("WriteFile(%q) succeeded", p)
		}
	}
	// Dot segments are cleaned.
	f.WriteFile("/a/b/../c", []byte("x"))
	if !f.Exists("/a/c") {
		t.Error("path cleaning failed")
	}
}

func TestErrors(t *testing.T) {
	f := New()
	f.WriteFile("/file", []byte("x"))
	f.MkdirAll("/dir/sub")

	if _, err := f.ReadFile("/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("read missing: %v", err)
	}
	if _, err := f.ReadFile("/dir"); !errors.Is(err, ErrIsDir) {
		t.Errorf("read dir: %v", err)
	}
	if err := f.WriteFile("/dir", nil); !errors.Is(err, ErrIsDir) {
		t.Errorf("write over dir: %v", err)
	}
	if err := f.WriteFile("/file/sub", nil); !errors.Is(err, ErrNotDir) {
		t.Errorf("write through file: %v", err)
	}
	if err := f.Remove("/dir"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("remove non-empty: %v", err)
	}
	if _, err := f.ReadDir("/file"); !errors.Is(err, ErrNotDir) {
		t.Errorf("readdir file: %v", err)
	}
}

func TestRemoveAll(t *testing.T) {
	f := New()
	f.WriteFile("/d/a", []byte("1"))
	f.WriteFile("/d/sub/b", []byte("22"))
	if err := f.RemoveAll("/d"); err != nil {
		t.Fatal(err)
	}
	if f.Exists("/d") {
		t.Error("subtree still present")
	}
	if got := f.Used(); got != 0 {
		t.Errorf("Used = %d after removing everything", got)
	}
	// RemoveAll of a missing path is a no-op.
	if err := f.RemoveAll("/missing"); err != nil {
		t.Errorf("RemoveAll(missing) = %v", err)
	}
}

func TestQuota(t *testing.T) {
	f := NewWithQuota(10)
	if err := f.WriteFile("/a", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/b", []byte("123456")); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota write: %v", err)
	}
	// Replacing a file frees its old bytes first.
	if err := f.WriteFile("/a", []byte("1234567890")); err != nil {
		t.Fatalf("replace within quota: %v", err)
	}
	if got := f.Used(); got != 10 {
		t.Errorf("Used = %d, want 10", got)
	}
	if err := f.AppendFile("/a", []byte("x")); !errors.Is(err, ErrQuota) {
		t.Errorf("append past quota: %v", err)
	}
}

func TestAppendFile(t *testing.T) {
	f := New()
	f.AppendFile("/log", []byte("a"))
	f.AppendFile("/log", []byte("bc"))
	got, _ := f.ReadFile("/log")
	if string(got) != "abc" {
		t.Errorf("appended = %q", got)
	}
}

func TestReadDirSorted(t *testing.T) {
	f := New()
	for _, name := range []string{"/d/zeta", "/d/alpha", "/d/mid"} {
		f.WriteFile(name, nil)
	}
	entries, err := f.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	for i, e := range entries {
		if e.Name != want[i] {
			t.Fatalf("entries = %v", entries)
		}
	}
}

func TestMountReadOnly(t *testing.T) {
	host := New()
	host.WriteFile("/projects/team1/main.cu", []byte("code"))
	ctr := New()
	ctr.MkdirAll("/build")
	if err := ctr.Mount("/src", host, "/projects/team1", true); err != nil {
		t.Fatal(err)
	}
	got, err := ctr.ReadFile("/src/main.cu")
	if err != nil || string(got) != "code" {
		t.Fatalf("read through mount: %q, %v", got, err)
	}
	if err := ctr.WriteFile("/src/hack", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write through ro mount: %v", err)
	}
	if err := ctr.RemoveAll("/src/main.cu"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("remove through ro mount: %v", err)
	}
	// Host sees no changes.
	if !host.Exists("/projects/team1/main.cu") {
		t.Error("host file disappeared")
	}
}

func TestMountReadWrite(t *testing.T) {
	host := New()
	host.MkdirAll("/out")
	ctr := New()
	if err := ctr.Mount("/build", host, "/out", false); err != nil {
		t.Fatal(err)
	}
	if err := ctr.WriteFile("/build/result.txt", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	got, err := host.ReadFile("/out/result.txt")
	if err != nil || string(got) != "ok" {
		t.Fatalf("host read-back: %q, %v", got, err)
	}
}

func TestMountErrors(t *testing.T) {
	a, b := New(), New()
	if err := a.Mount("/m", b, "/missing", false); err == nil {
		t.Error("mount of missing source succeeded")
	}
	b.MkdirAll("/ok")
	if err := a.Mount("/", b, "/ok", false); err == nil {
		t.Error("mount over / succeeded")
	}
	if err := a.Mount("/m", a, "/", false); err == nil {
		t.Error("self-mount succeeded")
	}
}

func TestUnmount(t *testing.T) {
	host, ctr := New(), New()
	host.WriteFile("/data/x", []byte("1"))
	ctr.Mount("/data", host, "/data", true)
	if !ctr.Exists("/data/x") {
		t.Fatal("mount not visible")
	}
	if err := ctr.Unmount("/data"); err != nil {
		t.Fatal(err)
	}
	if ctr.Exists("/data/x") {
		t.Error("mount still visible after unmount")
	}
	if err := ctr.Unmount("/data"); err == nil {
		t.Error("double unmount succeeded")
	}
	if !host.Exists("/data/x") {
		t.Error("unmount deleted host data")
	}
}

func TestRemoveMountPointDetaches(t *testing.T) {
	host, ctr := New(), New()
	host.WriteFile("/data/x", []byte("1"))
	ctr.Mount("/data", host, "/data", true)
	if err := ctr.RemoveAll("/data"); err != nil {
		t.Fatal(err)
	}
	if !host.Exists("/data/x") {
		t.Error("removing the mount point deleted mounted data")
	}
}

func TestWalkDeterministic(t *testing.T) {
	f := New()
	f.WriteFile("/a/b/c.txt", []byte("1"))
	f.WriteFile("/a/a.txt", []byte("22"))
	f.WriteFile("/z.txt", []byte("333"))
	var paths []string
	err := f.Walk("/", func(p string, fi FileInfo) error {
		paths = append(paths, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/", "/a", "/a/a.txt", "/a/b", "/a/b/c.txt", "/z.txt"}
	if len(paths) != len(want) {
		t.Fatalf("walk = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("walk = %v, want %v", paths, want)
		}
	}
}

func TestTreeSizeAndCopyTree(t *testing.T) {
	f := New()
	f.WriteFile("/p/a", make([]byte, 100))
	f.WriteFile("/p/q/b", make([]byte, 23))
	size, err := f.TreeSize("/p")
	if err != nil || size != 123 {
		t.Fatalf("TreeSize = %d, %v", size, err)
	}
	dst := New()
	if err := CopyTree(dst, "/copy", f, "/p"); err != nil {
		t.Fatal(err)
	}
	size, _ = dst.TreeSize("/copy")
	if size != 123 {
		t.Errorf("copied TreeSize = %d", size)
	}
	if got, _ := dst.ReadFile("/copy/q/b"); len(got) != 23 {
		t.Error("nested file not copied")
	}
}

func TestSetClock(t *testing.T) {
	f := New()
	fixed := time.Date(2016, 12, 1, 0, 0, 0, 0, time.UTC)
	f.SetClock(func() time.Time { return fixed })
	f.WriteFile("/a", nil)
	fi, _ := f.Stat("/a")
	if !fi.ModTime.Equal(fixed) {
		t.Errorf("ModTime = %v", fi.ModTime)
	}
}

func TestIOFSConformance(t *testing.T) {
	f := New()
	f.WriteFile("/tree/x.txt", []byte("hello"))
	f.WriteFile("/tree/sub/y.txt", []byte("world"))
	f.MkdirAll("/tree/empty")
	if err := fstest.TestFS(f.IOFS("/tree"), "x.txt", "sub/y.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestIOFSReadFile(t *testing.T) {
	f := New()
	f.WriteFile("/a/b.txt", []byte("data"))
	got, err := fs.ReadFile(f.IOFS("/"), "a/b.txt")
	if err != nil || string(got) != "data" {
		t.Fatalf("fs.ReadFile = %q, %v", got, err)
	}
}

// Property: Used() always equals the sum of file sizes, across any
// sequence of writes and removals.
func TestQuickUsedAccounting(t *testing.T) {
	type op struct {
		Path byte
		Size uint8
		Del  bool
	}
	f := func(ops []op) bool {
		fsys := New()
		for _, o := range ops {
			p := "/f" + string(rune('a'+o.Path%8))
			if o.Del {
				fsys.RemoveAll(p)
			} else {
				fsys.WriteFile(p, make([]byte, o.Size))
			}
		}
		var want int64
		fsys.Walk("/", func(p string, fi FileInfo) error {
			if !fi.Dir {
				want += fi.Size
			}
			return nil
		})
		return fsys.Used() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	f := New()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			p := "/g" + string(rune('0'+g))
			for i := 0; i < 200; i++ {
				f.WriteFile(p, []byte{byte(i)})
				f.ReadFile(p)
				f.Stat(p)
				f.ReadDir("/")
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
