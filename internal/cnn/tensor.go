// Package cnn implements the course project workload: the forward
// (inference) pass of a fixed convolutional neural network. The fall 2016
// Applied Parallel Programming project asked student teams for "a
// high-performance CUDA implementation of a convolutional neural network
// inference step" (paper §I); teams started from a serial CPU baseline
// that took ~30 minutes on the full dataset and optimized until most ran
// under a second (paper Figure 2).
//
// This package is the stand-in for that workload: a LeNet-style network
// with several functionally identical implementations at increasing
// optimization levels — naive serial loops, loop-reordered, cache-tiled,
// im2col+GEMM, and a goroutine-parallel "device" version. Real arithmetic
// runs on every path, so relative speedups are measured, not asserted.
package cnn

import (
	"fmt"
	"math"
)

// Tensor is a dense float32 array in NCHW layout (batch, channel,
// height, width). Lower-rank tensors use leading dimensions of size 1.
type Tensor struct {
	N, C, H, W int
	Data       []float32
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(n, c, h, w int) *Tensor {
	if n <= 0 || c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("cnn: invalid tensor shape %dx%dx%dx%d", n, c, h, w))
	}
	return &Tensor{N: n, C: c, H: h, W: w, Data: make([]float32, n*c*h*w)}
}

// At returns the element at (n, c, h, w).
func (t *Tensor) At(n, c, h, w int) float32 {
	return t.Data[((n*t.C+c)*t.H+h)*t.W+w]
}

// Set writes the element at (n, c, h, w).
func (t *Tensor) Set(n, c, h, w int, v float32) {
	t.Data[((n*t.C+c)*t.H+h)*t.W+w] = v
}

// Index computes the flat offset of (n, c, h, w).
func (t *Tensor) Index(n, c, h, w int) int {
	return ((n*t.C+c)*t.H+h)*t.W + w
}

// Len returns the element count.
func (t *Tensor) Len() int { return t.N * t.C * t.H * t.W }

// Shape returns the shape as a slice.
func (t *Tensor) Shape() []int { return []int{t.N, t.C, t.H, t.W} }

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	return t.N == o.N && t.C == o.C && t.H == o.H && t.W == o.W
}

// MaxAbsDiff returns the largest absolute element difference between two
// same-shaped tensors (used by the equivalence tests across
// implementations).
func MaxAbsDiff(a, b *Tensor) (float64, error) {
	if !a.SameShape(b) {
		return 0, fmt.Errorf("cnn: shape mismatch %v vs %v", a.Shape(), b.Shape())
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m, nil
}

// prng is a small deterministic generator (xorshift64*) used for weights
// and synthetic data so models and datasets are reproducible from a seed
// without math/rand's global state.
type prng struct{ s uint64 }

func newPRNG(seed uint64) *prng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &prng{s: seed}
}

func (p *prng) next() uint64 {
	p.s ^= p.s >> 12
	p.s ^= p.s << 25
	p.s ^= p.s >> 27
	return p.s * 0x2545F4914F6CDD1D
}

// float returns a uniform float32 in [-scale, scale).
func (p *prng) float(scale float32) float32 {
	u := p.next() >> 40 // 24 bits
	return (float32(u)/float32(1<<24)*2 - 1) * scale
}
