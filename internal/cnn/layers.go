package cnn

import (
	"runtime"
	"sync"
)

// Impl selects a functionally identical implementation of the compute
// layers at a given optimization level. The levels mirror the
// optimization journey the course project expects from students.
type Impl int

// Implementations, slowest to fastest.
const (
	// ImplNaiveSerial is the provided baseline: direct quadruple-nested
	// loops, no blocking, bounds math in the inner loop.
	ImplNaiveSerial Impl = iota
	// ImplLoopReorder hoists invariant indexing and reorders loops for
	// sequential memory access.
	ImplLoopReorder
	// ImplTiled adds output-tile blocking for cache reuse.
	ImplTiled
	// ImplIm2col lowers convolution to im2col + GEMM.
	ImplIm2col
	// ImplParallel is the "device" version: im2col + GEMM parallelized
	// across goroutines over the batch (the reproduction's stand-in for
	// a CUDA kernel).
	ImplParallel
)

// Impls lists all implementations (for tests and ablation benches).
var Impls = []Impl{ImplNaiveSerial, ImplLoopReorder, ImplTiled, ImplIm2col, ImplParallel}

func (im Impl) String() string {
	switch im {
	case ImplNaiveSerial:
		return "naive-serial"
	case ImplLoopReorder:
		return "loop-reorder"
	case ImplTiled:
		return "tiled"
	case ImplIm2col:
		return "im2col"
	case ImplParallel:
		return "parallel"
	default:
		return "unknown"
	}
}

// Conv2D computes a valid (no padding, stride 1) cross-correlation:
// out[n,m,y,x] = bias[m] + sum_{c,p,q} in[n,c,y+p,x+q] * w[m,c,p,q].
// Weights are shaped (M out-channels, C in-channels, K, K).
func Conv2D(im Impl, in, weights *Tensor, bias []float32) *Tensor {
	k := weights.H
	outH, outW := in.H-k+1, in.W-k+1
	out := NewTensor(in.N, weights.N, outH, outW)
	switch im {
	case ImplNaiveSerial:
		convNaive(in, weights, bias, out)
	case ImplLoopReorder:
		convReorder(in, weights, bias, out)
	case ImplTiled:
		convTiled(in, weights, bias, out)
	case ImplIm2col:
		convIm2col(in, weights, bias, out, false)
	case ImplParallel:
		convIm2col(in, weights, bias, out, true)
	default:
		convNaive(in, weights, bias, out)
	}
	return out
}

func convNaive(in, w *Tensor, bias []float32, out *Tensor) {
	k := w.H
	for n := 0; n < out.N; n++ {
		for m := 0; m < out.C; m++ {
			for y := 0; y < out.H; y++ {
				for x := 0; x < out.W; x++ {
					acc := bias[m]
					for c := 0; c < in.C; c++ {
						for p := 0; p < k; p++ {
							for q := 0; q < k; q++ {
								acc += in.At(n, c, y+p, x+q) * w.At(m, c, p, q)
							}
						}
					}
					out.Set(n, m, y, x, acc)
				}
			}
		}
	}
}

func convReorder(in, w *Tensor, bias []float32, out *Tensor) {
	k := w.H
	for n := 0; n < out.N; n++ {
		for m := 0; m < out.C; m++ {
			base := out.Index(n, m, 0, 0)
			for i := 0; i < out.H*out.W; i++ {
				out.Data[base+i] = bias[m]
			}
			for c := 0; c < in.C; c++ {
				for p := 0; p < k; p++ {
					for q := 0; q < k; q++ {
						wv := w.At(m, c, p, q)
						for y := 0; y < out.H; y++ {
							inRow := in.Index(n, c, y+p, q)
							outRow := base + y*out.W
							for x := 0; x < out.W; x++ {
								out.Data[outRow+x] += in.Data[inRow+x] * wv
							}
						}
					}
				}
			}
		}
	}
}

// tile is the output tile edge used by ImplTiled.
const tile = 8

func convTiled(in, w *Tensor, bias []float32, out *Tensor) {
	k := w.H
	for n := 0; n < out.N; n++ {
		for m := 0; m < out.C; m++ {
			base := out.Index(n, m, 0, 0)
			for i := 0; i < out.H*out.W; i++ {
				out.Data[base+i] = bias[m]
			}
			for ty := 0; ty < out.H; ty += tile {
				yEnd := min(ty+tile, out.H)
				for tx := 0; tx < out.W; tx += tile {
					xEnd := min(tx+tile, out.W)
					for c := 0; c < in.C; c++ {
						for p := 0; p < k; p++ {
							for q := 0; q < k; q++ {
								wv := w.At(m, c, p, q)
								for y := ty; y < yEnd; y++ {
									inRow := in.Index(n, c, y+p, q)
									outRow := base + y*out.W
									for x := tx; x < xEnd; x++ {
										out.Data[outRow+x] += in.Data[inRow+x] * wv
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// convIm2col lowers each image to a (C*K*K) x (outH*outW) matrix and
// multiplies by the (M) x (C*K*K) weight matrix.
func convIm2col(in, w *Tensor, bias []float32, out *Tensor, parallel bool) {
	k := w.H
	rows := in.C * k * k
	cols := out.H * out.W
	wMat := w.Data // already (M, C*K*K) contiguous

	work := func(n int, col []float32) {
		// im2col
		idx := 0
		for c := 0; c < in.C; c++ {
			for p := 0; p < k; p++ {
				for q := 0; q < k; q++ {
					for y := 0; y < out.H; y++ {
						inRow := in.Index(n, c, y+p, q)
						copy(col[idx+y*out.W:idx+(y+1)*out.W], in.Data[inRow:inRow+out.W])
					}
					idx += cols
				}
			}
		}
		// GEMM: out[m, :] = wMat[m, :] * col + bias[m]
		for m := 0; m < out.C; m++ {
			outRow := out.Index(n, m, 0, 0)
			dst := out.Data[outRow : outRow+cols]
			for i := range dst {
				dst[i] = bias[m]
			}
			wRow := wMat[m*rows : (m+1)*rows]
			for r := 0; r < rows; r++ {
				wv := wRow[r]
				src := col[r*cols : (r+1)*cols]
				for i, sv := range src {
					dst[i] += wv * sv
				}
			}
		}
	}

	if !parallel || in.N == 1 {
		col := make([]float32, rows*cols)
		for n := 0; n < in.N; n++ {
			work(n, col)
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > in.N {
		workers = in.N
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			col := make([]float32, rows*cols)
			for n := range next {
				work(n, col)
			}
		}()
	}
	for n := 0; n < in.N; n++ {
		next <- n
	}
	close(next)
	wg.Wait()
}

// ReLU applies max(0, x) elementwise, in place, and returns t.
func ReLU(t *Tensor) *Tensor {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
	return t
}

// AvgPool2 performs 2x2 average pooling with stride 2 (dimensions must
// be even).
func AvgPool2(in *Tensor) *Tensor {
	out := NewTensor(in.N, in.C, in.H/2, in.W/2)
	for n := 0; n < in.N; n++ {
		for c := 0; c < in.C; c++ {
			for y := 0; y < out.H; y++ {
				for x := 0; x < out.W; x++ {
					s := in.At(n, c, 2*y, 2*x) + in.At(n, c, 2*y, 2*x+1) +
						in.At(n, c, 2*y+1, 2*x) + in.At(n, c, 2*y+1, 2*x+1)
					out.Set(n, c, y, x, s/4)
				}
			}
		}
	}
	return out
}

// FullyConnected computes out[n, j] = bias[j] + sum_i in[n, i] * w[j, i],
// treating the input as (N, C*H*W). Weights are shaped (outDim, inDim)
// in w.N and w.C with H=W=1.
func FullyConnected(im Impl, in, w *Tensor, bias []float32) *Tensor {
	inDim := in.C * in.H * in.W
	outDim := w.N
	out := NewTensor(in.N, outDim, 1, 1)
	run := func(n int) {
		inRow := in.Data[n*inDim : (n+1)*inDim]
		for j := 0; j < outDim; j++ {
			acc := bias[j]
			wRow := w.Data[j*inDim : (j+1)*inDim]
			for i, v := range inRow {
				acc += v * wRow[i]
			}
			out.Data[n*outDim+j] = acc
		}
	}
	if im == ImplParallel && in.N > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		workers := runtime.GOMAXPROCS(0)
		if workers > in.N {
			workers = in.N
		}
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for n := range next {
					run(n)
				}
			}()
		}
		for n := 0; n < in.N; n++ {
			next <- n
		}
		close(next)
		wg.Wait()
	} else {
		for n := 0; n < in.N; n++ {
			run(n)
		}
	}
	return out
}

// ArgMax returns the index of the largest logit per batch element.
func ArgMax(t *Tensor) []int {
	dim := t.C * t.H * t.W
	out := make([]int, t.N)
	for n := 0; n < t.N; n++ {
		best, bestIdx := t.Data[n*dim], 0
		for i := 1; i < dim; i++ {
			if v := t.Data[n*dim+i]; v > best {
				best, bestIdx = v, i
			}
		}
		out[n] = bestIdx
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
