package cnn

import (
	"fmt"

	"rai/internal/h5lite"
)

// Network is the fixed course network: a LeNet-style model over 28x28
// single-channel images.
//
//	input   1x28x28
//	conv1   6 filters 5x5   -> 6x24x24, ReLU
//	pool1   avg 2x2         -> 6x12x12
//	conv2   16 filters 5x5  -> 16x8x8, ReLU
//	pool2   avg 2x2         -> 16x4x4
//	fc1     120, ReLU
//	fc2     10 (logits)
type Network struct {
	Conv1W *Tensor // (6, 1, 5, 5)
	Conv1B []float32
	Conv2W *Tensor // (16, 6, 5, 5)
	Conv2B []float32
	FC1W   *Tensor // (120, 256, 1, 1)
	FC1B   []float32
	FC2W   *Tensor // (10, 120, 1, 1)
	FC2B   []float32
}

// Network geometry constants.
const (
	InputH     = 28
	InputW     = 28
	NumClasses = 10
)

// NewNetwork builds a network with deterministic pseudo-random weights
// derived from seed (the course shipped fixed pre-trained weights; a
// seeded model plays that role here).
func NewNetwork(seed uint64) *Network {
	rng := newPRNG(seed)
	fill := func(t *Tensor, scale float32) {
		for i := range t.Data {
			t.Data[i] = rng.float(scale)
		}
	}
	fillB := func(n int, scale float32) []float32 {
		b := make([]float32, n)
		for i := range b {
			b[i] = rng.float(scale)
		}
		return b
	}
	nw := &Network{
		Conv1W: NewTensor(6, 1, 5, 5),
		Conv2W: NewTensor(16, 6, 5, 5),
		FC1W:   NewTensor(120, 16*4*4, 1, 1),
		FC2W:   NewTensor(NumClasses, 120, 1, 1),
	}
	fill(nw.Conv1W, 0.4)
	nw.Conv1B = fillB(6, 0.1)
	fill(nw.Conv2W, 0.2)
	nw.Conv2B = fillB(16, 0.1)
	fill(nw.FC1W, 0.1)
	nw.FC1B = fillB(120, 0.05)
	fill(nw.FC2W, 0.2)
	nw.FC2B = fillB(NumClasses, 0.05)
	return nw
}

// Forward runs inference on a batch using the selected implementation
// and returns the logits tensor (N, 10, 1, 1).
func (nw *Network) Forward(im Impl, in *Tensor) (*Tensor, error) {
	if in.C != 1 || in.H != InputH || in.W != InputW {
		return nil, fmt.Errorf("cnn: input must be Nx1x%dx%d, got %v", InputH, InputW, in.Shape())
	}
	x := Conv2D(im, in, nw.Conv1W, nw.Conv1B)
	x = ReLU(x)
	x = AvgPool2(x)
	x = Conv2D(im, x, nw.Conv2W, nw.Conv2B)
	x = ReLU(x)
	x = AvgPool2(x)
	x = FullyConnected(im, x, nw.FC1W, nw.FC1B)
	x = ReLU(x)
	x = FullyConnected(im, x, nw.FC2W, nw.FC2B)
	return x, nil
}

// Classify returns the predicted class per image.
func (nw *Network) Classify(im Impl, in *Tensor) ([]int, error) {
	logits, err := nw.Forward(im, in)
	if err != nil {
		return nil, err
	}
	return ArgMax(logits), nil
}

// Accuracy runs inference and compares predictions with labels.
func (nw *Network) Accuracy(im Impl, in *Tensor, labels []int32) (float64, error) {
	if in.N != len(labels) {
		return 0, fmt.Errorf("cnn: %d images but %d labels", in.N, len(labels))
	}
	preds, err := nw.Classify(im, in)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, p := range preds {
		if int32(p) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels)), nil
}

// Model dataset names inside the h5lite file (the reproduction's
// model.hdf5).
const (
	dsConv1W = "conv1/weights"
	dsConv1B = "conv1/bias"
	dsConv2W = "conv2/weights"
	dsConv2B = "conv2/bias"
	dsFC1W   = "fc1/weights"
	dsFC1B   = "fc1/bias"
	dsFC2W   = "fc2/weights"
	dsFC2B   = "fc2/bias"
)

// SaveModel serializes the weights as an h5lite file (model.hdf5).
func (nw *Network) SaveModel() ([]byte, error) {
	f := h5lite.NewFile()
	add := func(name string, t *Tensor) error {
		return f.AddFloat32(name, t.Shape(), t.Data)
	}
	addB := func(name string, b []float32) error {
		return f.AddFloat32(name, []int{len(b)}, b)
	}
	for _, step := range []error{
		add(dsConv1W, nw.Conv1W), addB(dsConv1B, nw.Conv1B),
		add(dsConv2W, nw.Conv2W), addB(dsConv2B, nw.Conv2B),
		add(dsFC1W, nw.FC1W), addB(dsFC1B, nw.FC1B),
		add(dsFC2W, nw.FC2W), addB(dsFC2B, nw.FC2B),
	} {
		if step != nil {
			return nil, step
		}
	}
	return f.Encode(), nil
}

// LoadModel reads a model.hdf5 produced by SaveModel.
func LoadModel(data []byte) (*Network, error) {
	f, err := h5lite.Decode(data)
	if err != nil {
		return nil, err
	}
	get4 := func(name string) (*Tensor, error) {
		d, err := f.Get(name)
		if err != nil {
			return nil, err
		}
		vals, err := d.Float32s()
		if err != nil {
			return nil, err
		}
		s := d.Shape
		switch len(s) {
		case 4:
			t := NewTensor(s[0], s[1], s[2], s[3])
			copy(t.Data, vals)
			return t, nil
		case 2:
			t := NewTensor(s[0], s[1], 1, 1)
			copy(t.Data, vals)
			return t, nil
		default:
			return nil, fmt.Errorf("cnn: dataset %q has rank %d", name, len(s))
		}
	}
	getB := func(name string) ([]float32, error) {
		d, err := f.Get(name)
		if err != nil {
			return nil, err
		}
		return d.Float32s()
	}
	nw := &Network{}
	if nw.Conv1W, err = get4(dsConv1W); err != nil {
		return nil, err
	}
	if nw.Conv1B, err = getB(dsConv1B); err != nil {
		return nil, err
	}
	if nw.Conv2W, err = get4(dsConv2W); err != nil {
		return nil, err
	}
	if nw.Conv2B, err = getB(dsConv2B); err != nil {
		return nil, err
	}
	if nw.FC1W, err = get4(dsFC1W); err != nil {
		return nil, err
	}
	if nw.FC1B, err = getB(dsFC1B); err != nil {
		return nil, err
	}
	if nw.FC2W, err = get4(dsFC2W); err != nil {
		return nil, err
	}
	if nw.FC2B, err = getB(dsFC2B); err != nil {
		return nil, err
	}
	return nw, nil
}

// Dataset is a batch of images with reference labels (test10.hdf5 /
// testfull.hdf5 in the paper's build files).
type Dataset struct {
	Images *Tensor
	Labels []int32
}

// Dataset names inside the h5lite file.
const (
	dsImages = "data/images"
	dsLabels = "data/labels"
)

// SynthesizeDataset generates n synthetic images from seed and labels
// them with the reference network's own predictions, so a correct
// implementation scores 100% accuracy and an incorrect one measurably
// less (the project's "maintain a target accuracy" requirement).
func SynthesizeDataset(nw *Network, seed uint64, n int) (*Dataset, error) {
	rng := newPRNG(seed)
	imgs := NewTensor(n, 1, InputH, InputW)
	for i := range imgs.Data {
		imgs.Data[i] = rng.float(1)
	}
	labels32, err := nw.Classify(ImplIm2col, imgs)
	if err != nil {
		return nil, err
	}
	labels := make([]int32, n)
	for i, l := range labels32 {
		labels[i] = int32(l)
	}
	return &Dataset{Images: imgs, Labels: labels}, nil
}

// Encode serializes the dataset as an h5lite file (test*.hdf5).
func (d *Dataset) Encode() ([]byte, error) {
	f := h5lite.NewFile()
	if err := f.AddFloat32(dsImages, d.Images.Shape(), d.Images.Data); err != nil {
		return nil, err
	}
	if err := f.AddInt32(dsLabels, []int{len(d.Labels)}, d.Labels); err != nil {
		return nil, err
	}
	return f.Encode(), nil
}

// DecodeDataset reads a dataset file.
func DecodeDataset(data []byte) (*Dataset, error) {
	f, err := h5lite.Decode(data)
	if err != nil {
		return nil, err
	}
	di, err := f.Get(dsImages)
	if err != nil {
		return nil, err
	}
	if len(di.Shape) != 4 {
		return nil, fmt.Errorf("cnn: images dataset has rank %d", len(di.Shape))
	}
	vals, err := di.Float32s()
	if err != nil {
		return nil, err
	}
	imgs := NewTensor(di.Shape[0], di.Shape[1], di.Shape[2], di.Shape[3])
	copy(imgs.Data, vals)
	dl, err := f.Get(dsLabels)
	if err != nil {
		return nil, err
	}
	labels, err := dl.Int32s()
	if err != nil {
		return nil, err
	}
	if len(labels) != imgs.N {
		return nil, fmt.Errorf("cnn: %d labels for %d images", len(labels), imgs.N)
	}
	return &Dataset{Images: imgs, Labels: labels}, nil
}
