package cnn

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTensorIndexing(t *testing.T) {
	tt := NewTensor(2, 3, 4, 5)
	tt.Set(1, 2, 3, 4, 42)
	if got := tt.At(1, 2, 3, 4); got != 42 {
		t.Fatalf("At = %v", got)
	}
	if got := tt.Data[tt.Index(1, 2, 3, 4)]; got != 42 {
		t.Fatalf("Index = %v", got)
	}
	if tt.Len() != 120 {
		t.Fatalf("Len = %d", tt.Len())
	}
}

func TestTensorBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTensor(0,...) did not panic")
		}
	}()
	NewTensor(0, 1, 1, 1)
}

func TestConvKnownValues(t *testing.T) {
	// 1x1x3x3 input, single 2x2 all-ones filter, bias 1:
	// out[y][x] = 1 + sum of the 2x2 window.
	in := NewTensor(1, 1, 3, 3)
	for i := 0; i < 9; i++ {
		in.Data[i] = float32(i) // 0..8
	}
	w := NewTensor(1, 1, 2, 2)
	for i := range w.Data {
		w.Data[i] = 1
	}
	want := []float32{
		1 + 0 + 1 + 3 + 4, 1 + 1 + 2 + 4 + 5,
		1 + 3 + 4 + 6 + 7, 1 + 4 + 5 + 7 + 8,
	}
	for _, im := range Impls {
		out := Conv2D(im, in, w, []float32{1})
		if out.H != 2 || out.W != 2 {
			t.Fatalf("%v: out shape %v", im, out.Shape())
		}
		for i := range want {
			if out.Data[i] != want[i] {
				t.Errorf("%v: out[%d] = %v, want %v", im, i, out.Data[i], want[i])
			}
		}
	}
}

func TestReLU(t *testing.T) {
	tt := NewTensor(1, 1, 1, 4)
	copy(tt.Data, []float32{-1, 0, 2, -0.5})
	ReLU(tt)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if tt.Data[i] != want[i] {
			t.Fatalf("ReLU = %v", tt.Data)
		}
	}
}

func TestAvgPool2(t *testing.T) {
	in := NewTensor(1, 1, 2, 4)
	copy(in.Data, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	out := AvgPool2(in)
	if out.H != 1 || out.W != 2 {
		t.Fatalf("shape = %v", out.Shape())
	}
	if out.Data[0] != (1+2+5+6)/4.0 || out.Data[1] != (3+4+7+8)/4.0 {
		t.Fatalf("pool = %v", out.Data)
	}
}

func TestFullyConnectedKnown(t *testing.T) {
	in := NewTensor(1, 3, 1, 1)
	copy(in.Data, []float32{1, 2, 3})
	w := NewTensor(2, 3, 1, 1)
	copy(w.Data, []float32{1, 0, 0, 0, 1, 1})
	for _, im := range Impls {
		out := FullyConnected(im, in, w, []float32{10, 20})
		if out.Data[0] != 11 || out.Data[1] != 25 {
			t.Fatalf("%v: fc = %v", im, out.Data)
		}
	}
}

func TestArgMax(t *testing.T) {
	tt := NewTensor(2, 3, 1, 1)
	copy(tt.Data, []float32{0, 5, 2, 7, 1, 3})
	got := ArgMax(tt)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMax = %v", got)
	}
}

// TestImplementationsAgree is the core equivalence property: every
// optimization level computes the same network function.
func TestImplementationsAgree(t *testing.T) {
	nw := NewNetwork(408)
	ds, err := SynthesizeDataset(nw, 598, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := nw.Forward(ImplNaiveSerial, ds.Images)
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range Impls[1:] {
		got, err := nw.Forward(im, ds.Images)
		if err != nil {
			t.Fatal(err)
		}
		diff, err := MaxAbsDiff(ref, got)
		if err != nil {
			t.Fatal(err)
		}
		// Different summation orders allow small float divergence only.
		if diff > 1e-3 {
			t.Errorf("%v diverges from naive by %v", im, diff)
		}
	}
}

func TestQuickConvEquivalence(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := newPRNG(seed)
		in := NewTensor(2, 3, 9, 9)
		for i := range in.Data {
			in.Data[i] = rng.float(1)
		}
		w := NewTensor(4, 3, 3, 3)
		for i := range w.Data {
			w.Data[i] = rng.float(1)
		}
		bias := []float32{0.1, -0.2, 0.3, 0}
		ref := Conv2D(ImplNaiveSerial, in, w, bias)
		for _, im := range Impls[1:] {
			got := Conv2D(im, in, w, bias)
			d, err := MaxAbsDiff(ref, got)
			if err != nil || d > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyPerfectOnOwnLabels(t *testing.T) {
	nw := NewNetwork(408)
	ds, err := SynthesizeDataset(nw, 9, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range Impls {
		acc, err := nw.Accuracy(im, ds.Images, ds.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if acc != 1.0 {
			t.Errorf("%v accuracy = %v, want 1.0", im, acc)
		}
	}
}

func TestAccuracyDetectsWrongModel(t *testing.T) {
	nw := NewNetwork(408)
	ds, _ := SynthesizeDataset(nw, 9, 100)
	other := NewNetwork(999) // different weights = wrong implementation
	acc, err := other.Accuracy(ImplIm2col, ds.Images, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc > 0.9 {
		t.Errorf("wrong model scored %v; accuracy check has no power", acc)
	}
}

func TestForwardRejectsBadInput(t *testing.T) {
	nw := NewNetwork(1)
	bad := NewTensor(1, 1, 27, 28)
	if _, err := nw.Forward(ImplNaiveSerial, bad); err == nil || !strings.Contains(err.Error(), "input") {
		t.Fatalf("bad input: %v", err)
	}
	if _, err := nw.Accuracy(ImplNaiveSerial, NewTensor(2, 1, 28, 28), []int32{1}); err == nil {
		t.Fatal("label count mismatch accepted")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	nw := NewNetwork(408)
	blob, err := nw.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := SynthesizeDataset(nw, 3, 5)
	want, _ := nw.Forward(ImplIm2col, ds.Images)
	got, err := loaded.Forward(ImplIm2col, ds.Images)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := MaxAbsDiff(want, got)
	if d != 0 {
		t.Errorf("loaded model diverges by %v", d)
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel([]byte("junk")); err == nil {
		t.Fatal("garbage model accepted")
	}
}

func TestDatasetEncodeDecodeRoundTrip(t *testing.T) {
	nw := NewNetwork(408)
	ds, _ := SynthesizeDataset(nw, 4, 10)
	blob, err := ds.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDataset(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Images.N != 10 || len(back.Labels) != 10 {
		t.Fatalf("decoded = %v images, %v labels", back.Images.N, len(back.Labels))
	}
	d, _ := MaxAbsDiff(ds.Images, back.Images)
	if d != 0 {
		t.Errorf("images diverge by %v", d)
	}
	for i := range ds.Labels {
		if ds.Labels[i] != back.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}

func TestDatasetDeterministic(t *testing.T) {
	nw := NewNetwork(408)
	a, _ := SynthesizeDataset(nw, 7, 6)
	b, _ := SynthesizeDataset(nw, 7, 6)
	d, _ := MaxAbsDiff(a.Images, b.Images)
	if d != 0 {
		t.Error("same seed produced different datasets")
	}
	c, _ := SynthesizeDataset(nw, 8, 6)
	d2, _ := MaxAbsDiff(a.Images, c.Images)
	if d2 == 0 {
		t.Error("different seeds produced identical datasets")
	}
}

func TestImplString(t *testing.T) {
	names := map[Impl]string{
		ImplNaiveSerial: "naive-serial", ImplLoopReorder: "loop-reorder",
		ImplTiled: "tiled", ImplIm2col: "im2col", ImplParallel: "parallel",
		Impl(99): "unknown",
	}
	for im, want := range names {
		if im.String() != want {
			t.Errorf("%d.String() = %q", im, im.String())
		}
	}
}
