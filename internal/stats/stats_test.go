package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2016, 12, 2, 0, 0, 0, 0, time.UTC)

func TestTimeSeriesAddAndTotal(t *testing.T) {
	ts := NewTimeSeries(t0, time.Hour, 48)
	ts.Add(t0)
	ts.Add(t0.Add(30 * time.Minute))
	ts.Add(t0.Add(time.Hour))
	ts.Add(t0.Add(47*time.Hour + 59*time.Minute))
	if ts.Counts[0] != 2 || ts.Counts[1] != 1 || ts.Counts[47] != 1 {
		t.Fatalf("counts = %v", ts.Counts[:3])
	}
	if ts.Total() != 4 {
		t.Fatalf("Total = %d", ts.Total())
	}
}

func TestTimeSeriesClampsOutOfRange(t *testing.T) {
	ts := NewTimeSeries(t0, time.Hour, 2)
	if ts.Add(t0.Add(-time.Hour)) {
		t.Error("before-range add reported in-range")
	}
	if ts.Add(t0.Add(100 * time.Hour)) {
		t.Error("after-range add reported in-range")
	}
	if ts.Counts[0] != 1 || ts.Counts[1] != 1 {
		t.Fatalf("clamped counts = %v", ts.Counts)
	}
}

func TestPeakAndBucketStart(t *testing.T) {
	ts := NewTimeSeries(t0, time.Hour, 5)
	for i := 0; i < 7; i++ {
		ts.Add(t0.Add(3 * time.Hour))
	}
	ts.Add(t0)
	count, idx := ts.Peak()
	if count != 7 || idx != 3 {
		t.Fatalf("Peak = %d@%d", count, idx)
	}
	if !ts.BucketStart(3).Equal(t0.Add(3 * time.Hour)) {
		t.Fatalf("BucketStart = %v", ts.BucketStart(3))
	}
}

func TestHourOfDayProfile(t *testing.T) {
	ts := NewTimeSeries(t0, time.Hour, 48)
	ts.Add(t0.Add(14 * time.Hour)) // 14:00 day one
	ts.Add(t0.Add(38 * time.Hour)) // 14:00 day two
	ts.Add(t0.Add(3 * time.Hour))
	prof := ts.HourOfDayProfile()
	if prof[14] != 2 || prof[3] != 1 {
		t.Fatalf("profile = %v", prof)
	}
}

func TestSparklineAndDaily(t *testing.T) {
	ts := NewTimeSeries(t0, time.Hour, 24)
	for i := 0; i < 24; i++ {
		for j := 0; j <= i; j++ {
			ts.Add(t0.Add(time.Duration(i) * time.Hour))
		}
	}
	spark := ts.Sparkline()
	if len([]rune(spark)) != 24 {
		t.Fatalf("sparkline runes = %d", len([]rune(spark)))
	}
	if !strings.HasSuffix(spark, "█") {
		t.Errorf("peak bucket not full block: %q", spark)
	}
	daily := ts.FormatDaily()
	if !strings.Contains(daily, "2016-12-02") || !strings.Contains(daily, "300") {
		t.Errorf("daily:\n%s", daily)
	}
	// Empty series renders the floor.
	empty := NewTimeSeries(t0, time.Hour, 3)
	if empty.Sparkline() != "▁▁▁" {
		t.Errorf("empty sparkline = %q", empty.Sparkline())
	}
}

func TestDurationsQuantiles(t *testing.T) {
	var d Durations
	for i := 1; i <= 100; i++ {
		d.Add(time.Duration(i) * time.Second)
	}
	if d.N() != 100 {
		t.Fatalf("N = %d", d.N())
	}
	if got := d.Quantile(0.5); got != 50*time.Second {
		t.Errorf("p50 = %v", got)
	}
	if got := d.Quantile(0.95); got != 95*time.Second {
		t.Errorf("p95 = %v", got)
	}
	if d.Min() != time.Second || d.Max() != 100*time.Second {
		t.Errorf("min/max = %v/%v", d.Min(), d.Max())
	}
	if got := d.Mean(); got != 50500*time.Millisecond {
		t.Errorf("mean = %v", got)
	}
}

func TestDurationsEmpty(t *testing.T) {
	var d Durations
	if d.Quantile(0.5) != 0 || d.Mean() != 0 || d.Max() != 0 {
		t.Error("empty Durations must return zeros")
	}
}

func TestDurationsQuantileAfterInterleavedAdds(t *testing.T) {
	var d Durations
	d.Add(3 * time.Second)
	_ = d.Quantile(0.5)
	d.Add(time.Second) // must re-sort
	if got := d.Quantile(0); got != time.Second {
		t.Errorf("min after re-add = %v", got)
	}
}

// Property: quantile is monotonic in q and bounded by min/max.
func TestQuickQuantileMonotonic(t *testing.T) {
	f := func(samples []uint32, qa, qb float64) bool {
		if len(samples) == 0 {
			return true
		}
		var d Durations
		for _, s := range samples {
			d.Add(time.Duration(s))
		}
		qa = clamp01(qa)
		qb = clamp01(qb)
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := d.Quantile(qa), d.Quantile(qb)
		return va <= vb && va >= d.Min() && vb <= d.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func clamp01(v float64) float64 {
	if v != v || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestTableAlignment(t *testing.T) {
	tbl := &Table{Header: []string{"Name", "Value"}}
	tbl.AddRow("short", "1")
	tbl.AddRow("a-much-longer-name", "22222")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The value column starts at the same offset on every row.
	idx := strings.Index(lines[2], "1")
	if !strings.HasPrefix(lines[3][idx:], "22222") {
		t.Errorf("misaligned:\n%s", out)
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("missing separator:\n%s", out)
	}
}
