// Package stats provides the small statistics toolkit the reproduction
// harness uses to regenerate the paper's figures: fixed-width time
// series (submissions per hour, Figure 4), duration quantiles (queue
// delay), and deterministic ASCII renderings of tables and charts.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// TimeSeries counts events in fixed-width buckets from Start.
type TimeSeries struct {
	Start  time.Time
	Width  time.Duration
	Counts []int
}

// NewTimeSeries covers [start, start+n*width).
func NewTimeSeries(start time.Time, width time.Duration, n int) *TimeSeries {
	return &TimeSeries{Start: start, Width: width, Counts: make([]int, n)}
}

// Add counts an event at t; out-of-range events are clamped into the
// first/last bucket and reported false.
func (ts *TimeSeries) Add(t time.Time) bool {
	idx := int(t.Sub(ts.Start) / ts.Width)
	if idx < 0 {
		ts.Counts[0]++
		return false
	}
	if idx >= len(ts.Counts) {
		ts.Counts[len(ts.Counts)-1]++
		return false
	}
	ts.Counts[idx]++
	return true
}

// Total sums all buckets.
func (ts *TimeSeries) Total() int {
	n := 0
	for _, c := range ts.Counts {
		n += c
	}
	return n
}

// Peak returns the maximum bucket count and its index.
func (ts *TimeSeries) Peak() (count, index int) {
	for i, c := range ts.Counts {
		if c > count {
			count, index = c, i
		}
	}
	return count, index
}

// BucketStart returns the start time of bucket i.
func (ts *TimeSeries) BucketStart(i int) time.Time {
	return ts.Start.Add(time.Duration(i) * ts.Width)
}

// HourOfDayProfile folds the series into 24 hour-of-day totals (the
// circadian shape of Figure 4). Width must divide time.Hour or be a
// multiple of it.
func (ts *TimeSeries) HourOfDayProfile() [24]int {
	var prof [24]int
	for i, c := range ts.Counts {
		h := ts.BucketStart(i).Hour()
		prof[h] += c
	}
	return prof
}

// Sparkline renders the series with eight-level block characters.
func (ts *TimeSeries) Sparkline() string {
	levels := []rune("▁▂▃▄▅▆▇█")
	peak, _ := ts.Peak()
	if peak == 0 {
		return strings.Repeat("▁", len(ts.Counts))
	}
	var b strings.Builder
	for _, c := range ts.Counts {
		idx := c * (len(levels) - 1) / peak
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// FormatDaily renders per-bucket counts grouped by day (Figure 4's
// textual rendering): one row per day with the day's total and an hourly
// sparkline, assuming Width == time.Hour.
func (ts *TimeSeries) FormatDaily() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %s\n", "Day", "Total", "Per-hour")
	perDay := 24
	for d := 0; d*perDay < len(ts.Counts); d++ {
		lo := d * perDay
		hi := lo + perDay
		if hi > len(ts.Counts) {
			hi = len(ts.Counts)
		}
		day := &TimeSeries{Start: ts.BucketStart(lo), Width: ts.Width, Counts: ts.Counts[lo:hi]}
		fmt.Fprintf(&b, "%-12s %-8d %s\n", day.Start.Format("2006-01-02"), day.Total(), day.Sparkline())
	}
	return b.String()
}

// Durations summarizes a sample of durations.
type Durations struct {
	sorted []time.Duration
	dirty  bool
	data   []time.Duration
}

// Add appends a sample.
func (d *Durations) Add(v time.Duration) {
	d.data = append(d.data, v)
	d.dirty = true
}

// N reports the sample count.
func (d *Durations) N() int { return len(d.data) }

func (d *Durations) ensure() {
	if d.dirty || d.sorted == nil {
		d.sorted = append(d.sorted[:0], d.data...)
		sort.Slice(d.sorted, func(i, j int) bool { return d.sorted[i] < d.sorted[j] })
		d.dirty = false
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank.
func (d *Durations) Quantile(q float64) time.Duration {
	if len(d.data) == 0 {
		return 0
	}
	d.ensure()
	if q <= 0 {
		return d.sorted[0]
	}
	if q >= 1 {
		return d.sorted[len(d.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(d.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.sorted[idx]
}

// Mean returns the arithmetic mean.
func (d *Durations) Mean() time.Duration {
	if len(d.data) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d.data {
		sum += v
	}
	return sum / time.Duration(len(d.data))
}

// Max returns the maximum sample.
func (d *Durations) Max() time.Duration { return d.Quantile(1) }

// Min returns the minimum sample.
func (d *Durations) Min() time.Duration { return d.Quantile(0) }

// Table renders aligned text tables deterministically.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row (cells are stringified by the caller).
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
