package lint

import (
	"go/ast"
	"go/types"
)

// spanStarters are the method names that mint an in-flight span. The
// match is by name plus result shape (*Span) rather than by package, so
// the check guards any tracer with this API — including the tiny stand-in
// tracers in the golden testdata.
var spanStarters = map[string]bool{
	"StartRoot": true,
	"StartSpan": true,
	"Child":     true,
}

// checkSpan enforces span hygiene: every span returned by
// StartRoot/StartSpan/Child is either ended in the same function
// (directly or in a defer, possibly inside a function literal) or
// handed off — passed to another function, returned, stored, or sent —
// making the receiver responsible for it. A span that is provably
// neither leaks an un-ended span: it never reaches the tracer's ring or
// the exporter, so the job's trace silently loses a node.
func checkSpan(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	walkFuncs(pkg, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ExprStmt:
				if call, ok := v.X.(*ast.CallExpr); ok && isSpanStart(pkg, call) {
					diags = append(diags, Diagnostic{
						Check:   "span",
						Pos:     prog.Fset.Position(call.Pos()),
						Message: "span result discarded: the span can never be ended",
					})
				}
			case *ast.AssignStmt:
				if len(v.Rhs) != 1 || len(v.Lhs) != 1 {
					return true
				}
				call, ok := v.Rhs[0].(*ast.CallExpr)
				if !ok || !isSpanStart(pkg, call) {
					return true
				}
				id, ok := v.Lhs[0].(*ast.Ident)
				if !ok {
					return true // stored into a field/index: handed off
				}
				if id.Name == "_" {
					diags = append(diags, Diagnostic{
						Check:   "span",
						Pos:     prog.Fset.Position(call.Pos()),
						Message: "span assigned to _: the span can never be ended",
					})
					return true
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj == nil {
					return true
				}
				use := analyzeVarUse(pkg, decl.Body, obj, v)
				if !use.methodCalled["End"] && !use.escapes {
					diags = append(diags, Diagnostic{
						Check:   "span",
						Pos:     prog.Fset.Position(v.Pos()),
						Message: "span " + id.Name + " is never ended: add defer " + id.Name + ".End() (or hand the span off)",
					})
				}
			}
			return true
		})
	})
	return diags
}

// isSpanStart reports whether call is a method call minting a span:
// a starter name returning a pointer to a type named Span.
func isSpanStart(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !spanStarters[sel.Sel.Name] {
		return false
	}
	t := pkg.Info.Types[call].Type
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// varUse summarizes how one local variable is used inside a body.
type varUse struct {
	// methodCalled records the names of methods invoked with the
	// variable as receiver (x.Foo() anywhere, including defers and
	// nested function literals).
	methodCalled map[string]bool
	// escapes is true when the variable itself is handed to other code:
	// passed bare (or by address) as a call argument, returned, sent on
	// a channel, or assigned/stored somewhere else.
	escapes bool
}

// analyzeVarUse walks body classifying every use of obj. defStmt is the
// defining statement, excluded from escape analysis.
func analyzeVarUse(pkg *Package, body *ast.BlockStmt, obj types.Object, defStmt ast.Stmt) varUse {
	use := varUse{methodCalled: map[string]bool{}}
	isObj := func(e ast.Expr) bool {
		for {
			switch v := e.(type) {
			case *ast.ParenExpr:
				e = v.X
				continue
			case *ast.UnaryExpr:
				e = v.X
				continue
			case *ast.Ident:
				return pkg.Info.Uses[v] == obj
			default:
				return false
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
					use.methodCalled[sel.Sel.Name] = true
				}
			}
			for _, a := range v.Args {
				if isObj(a) {
					use.escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if isObj(r) {
					use.escapes = true
				}
			}
		case *ast.AssignStmt:
			if v == defStmt {
				return true
			}
			for _, r := range v.Rhs {
				if isObj(r) {
					use.escapes = true
				}
			}
		case *ast.SendStmt:
			if isObj(v.Value) {
				use.escapes = true
			}
		case *ast.CompositeLit:
			for _, e := range v.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if isObj(e) {
					use.escapes = true
				}
			}
		}
		return true
	})
	return use
}
