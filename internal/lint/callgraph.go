package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the whole-module call graph the interprocedural
// checks (lockorder, goroleak) compose function summaries over. Nodes
// are function bodies: every declared function or method in the module,
// plus every function literal (literals are their own nodes so a
// goroutine body is analyzable independently of its enclosing
// function). Edges are resolved statically:
//
//   - direct calls to module functions and methods;
//   - interface method calls, fanned out to every module type whose
//     method set satisfies the interface (the implements-set);
//   - immediately-invoked and deferred function literals;
//   - calls through a local variable bound exactly once to a literal.
//
// Calls through other function values (fields, parameters, escaping
// closures) are not resolved; escaping literals are still analyzed as
// roots of their own, so their lock acquisitions feed the global lock
// graph, but effects do not propagate to the caller. This unsoundness
// is deliberate: it keeps the engine quiet where it cannot be precise.

// CGNode is one function body in the call graph.
type CGNode struct {
	// Fn is the declared function or method; nil for literals.
	Fn *types.Func
	// Lit is the function literal; nil for declared functions.
	Lit  *ast.FuncLit
	Decl *ast.FuncDecl
	Pkg  *Package
	// Name is the display name: "(*Broker).Publish", "Publish",
	// or "Publish$lit" for a literal nested in Publish.
	Name string

	// Calls are edges executed on the caller's goroutine (direct calls,
	// deferred calls, immediately-invoked literals).
	Calls []CGEdge
	// Spawns are go-statement edges: the callee runs on a new goroutine.
	Spawns []CGEdge

	index, lowlink int
	onStack        bool
}

// Body returns the node's function body.
func (n *CGNode) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// CGEdge is one resolved call or spawn site.
type CGEdge struct {
	Callee *CGNode
	Site   token.Pos
	// Defer marks edges from defer statements: the callee runs at
	// function exit, not at the site.
	Defer bool
}

// CallGraph is the module-wide graph plus the bottom-up SCC order the
// summary computation walks.
type CallGraph struct {
	ByObj map[*types.Func]*CGNode
	ByLit map[*ast.FuncLit]*CGNode
	Nodes []*CGNode
	// SCCs lists strongly connected components bottom-up: every edge
	// out of SCCs[i] lands in SCCs[j<=i], so callee summaries exist
	// (or are in the same component) when a node is summarized.
	SCCs [][]*CGNode

	prog       *Program
	implCache  map[*types.Interface]map[string][]*CGNode
	namedTypes []types.Type
}

// buildCallGraph constructs the graph over every package in prog.
func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		ByObj:     map[*types.Func]*CGNode{},
		ByLit:     map[*ast.FuncLit]*CGNode{},
		prog:      prog,
		implCache: map[*types.Interface]map[string][]*CGNode{},
	}
	// Node pass: declared functions, then literals (named by their
	// innermost enclosing declared function).
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &CGNode{Fn: obj, Decl: fd, Pkg: pkg, Name: declName(fd)}
				g.ByObj[obj] = n
				g.Nodes = append(g.Nodes, n)
				i := 0
				ast.Inspect(fd.Body, func(m ast.Node) bool {
					if lit, ok := m.(*ast.FuncLit); ok {
						i++
						ln := &CGNode{Lit: lit, Pkg: pkg, Name: fmt.Sprintf("%s$%d", n.Name, i)}
						g.ByLit[lit] = ln
						g.Nodes = append(g.Nodes, ln)
					}
					return true
				})
			}
		}
	}
	g.collectNamedTypes()
	for _, n := range g.Nodes {
		g.addEdges(n)
	}
	g.scc()
	return g
}

func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if idx, ok := recv.(*ast.IndexExpr); ok { // generic receiver
		recv = idx.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return "(*" + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// collectNamedTypes gathers every package-level named (non-interface)
// type in the module; these are the candidates for implements-sets.
func (g *CallGraph) collectNamedTypes() {
	for _, pkg := range g.prog.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			g.namedTypes = append(g.namedTypes, t)
		}
	}
}

// implementers resolves an interface method call to the matching
// concrete methods of every module type satisfying the interface.
func (g *CallGraph) implementers(iface *types.Interface, method string) []*CGNode {
	byMethod := g.implCache[iface]
	if byMethod == nil {
		byMethod = map[string][]*CGNode{}
		g.implCache[iface] = byMethod
	}
	if nodes, ok := byMethod[method]; ok {
		return nodes
	}
	var nodes []*CGNode
	for _, t := range g.namedTypes {
		pt := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(pt, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, true, nil, method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n := g.ByObj[fn]; n != nil {
			nodes = append(nodes, n)
		}
	}
	byMethod[method] = nodes
	return nodes
}

// resolveCall returns the module nodes a call expression may reach.
// Unresolvable calls (function values, out-of-module callees, type
// conversions) return nil.
func (g *CallGraph) resolveCall(pkg *Package, call *ast.CallExpr) []*CGNode {
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		if n := g.ByLit[lit]; n != nil {
			return []*CGNode{n}
		}
		return nil
	}
	var id *ast.Ident
	switch v := fun.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
		if sel, ok := pkg.Info.Selections[v]; ok && sel.Kind() == types.MethodVal {
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return g.implementers(iface, id.Name)
			}
		}
	default:
		return nil
	}
	switch obj := pkg.Info.Uses[id].(type) {
	case *types.Func:
		if n := g.ByObj[obj]; n != nil {
			return []*CGNode{n}
		}
		// Instantiated generic functions resolve via their origin.
		if n := g.ByObj[obj.Origin()]; n != nil {
			return []*CGNode{n}
		}
	case *types.Var:
		// A local variable bound exactly once to a function literal.
		if lit := singleLitBinding(pkg, obj); lit != nil {
			if n := g.ByLit[lit]; n != nil {
				return []*CGNode{n}
			}
		}
	}
	return nil
}

// singleLitBinding returns the literal a local function variable is
// bound to, provided it is assigned exactly once in its defining
// function (so the binding is unambiguous).
func singleLitBinding(pkg *Package, obj *types.Var) *ast.FuncLit {
	decl := enclosingDecl(pkg, obj.Pos())
	if decl == nil {
		return nil
	}
	var lit *ast.FuncLit
	writes := 0
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			o := pkg.Info.Defs[id]
			if o == nil {
				o = pkg.Info.Uses[id]
			}
			if o != obj {
				continue
			}
			writes++
			if i < len(as.Rhs) {
				if l, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
					lit = l
				}
			}
		}
		return true
	})
	if writes == 1 {
		return lit
	}
	return nil
}

// enclosingDecl finds the function declaration whose body covers pos.
func enclosingDecl(pkg *Package, pos token.Pos) *ast.FuncDecl {
	for _, f := range pkg.Files {
		if f.FileStart > pos || f.FileEnd < pos {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && fd.Body.Pos() <= pos && pos <= fd.Body.End() {
				return fd
			}
		}
	}
	return nil
}

// addEdges walks one node's body — stopping at nested literal
// boundaries — and records its resolved calls and spawns.
func (g *CallGraph) addEdges(n *CGNode) {
	walkNode(n.Body(), n.Lit, func(m ast.Node) {
		switch v := m.(type) {
		case *ast.GoStmt:
			for _, c := range g.resolveCall(n.Pkg, v.Call) {
				n.Spawns = append(n.Spawns, CGEdge{Callee: c, Site: v.Pos()})
			}
		case *ast.DeferStmt:
			for _, c := range g.resolveCall(n.Pkg, v.Call) {
				n.Calls = append(n.Calls, CGEdge{Callee: c, Site: v.Pos(), Defer: true})
			}
		case *ast.CallExpr:
			for _, c := range g.resolveCall(n.Pkg, v) {
				n.Calls = append(n.Calls, CGEdge{Callee: c, Site: v.Pos()})
			}
		}
	})
}

// walkNode visits every go statement, defer statement, and call
// expression in body, except inside nested function literals (each
// literal is its own CGNode). The call expression directly under a
// go/defer statement is delivered only via its statement, so spawned
// callees are not double-counted as synchronous calls.
func walkNode(body *ast.BlockStmt, self *ast.FuncLit, visit func(ast.Node)) {
	statementCall := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != self {
			return false
		}
		switch v := n.(type) {
		case *ast.GoStmt:
			statementCall[v.Call] = true
			visit(n)
		case *ast.DeferStmt:
			statementCall[v.Call] = true
			visit(n)
		case *ast.CallExpr:
			if !statementCall[v] {
				visit(n)
			}
		}
		return true
	})
}

// scc runs Tarjan's algorithm over Calls+Spawns edges. Components are
// emitted callees-first, the order bottom-up summarization needs.
func (g *CallGraph) scc() {
	for _, n := range g.Nodes {
		n.index = -1
	}
	var (
		counter int
		stack   []*CGNode
		visit   func(n *CGNode)
	)
	visit = func(n *CGNode) {
		n.index = counter
		n.lowlink = counter
		counter++
		stack = append(stack, n)
		n.onStack = true
		for _, e := range append(append([]CGEdge{}, n.Calls...), n.Spawns...) {
			c := e.Callee
			if c.index < 0 {
				visit(c)
				if c.lowlink < n.lowlink {
					n.lowlink = c.lowlink
				}
			} else if c.onStack && c.index < n.lowlink {
				n.lowlink = c.index
			}
		}
		if n.lowlink == n.index {
			var comp []*CGNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			g.SCCs = append(g.SCCs, comp)
		}
	}
	for _, n := range g.Nodes {
		if n.index < 0 {
			visit(n)
		}
	}
}
