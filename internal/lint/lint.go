// Package lint is raivet's engine: a project-specific static-analysis
// pass that mechanically enforces the correctness invariants RAI's
// telemetry, RPC, and observability layers rely on but that the
// compiler cannot see — inject clock.Clock instead of reading the wall
// clock, thread context.Context instead of minting context.Background,
// end every span, close and drain every HTTP response body, and keep
// goroutine/WaitGroup/lock usage in the shapes that survive -race.
//
// Each invariant is a Check. Checks operate on type-checked packages
// (see load.go) so they resolve real objects — "time.Now" is flagged
// only when time is the standard-library package, not someone's local
// variable. Findings can be suppressed one line at a time:
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory; a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
}

// String renders the conventional file:line:col: [check] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one named invariant.
type Check struct {
	// Name is the identifier used by -enable/-disable flags and
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description shown by raivet -list.
	Doc string
	// Run reports the check's findings for one package.
	Run func(prog *Program, pkg *Package) []Diagnostic
}

// Checks returns every check in stable order.
func Checks() []*Check {
	return []*Check{
		{Name: "clock", Doc: "no direct time.Now/Sleep/After/... outside internal/clock; inject clock.Clock", Run: checkClock},
		{Name: "ctxbg", Doc: "no context.Background()/context.TODO() in library (non-main) code", Run: checkCtxBackground},
		{Name: "ctxfirst", Doc: "exported functions take context.Context as the first parameter", Run: checkCtxFirst},
		{Name: "deprecated", Doc: "no calls to deprecated functions from non-deprecated code", Run: checkDeprecated},
		{Name: "span", Doc: "every started telemetry span is ended or handed off", Run: checkSpan},
		{Name: "httpresp", Doc: "every *http.Response body is closed and drained before connection reuse", Run: checkHTTPResp},
		{Name: "goloop", Doc: "goroutines do not capture loop variables; pass them as arguments", Run: checkGoLoop},
		{Name: "wgadd", Doc: "sync.WaitGroup.Add happens before the goroutine it accounts for", Run: checkWgAdd},
		{Name: "lockcopy", Doc: "types containing sync primitives are not passed, received, or returned by value", Run: checkLockCopy},
		{Name: "stream", Doc: "no io.ReadAll in the storage data plane (objstore/docstore/blobstore); stream or bound with LimitReader", Run: checkStream},
		{Name: "lockorder", Doc: "no cycles in the whole-module lock-ordering graph (composed from function summaries)", Run: checkLockOrder},
		{Name: "goroleak", Doc: "spawned goroutines cannot block forever on a channel or sync wait without a cancellation path", Run: checkGoroLeak},
		{Name: "errflow", Doc: "error results are not discarded or overwritten before any check", Run: checkErrFlow},
		{Name: "ctxflow", Doc: "a caller with ctx in scope does not pass a context.Background-rooted context", Run: checkCtxFlow},
	}
}

// CheckNames returns the names of all checks, in order.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// Select resolves -enable/-disable style selections. enable empty means
// all checks; disable wins over enable. Unknown names are an error.
func Select(enable, disable []string) ([]*Check, error) {
	known := map[string]*Check{}
	for _, c := range Checks() {
		known[c.Name] = c
	}
	for _, n := range append(append([]string{}, enable...), disable...) {
		if known[n] == nil {
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", n, strings.Join(CheckNames(), ", "))
		}
	}
	off := map[string]bool{}
	for _, n := range disable {
		off[n] = true
	}
	var out []*Check
	if len(enable) == 0 {
		for _, c := range Checks() {
			if !off[c.Name] {
				out = append(out, c)
			}
		}
		return out, nil
	}
	for _, n := range enable {
		if !off[n] {
			out = append(out, known[n])
		}
	}
	return out, nil
}

// Run applies checks to every package, resolves suppressions, and
// returns the surviving findings sorted by position.
func Run(prog *Program, checks []*Check) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		sup, malformed := suppressions(prog, pkg)
		diags = append(diags, malformed...)
		for _, c := range checks {
			for _, d := range c.Run(prog, pkg) {
				d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
				if sup.covers(d) {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Check < diags[j].Check
	})
	return diags
}

// suppressionSet records which (file, line, check) triples are ignored.
type suppressionSet map[string]map[int]map[string]bool

func (s suppressionSet) covers(d Diagnostic) bool {
	return s[d.File][d.Line][d.Check] || s[d.File][d.Line]["*"]
}

func (s suppressionSet) add(file string, line int, check string) {
	byLine := s[file]
	if byLine == nil {
		byLine = map[int]map[string]bool{}
		s[file] = byLine
	}
	byCheck := byLine[line]
	if byCheck == nil {
		byCheck = map[string]bool{}
		byLine[line] = byCheck
	}
	byCheck[check] = true
}

// suppressions scans a package's comments for //lint:ignore directives.
// A well-formed directive ("//lint:ignore <check> <reason>") suppresses
// the named check on its own line and the line below; a directive with
// no reason (or naming an unknown check) is reported as a finding so
// suppressions stay auditable.
func suppressions(prog *Program, pkg *Package) (suppressionSet, []Diagnostic) {
	set := suppressionSet{}
	var malformed []Diagnostic
	known := map[string]bool{"*": true}
	for _, name := range CheckNames() {
		known[name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 || !known[fields[0]] {
					malformed = append(malformed, Diagnostic{
						Check: "suppression",
						Pos:   pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "malformed //lint:ignore: want \"//lint:ignore <check> <reason>\"",
					})
					continue
				}
				set.add(pos.Filename, pos.Line, fields[0])
				set.add(pos.Filename, pos.Line+1, fields[0])
			}
		}
	}
	return set, malformed
}

// ---- shared AST helpers used by the checks ----

// walkFuncs visits every function body in the package: declarations and
// their nested literals are visited as whole declarations (fn is called
// once per FuncDecl with a body).
func walkFuncs(pkg *Package, fn func(decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// identRoot unwraps selector chains and parenthesis to the leftmost
// identifier: a.b.c -> a, (x).y -> x. Returns nil for non-ident roots.
func identRoot(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.CallExpr:
			e = v.Fun
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}
