package lint

import (
	"encoding/json"
	"io"
	"strings"
)

// SARIF output: the minimal slice of the SARIF 2.1.0 schema that CI
// annotation services consume — one run, one tool, one rule per check,
// one result per diagnostic with a physical location. Nothing here is
// raivet-specific beyond the driver name, so the structs double as the
// decode side for the round-trip test.

// SarifLog is the document root.
type SarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SarifRun `json:"runs"`
}

type SarifRun struct {
	Tool    SarifTool     `json:"tool"`
	Results []SarifResult `json:"results"`
}

type SarifTool struct {
	Driver SarifDriver `json:"driver"`
}

type SarifDriver struct {
	Name  string      `json:"name"`
	Rules []SarifRule `json:"rules"`
}

type SarifRule struct {
	ID               string       `json:"id"`
	ShortDescription SarifMessage `json:"shortDescription"`
}

type SarifMessage struct {
	Text string `json:"text"`
}

type SarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   SarifMessage    `json:"message"`
	Locations []SarifLocation `json:"locations"`
}

type SarifLocation struct {
	PhysicalLocation SarifPhysical `json:"physicalLocation"`
}

type SarifPhysical struct {
	ArtifactLocation SarifArtifact `json:"artifactLocation"`
	Region           SarifRegion   `json:"region"`
}

type SarifArtifact struct {
	URI string `json:"uri"`
}

type SarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SarifFromDiagnostics builds the document for a finished run. Every
// registered check appears as a rule (so a clean run still names what
// it enforced); findings become warning-level results.
func SarifFromDiagnostics(diags []Diagnostic) SarifLog {
	var rules []SarifRule
	for _, c := range Checks() {
		rules = append(rules, SarifRule{ID: c.Name, ShortDescription: SarifMessage{Text: c.Doc}})
	}
	results := []SarifResult{}
	for _, d := range diags {
		results = append(results, SarifResult{
			RuleID:  d.Check,
			Level:   "warning",
			Message: SarifMessage{Text: d.Message},
			Locations: []SarifLocation{{
				PhysicalLocation: SarifPhysical{
					ArtifactLocation: SarifArtifact{URI: d.File},
					Region:           SarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	return SarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []SarifRun{{
			Tool:    SarifTool{Driver: SarifDriver{Name: "raivet", Rules: rules}},
			Results: results,
		}},
	}
}

// WriteSARIF encodes the diagnostics as an indented SARIF document.
func WriteSARIF(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(SarifFromDiagnostics(diags))
}

// CountIgnores counts the live (well-formed) //lint:ignore directives
// across the program — the suppression debt a build budgets with
// raivet -max-ignores.
func CountIgnores(prog *Program) int {
	n := 0
	known := map[string]bool{"*": true}
	for _, name := range CheckNames() {
		known[name] = true
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					if fields := strings.Fields(rest); len(fields) >= 2 && known[fields[0]] {
						n++
					}
				}
			}
		}
	}
	return n
}
