package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// This file computes per-function summaries bottom-up over the call
// graph's SCCs, and the program-wide facts (lock-order pairs, channel
// close/make sites) the interprocedural checks consume. Within an SCC
// the summaries are iterated to a fixed point, so recursion and mutual
// calls converge.
//
// The flow model is deliberately structured, not a full CFG: statements
// are walked in source order, branches are analyzed independently and
// merged by intersection (a lock counts as held after a conditional
// only when every non-terminating branch holds it), and loop bodies are
// walked once. Intersection-merging trades a little soundness for
// precision: the lock graph only gains edges the code provably creates
// on some path, which keeps cycle reports trustworthy.

// maxBlockPoints caps the blocking sites one summary carries; a
// function reaching more than this many distinct uncancellable ops is
// already reportable from the first.
const maxBlockPoints = 8

// Summary is what one function exposes to its callers.
type Summary struct {
	// Acquires holds every lock class the function (or any callee,
	// transitively) may acquire.
	Acquires map[types.Object]bool
	// HeldAtExit holds lock classes still held on EVERY return path —
	// the lock-helper shape ("caller must unlock"). Must-hold
	// intersection, so a helper that returns locked only on success
	// (the `t, err := lockX(); if err != nil { return }` idiom)
	// contributes nothing rather than poisoning every caller.
	HeldAtExit map[types.Object]bool
	// Releases holds lock classes the function unlocks without having
	// acquired itself — the unlock-helper shape ("caller held it").
	Releases map[types.Object]bool
	// Blocks lists reachable blocking operations with no cancellation
	// path (see goroleak); capped at maxBlockPoints.
	Blocks []BlockPoint
	// AlwaysNilErr is true when the function's error result is provably
	// nil on every return path.
	AlwaysNilErr bool
}

// BlockPoint is one potentially-forever blocking operation.
type BlockPoint struct {
	Pos  token.Pos
	What string // "send on field ch", "sync.WaitGroup.Wait", ...
	Via  string // call path from the summarized function, "" if direct

	// Class is the channel class for send/receive points (nil for
	// selects and sync waits); IsSend/IsRecv/IsSyncWait classify the
	// op for goroleak's exemptions.
	Class      types.Object
	IsSend     bool
	IsRecv     bool
	IsSyncWait bool
}

// pairKey orders two lock classes: [0] held while [1] is acquired.
type pairKey [2]types.Object

// PairSite records where a lock-order pair was first observed.
type PairSite struct {
	Pos  token.Pos
	Func string // display name of the function holding pair[0]
	Via  string // callee chain when the acquisition is indirect
}

// chanFacts are module-wide channel observations keyed by channel
// class (the field or variable object a channel lives in).
type chanFacts struct {
	closed map[types.Object]bool
	// buffered records make sites: class -> saw buffered / saw
	// unbuffered. A class is "safe buffered" when every make site has a
	// capacity.
	makesBuffered   map[types.Object]bool
	makesUnbuffered map[types.Object]bool
	// params marks channel-typed parameters and results: their
	// capacity and consumers belong to the caller, so ops on them are
	// conservative-quiet.
	params map[types.Object]bool
	// alias maps a local copied from a tracked class back to it
	// (`pumpDone := r.pumpDone`); opaque marks variables whose source
	// cannot be pinned (map lookups, call results, received values).
	alias  map[types.Object]types.Object
	opaque map[types.Object]bool
	// wgParams marks *sync.WaitGroup parameters anywhere in the
	// module. A Wait on one of these (even captured by a nested
	// literal) depends on Dones the module may never perform; a Wait
	// on a field or local group is balanced by code the module owns.
	wgParams map[types.Object]bool
}

// resolve follows local aliases to the underlying class; nil when the
// channel's provenance is unknowable (a parameter, or an opaque or
// ambiguous source) — operations on those are never reported.
func (c chanFacts) resolve(class types.Object) types.Object {
	for hops := 0; class != nil && hops < 8; hops++ {
		if c.params[class] || c.opaque[class] {
			return nil
		}
		next, ok := c.alias[class]
		if !ok {
			return class
		}
		class = next
	}
	return nil
}

// Analysis bundles the interprocedural results, built once per Program
// and shared by every check (and every package's run of each check).
type Analysis struct {
	Graph     *CallGraph
	Summaries map[*CGNode]*Summary
	// Pairs is the global lock-order graph: pair -> first site.
	Pairs map[pairKey]*PairSite
	// LockNames renders a lock class for humans.
	LockNames map[types.Object]string
	Chans     chanFacts

	// fileOf maps a source filename to its package, for attributing
	// program-wide findings to the package being checked.
	fileOf map[string]*Package

	cyclesOnce sync.Once
	cycleEdges []pairKey
}

// IPA returns the program's interprocedural analysis, computing it on
// first use. Checks share the result, so the whole-module call graph
// and summaries are built once no matter how many checks consume them.
func (p *Program) IPA() *Analysis {
	p.ipaOnce.Do(func() {
		p.ipa = buildAnalysis(p)
	})
	return p.ipa
}

func buildAnalysis(prog *Program) *Analysis {
	a := &Analysis{
		Graph:     buildCallGraph(prog),
		Summaries: map[*CGNode]*Summary{},
		Pairs:     map[pairKey]*PairSite{},
		LockNames: map[types.Object]string{},
		Chans: chanFacts{
			closed:          map[types.Object]bool{},
			makesBuffered:   map[types.Object]bool{},
			makesUnbuffered: map[types.Object]bool{},
			params:          map[types.Object]bool{},
			alias:           map[types.Object]types.Object{},
			opaque:          map[types.Object]bool{},
			wgParams:        map[types.Object]bool{},
		},
		fileOf: map[string]*Package{},
	}
	// Provenance first (params, aliases, opaque sources), then facts
	// (closes, makes), so a close through an alias lands on the
	// underlying class no matter the declaration order.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			a.fileOf[prog.Fset.Position(f.FileStart).Filename] = pkg
		}
		a.collectChanVars(pkg)
	}
	for _, pkg := range prog.Packages {
		a.collectChanFacts(pkg)
	}
	// Bottom-up: every SCC sees its callees' finished summaries; within
	// an SCC, iterate to a fixed point.
	for _, comp := range a.Graph.SCCs {
		for _, n := range comp {
			a.Summaries[n] = newSummary()
		}
		for iter := 0; iter < 5; iter++ {
			changed := false
			for _, n := range comp {
				next := a.summarize(n)
				if !summaryEqual(a.Summaries[n], next) {
					changed = true
				}
				a.Summaries[n] = next
			}
			if !changed {
				break
			}
		}
	}
	return a
}

func newSummary() *Summary {
	return &Summary{
		Acquires:   map[types.Object]bool{},
		HeldAtExit: map[types.Object]bool{},
		Releases:   map[types.Object]bool{},
	}
}

func summaryEqual(a, b *Summary) bool {
	if len(a.Acquires) != len(b.Acquires) || len(a.HeldAtExit) != len(b.HeldAtExit) ||
		len(a.Releases) != len(b.Releases) || len(a.Blocks) != len(b.Blocks) ||
		a.AlwaysNilErr != b.AlwaysNilErr {
		return false
	}
	for k := range b.Acquires {
		if !a.Acquires[k] {
			return false
		}
	}
	for k := range b.HeldAtExit {
		if !a.HeldAtExit[k] {
			return false
		}
	}
	for k := range b.Releases {
		if !a.Releases[k] {
			return false
		}
	}
	return true
}

// PkgOf maps a diagnostic position to the package owning its file.
func (a *Analysis) PkgOf(pos token.Position) *Package { return a.fileOf[pos.Filename] }

// ---- channel facts ----

// collectChanVars records channel provenance for the package: which
// objects are parameters or results, which locals alias a tracked
// class, and which come from sources the analysis cannot pin.
func (a *Analysis) collectChanVars(pkg *Package) {
	chanVar := func(id *ast.Ident) types.Object {
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil || obj.Type() == nil {
			return nil
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
			return nil
		}
		return obj
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncType:
				for _, fl := range []*ast.FieldList{v.Params, v.Results} {
					if fl == nil {
						continue
					}
					for _, field := range fl.List {
						for _, name := range field.Names {
							if obj := chanVar(name); obj != nil {
								a.Chans.params[obj] = true
							} else if obj := waitGroupVar(pkg, name); obj != nil {
								a.Chans.wgParams[obj] = true
							}
						}
					}
				}
			case *ast.AssignStmt:
				if len(v.Rhs) == 1 && len(v.Lhs) > 1 {
					// Multi-value: map lookup, call, receive, type
					// assertion — all opaque sources.
					for _, l := range v.Lhs {
						if id, ok := ast.Unparen(l).(*ast.Ident); ok {
							if obj := chanVar(id); obj != nil {
								a.Chans.opaque[obj] = true
							}
						}
					}
					return true
				}
				for i, rhs := range v.Rhs {
					if i >= len(v.Lhs) {
						break
					}
					dst := chanClassOf(pkg, v.Lhs[i])
					if dst == nil {
						continue
					}
					if _, isChan := dst.Type().Underlying().(*types.Chan); !isChan {
						continue
					}
					if _, isMake := makeChan(pkg, rhs); isMake {
						continue // recorded as a make site below
					}
					if isNilExpr(pkg, rhs) {
						continue // clearing a handle changes nothing
					}
					src := chanClassOf(pkg, rhs)
					switch {
					case src == nil:
						a.Chans.opaque[dst] = true
					case src != dst:
						if old, have := a.Chans.alias[dst]; have && old != src {
							a.Chans.opaque[dst] = true // ambiguous
						} else {
							a.Chans.alias[dst] = src
						}
					}
				}
			}
			return true
		})
	}
}

// waitGroupVar resolves an identifier to its object when the type is
// sync.WaitGroup (possibly behind a pointer).
func waitGroupVar(pkg *Package, id *ast.Ident) types.Object {
	obj := pkg.Info.Defs[id]
	if obj == nil {
		obj = pkg.Info.Uses[id]
	}
	if obj == nil || obj.Type() == nil {
		return nil
	}
	named, ok := derefType(obj.Type()).(*types.Named)
	if !ok {
		return nil
	}
	if o := named.Obj(); o.Pkg() != nil && o.Pkg().Path() == "sync" && o.Name() == "WaitGroup" {
		return obj
	}
	return nil
}

func isNilExpr(pkg *Package, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pkg.Info.Uses[id].(*types.Nil)
	return isNil
}

// collectChanFacts records close() calls and make(chan) sites per
// channel class across the package. Classes are resolved through
// aliases so facts land on the underlying field or variable.
func (a *Analysis) collectChanFacts(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "close" && len(v.Args) == 1 {
					if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						if c := a.Chans.resolve(chanClassOf(pkg, v.Args[0])); c != nil {
							a.Chans.closed[c] = true
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range v.Rhs {
					if i >= len(v.Lhs) {
						break
					}
					if buffered, ok := makeChan(pkg, rhs); ok {
						if c := a.Chans.resolve(chanClassOf(pkg, v.Lhs[i])); c != nil {
							a.recordMake(c, buffered)
						}
					}
				}
			case *ast.KeyValueExpr:
				if buffered, ok := makeChan(pkg, v.Value); ok {
					if key, ok := v.Key.(*ast.Ident); ok {
						if obj := pkg.Info.Uses[key]; obj != nil {
							a.recordMake(obj, buffered)
						}
					}
				}
			case *ast.ValueSpec:
				for i, val := range v.Values {
					if buffered, ok := makeChan(pkg, val); ok && i < len(v.Names) {
						if obj := pkg.Info.Defs[v.Names[i]]; obj != nil {
							a.recordMake(obj, buffered)
						}
					}
				}
			}
			return true
		})
	}
}

func (a *Analysis) recordMake(class types.Object, buffered bool) {
	if buffered {
		a.Chans.makesBuffered[class] = true
	} else {
		a.Chans.makesUnbuffered[class] = true
	}
}

// makeChan reports whether e is a make(chan ...) call and whether it
// has a capacity argument.
func makeChan(pkg *Package, e ast.Expr) (buffered, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return false, false
	}
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent || id.Name != "make" || len(call.Args) == 0 {
		return false, false
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false, false
	}
	if t := pkg.Info.Types[call.Args[0]].Type; t != nil {
		if _, isChan := t.Underlying().(*types.Chan); isChan {
			return len(call.Args) == 2, true
		}
	}
	return false, false
}

// safeBuffered reports whether every known make site for the class has
// a capacity (so a single pending send cannot park forever as long as
// capacity remains — the conventional result-channel idiom).
func (c chanFacts) safeBuffered(class types.Object) bool {
	return c.makesBuffered[class] && !c.makesUnbuffered[class]
}

// chanClassOf resolves a channel expression to its class: the field
// object for selector chains, the variable object for identifiers.
// Unresolvable shapes (calls, index results) return nil, and ops on
// them are not analyzed.
func chanClassOf(pkg *Package, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[v]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[v]
	case *ast.SelectorExpr:
		if obj, ok := pkg.Info.Uses[v.Sel].(*types.Var); ok && obj.IsField() {
			return obj
		}
	}
	return nil
}

// ---- lock classes ----

// lockMethods classifies sync.Mutex/RWMutex method names.
var lockAcquire = map[string]bool{"Lock": true, "RLock": true}
var lockRelease = map[string]bool{"Unlock": true, "RUnlock": true}

// lockClassAt resolves a call expression to (class, acquire|release)
// when it is a Lock/RLock/Unlock/RUnlock on a sync.Mutex or RWMutex.
// The class is the field or variable object holding the mutex; for a
// promoted method on an embedding struct, the embedded field object.
func (a *Analysis) lockClassAt(pkg *Package, call *ast.CallExpr) (class types.Object, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	name := sel.Sel.Name
	if !lockAcquire[name] && !lockRelease[name] {
		return nil, false, false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, false, false
	}
	rt := recv.Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return nil, false, false
	}
	// Promoted method: follow the selection's embedded-field path to
	// the field that actually holds the mutex.
	if selection, found := pkg.Info.Selections[sel]; found {
		if idx := selection.Index(); len(idx) > 1 {
			t := pkg.Info.Types[sel.X].Type
			var field *types.Var
			for _, i := range idx[:len(idx)-1] {
				t = derefType(t)
				st, isStruct := t.Underlying().(*types.Struct)
				if !isStruct || i >= st.NumFields() {
					return nil, false, false
				}
				field = st.Field(i)
				t = field.Type()
			}
			if field != nil {
				a.nameLock(pkg, sel.X, field)
				return field, lockAcquire[name], true
			}
		}
	}
	class = chanClassOf(pkg, sel.X) // same resolution: field or var object
	if class == nil {
		return nil, false, false
	}
	a.nameLock(pkg, sel.X, class)
	return class, lockAcquire[name], true
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// nameLock records a human-readable name for a lock class, derived
// from the receiver expression at an acquisition site.
func (a *Analysis) nameLock(pkg *Package, recv ast.Expr, class types.Object) {
	if _, done := a.LockNames[class]; done {
		return
	}
	if v, isVar := class.(*types.Var); isVar && v.IsField() {
		if t := pkg.Info.Types[recv].Type; t != nil {
			owner := derefType(t)
			if sel, isSel := ast.Unparen(recv).(*ast.SelectorExpr); isSel {
				// recv is the mutex field itself: name by its owner.
				if xt := pkg.Info.Types[sel.X].Type; xt != nil {
					owner = derefType(xt)
				}
			}
			a.LockNames[class] = "(" + types.TypeString(owner, nil) + ")." + class.Name()
			return
		}
	}
	if class.Pkg() != nil {
		a.LockNames[class] = class.Pkg().Path() + "." + class.Name()
		return
	}
	a.LockNames[class] = class.Name()
}

// LockName renders a lock class.
func (a *Analysis) LockName(class types.Object) string {
	if n := a.LockNames[class]; n != "" {
		return n
	}
	return class.Name()
}

// ---- summarization ----

// lockState is the per-path analysis state: the ordered set of lock
// classes currently held.
type lockState struct {
	held       []types.Object
	terminated bool
}

func (s *lockState) holds(c types.Object) bool {
	for _, h := range s.held {
		if h == c {
			return true
		}
	}
	return false
}

func (s *lockState) acquire(c types.Object) {
	if !s.holds(c) {
		s.held = append(s.held, c)
	}
}

func (s *lockState) release(c types.Object) bool {
	for i, h := range s.held {
		if h == c {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return true
		}
	}
	return false
}

func (s *lockState) clone() *lockState {
	return &lockState{held: append([]types.Object(nil), s.held...)}
}

// intersectHeld keeps only classes held in every state.
func intersectHeld(states []*lockState) []types.Object {
	if len(states) == 0 {
		return nil
	}
	var out []types.Object
	for _, c := range states[0].held {
		all := true
		for _, s := range states[1:] {
			if !s.holds(c) {
				all = false
				break
			}
		}
		if all {
			out = append(out, c)
		}
	}
	return out
}

// summarizer walks one function body.
type summarizer struct {
	a    *Analysis
	node *CGNode
	pkg  *Package
	sum  *Summary
	// deferred collects lock classes released by defer statements;
	// subtracted from held at every exit.
	deferred map[types.Object]bool
	// selfManaged is true when the body contains its own go statements:
	// its WaitGroup.Wait is scatter-gather, not a dependence on another
	// goroutine's Dones.
	selfManaged bool
	// localOps are the bare channel ops in this body, including its
	// nested literals: a function that sends to a channel its own
	// spawned workers range over (or receives a result its own spawned
	// literal sends) completes the handshake locally, so the op is not
	// a block point even if the whole function later runs on a spawned
	// goroutine.
	localOps spawnerOps
	// exitHeld intersects the held set across every exit path seen so
	// far (nil until the first exit); it becomes HeldAtExit.
	exitHeld map[types.Object]bool
	exitSeen bool
}

func (a *Analysis) summarize(n *CGNode) *Summary {
	s := &summarizer{
		a:        a,
		node:     n,
		pkg:      n.Pkg,
		sum:      newSummary(),
		deferred: map[types.Object]bool{},
		localOps: spawnerChanOps(a, n.Pkg, n),
	}
	ast.Inspect(n.Body(), func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		if _, ok := m.(*ast.GoStmt); ok {
			s.selfManaged = true
		}
		return true
	})
	ls := &lockState{}
	s.block(n.Body(), ls)
	if !ls.terminated {
		s.exit(ls)
	}
	for c := range s.exitHeld {
		s.sum.HeldAtExit[c] = true
	}
	s.sum.AlwaysNilErr = s.alwaysNilError()
	sort.Slice(s.sum.Blocks, func(i, j int) bool { return s.sum.Blocks[i].Pos < s.sum.Blocks[j].Pos })
	return s.sum
}

// exit records one return path. HeldAtExit is the must-hold
// intersection across every exit, so only locks held on all paths
// (after deferred unlocks) survive.
func (s *summarizer) exit(ls *lockState) {
	cur := map[types.Object]bool{}
	for _, c := range ls.held {
		if !s.deferred[c] {
			cur[c] = true
		}
	}
	if !s.exitSeen {
		s.exitSeen = true
		s.exitHeld = cur
		return
	}
	for c := range s.exitHeld {
		if !cur[c] {
			delete(s.exitHeld, c)
		}
	}
}

func (s *summarizer) block(b *ast.BlockStmt, ls *lockState) {
	for _, st := range b.List {
		if ls.terminated {
			return
		}
		s.stmt(st, ls)
	}
}

func (s *summarizer) stmt(st ast.Stmt, ls *lockState) {
	switch v := st.(type) {
	case *ast.BlockStmt:
		s.block(v, ls)
	case *ast.ExprStmt:
		s.expr(v.X, ls, false)
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			s.expr(e, ls, false)
		}
		for _, e := range v.Lhs {
			s.expr(e, ls, false)
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e, ls, false)
					}
				}
			}
		}
	case *ast.SendStmt:
		s.expr(v.Chan, ls, false)
		s.expr(v.Value, ls, false)
		s.chanSend(v, false)
	case *ast.IncDecStmt:
		s.expr(v.X, ls, false)
	case *ast.GoStmt:
		// Arguments and the receiver evaluate on this goroutine; the
		// callee's effects belong to the spawned one.
		s.scanCallOperands(v.Call, ls)
	case *ast.DeferStmt:
		s.deferCall(v, ls)
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			s.expr(e, ls, false)
		}
		s.exit(ls)
		ls.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto end the straight-line path through the
		// enclosing block; the approximation treats them like returns
		// without recording exit state.
		ls.terminated = true
	case *ast.IfStmt:
		if v.Init != nil {
			s.stmt(v.Init, ls)
		}
		s.expr(v.Cond, ls, false)
		s.branches(ls, v.Body, v.Else)
	case *ast.ForStmt:
		if v.Init != nil {
			s.stmt(v.Init, ls)
		}
		if v.Cond != nil {
			s.expr(v.Cond, ls, false)
		}
		body := ls.clone()
		s.block(v.Body, body)
		if v.Post != nil && !body.terminated {
			s.stmt(v.Post, body)
		}
		states := []*lockState{ls}
		if !body.terminated {
			states = append(states, body)
		}
		ls.held = intersectHeld(states)
	case *ast.RangeStmt:
		s.expr(v.X, ls, false)
		s.chanRange(v)
		body := ls.clone()
		s.block(v.Body, body)
		states := []*lockState{ls}
		if !body.terminated {
			states = append(states, body)
		}
		ls.held = intersectHeld(states)
	case *ast.SwitchStmt:
		if v.Init != nil {
			s.stmt(v.Init, ls)
		}
		if v.Tag != nil {
			s.expr(v.Tag, ls, false)
		}
		s.caseBodies(ls, v.Body, hasDefaultCase(v.Body))
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			s.stmt(v.Init, ls)
		}
		s.caseBodies(ls, v.Body, hasDefaultCase(v.Body))
	case *ast.SelectStmt:
		s.selectStmt(v, ls)
	case *ast.LabeledStmt:
		s.stmt(v.Stmt, ls)
	}
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, st := range body.List {
		switch c := st.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

// branches analyzes if/else arms independently and merges by
// intersection over the arms that fall through.
func (s *summarizer) branches(ls *lockState, body *ast.BlockStmt, els ast.Stmt) {
	then := ls.clone()
	s.block(body, then)
	states := []*lockState{}
	if !then.terminated {
		states = append(states, then)
	}
	if els != nil {
		alt := ls.clone()
		s.stmt(els, alt)
		if !alt.terminated {
			states = append(states, alt)
		}
		if len(states) == 0 {
			ls.terminated = true
			return
		}
	} else {
		states = append(states, ls) // no else: the skip path keeps entry state
	}
	ls.held = intersectHeld(states)
}

// caseBodies analyzes each case from the entry state and intersects
// the fall-through results (plus the entry state when no default
// guarantees a case runs).
func (s *summarizer) caseBodies(ls *lockState, body *ast.BlockStmt, hasDefault bool) {
	var states []*lockState
	allTerminate := true
	for _, st := range body.List {
		var stmts []ast.Stmt
		switch c := st.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				s.expr(e, ls, false)
			}
			stmts = c.Body
		case *ast.CommClause:
			// Comm operands were scanned by selectStmt (with the
			// in-select marker); only the body runs here.
			stmts = c.Body
		default:
			continue
		}
		cs := ls.clone()
		for _, cst := range stmts {
			if cs.terminated {
				break
			}
			s.stmt(cst, cs)
		}
		if !cs.terminated {
			states = append(states, cs)
			allTerminate = false
		}
	}
	if !hasDefault {
		states = append(states, ls)
		allTerminate = false
	}
	if allTerminate && len(body.List) > 0 {
		ls.terminated = true
		return
	}
	ls.held = intersectHeld(states)
}

// selectStmt analyzes a select: first the cancellation question (does
// any case give the goroutine a way out?), then each case body.
func (s *summarizer) selectStmt(v *ast.SelectStmt, ls *lockState) {
	if !s.selectCancellable(v) {
		s.addBlock(BlockPoint{Pos: v.Pos(), What: "select with no default, ctx.Done, timer, or closable case"})
	}
	// Scan comm operands for calls evaluated before blocking.
	for _, st := range v.Body.List {
		if c, ok := st.(*ast.CommClause); ok && c.Comm != nil {
			switch comm := c.Comm.(type) {
			case *ast.SendStmt:
				s.expr(comm.Chan, ls, true)
				s.expr(comm.Value, ls, true)
			case *ast.ExprStmt:
				s.expr(comm.X, ls, true)
			case *ast.AssignStmt:
				for _, e := range comm.Rhs {
					s.expr(e, ls, true)
				}
			}
		}
	}
	s.caseBodies(ls, v.Body, true) // select always runs exactly one ready case
}

// selectCancellable reports whether the select can always make
// progress eventually: it has a default, a ctx.Done()/timer case, or a
// receive on a channel some module code closes.
func (s *summarizer) selectCancellable(v *ast.SelectStmt) bool {
	for _, st := range v.Body.List {
		c, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		if c.Comm == nil {
			return true // default
		}
		var recvExpr ast.Expr
		switch comm := c.Comm.(type) {
		case *ast.ExprStmt:
			recvExpr = comm.X
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				recvExpr = comm.Rhs[0]
			}
		}
		if recvExpr == nil {
			continue
		}
		un, ok := ast.Unparen(recvExpr).(*ast.UnaryExpr)
		if !ok || un.Op != token.ARROW {
			continue
		}
		ch := ast.Unparen(un.X)
		if isCancellationChan(s.pkg, ch) {
			return true
		}
		if class := s.a.Chans.resolve(chanClassOf(s.pkg, ch)); class != nil && s.a.Chans.closed[class] {
			return true
		}
	}
	return false
}

// isCancellationChan recognizes receive operands that fire by
// construction: ctx.Done(), time.After, and timer/ticker channels
// (including the injected clock's).
func isCancellationChan(pkg *Package, ch ast.Expr) bool {
	switch v := ch.(type) {
	case *ast.CallExpr:
		sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr)
		if !ok {
			if name, ok := stdlibFunc(pkg, v.Fun, "time"); ok && (name == "After" || name == "Tick") {
				return true
			}
			return false
		}
		if sel.Sel.Name == "Done" {
			if t := pkg.Info.Types[sel.X].Type; t != nil && isContextType(t) {
				return true
			}
		}
		if name, ok := stdlibFunc(pkg, v.Fun, "time"); ok && (name == "After" || name == "Tick") {
			return true
		}
		// clock.Clock.After / injected clock methods returning a timer
		// channel: any method named After returning <-chan.
		if sel.Sel.Name == "After" {
			if t := pkg.Info.Types[v].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					return true
				}
			}
		}
	case *ast.SelectorExpr:
		// timer.C / ticker.C
		if v.Sel.Name == "C" {
			if t := pkg.Info.Types[v.X].Type; t != nil {
				named, ok := derefType(t).(*types.Named)
				if ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "time" {
					return true
				}
			}
		}
	}
	return false
}

// chanSend records a blocking point for a send outside a select when
// the channel class is known and not safely buffered.
func (s *summarizer) chanSend(v *ast.SendStmt, inSelect bool) {
	if inSelect {
		return
	}
	class := s.a.Chans.resolve(chanClassOf(s.pkg, v.Chan))
	if class == nil || s.a.Chans.safeBuffered(class) || s.localOps.recvs[class] {
		return
	}
	s.addBlock(BlockPoint{Pos: v.Pos(), What: "send on " + chanName(class), Class: class, IsSend: true})
}

// chanRecv records a blocking point for a bare receive when the class
// is known and never closed anywhere in the module.
func (s *summarizer) chanRecv(pos token.Pos, ch ast.Expr) {
	class := s.a.Chans.resolve(chanClassOf(s.pkg, ch))
	if class == nil || s.a.Chans.closed[class] || s.localOps.sends[class] {
		return
	}
	s.addBlock(BlockPoint{Pos: pos, What: "receive on never-closed " + chanName(class), Class: class, IsRecv: true})
}

func (s *summarizer) chanRange(v *ast.RangeStmt) {
	if t := s.pkg.Info.Types[v.X].Type; t != nil {
		if _, isChan := t.Underlying().(*types.Chan); isChan {
			s.chanRecv(v.Pos(), v.X)
		}
	}
}

func chanName(class types.Object) string {
	if v, ok := class.(*types.Var); ok && v.IsField() && v.Pkg() != nil {
		return "field " + v.Name()
	}
	return "channel " + class.Name()
}

func (s *summarizer) addBlock(bp BlockPoint) {
	for _, have := range s.sum.Blocks {
		if have.Pos == bp.Pos {
			return
		}
	}
	if len(s.sum.Blocks) < maxBlockPoints {
		s.sum.Blocks = append(s.sum.Blocks, bp)
	}
}

// deferCall handles defer statements: deferred unlocks release at
// exit; deferred calls contribute acquisitions at the site (the
// standard approximation) and their releases at exit.
func (s *summarizer) deferCall(v *ast.DeferStmt, ls *lockState) {
	s.scanCallOperands(v.Call, ls)
	if class, acquire, ok := s.a.lockClassAt(s.pkg, v.Call); ok {
		if !acquire {
			s.deferred[class] = true
		}
		return
	}
	for _, callee := range s.a.Graph.resolveCall(s.pkg, v.Call) {
		cs := s.a.Summaries[callee]
		if cs == nil {
			continue
		}
		s.applyCalleeAcquires(callee, cs, v.Pos(), ls)
		for c := range cs.Releases {
			s.deferred[c] = true
		}
	}
}

// scanCallOperands walks the function and argument expressions of a
// call without applying the callee's effects.
func (s *summarizer) scanCallOperands(call *ast.CallExpr, ls *lockState) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		s.expr(sel.X, ls, false)
	}
	for _, arg := range call.Args {
		s.expr(arg, ls, false)
	}
}

// expr walks an expression in evaluation order, applying lock
// operations and callee summaries, and recording channel receives.
// Nested function literals are skipped: they are their own nodes.
func (s *summarizer) expr(e ast.Expr, ls *lockState, inSelect bool) {
	if e == nil {
		return
	}
	switch v := e.(type) {
	case *ast.FuncLit:
		return
	case *ast.ParenExpr:
		s.expr(v.X, ls, inSelect)
	case *ast.UnaryExpr:
		s.expr(v.X, ls, inSelect)
		if v.Op == token.ARROW && !inSelect {
			s.chanRecv(v.Pos(), v.X)
		}
	case *ast.BinaryExpr:
		s.expr(v.X, ls, inSelect)
		s.expr(v.Y, ls, inSelect)
	case *ast.StarExpr:
		s.expr(v.X, ls, inSelect)
	case *ast.SelectorExpr:
		s.expr(v.X, ls, inSelect)
	case *ast.IndexExpr:
		s.expr(v.X, ls, inSelect)
		s.expr(v.Index, ls, inSelect)
	case *ast.SliceExpr:
		s.expr(v.X, ls, inSelect)
		s.expr(v.Low, ls, inSelect)
		s.expr(v.High, ls, inSelect)
		s.expr(v.Max, ls, inSelect)
	case *ast.TypeAssertExpr:
		s.expr(v.X, ls, inSelect)
	case *ast.KeyValueExpr:
		s.expr(v.Key, ls, inSelect)
		s.expr(v.Value, ls, inSelect)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			s.expr(el, ls, inSelect)
		}
	case *ast.CallExpr:
		s.call(v, ls)
	}
}

// call applies one call expression to the lock state.
func (s *summarizer) call(call *ast.CallExpr, ls *lockState) {
	s.scanCallOperands(call, ls)
	if what, ok := syncWaitAt(s.pkg, call); ok {
		// A WaitGroup.Wait in a function that spawns its own workers is
		// scatter-gather: the Adds and Dones are local and balanced by
		// construction (wgadd enforces the Add side). And a Wait on a
		// field or local group is balanced by code the module owns —
		// only a *sync.WaitGroup PARAMETER is a promise someone else
		// must keep, so only that shape can be parked forever.
		if what != "sync.WaitGroup.Wait" || (!s.selfManaged && s.waitOnParam(call)) {
			s.addBlock(BlockPoint{Pos: call.Pos(), What: what, IsSyncWait: true})
		}
		// fall through: Wait has no lock effects
	}
	if class, acquire, ok := s.a.lockClassAt(s.pkg, call); ok {
		if acquire {
			s.recordAcquire(class, call.Pos(), ls)
		} else if !ls.release(class) {
			s.sum.Releases[class] = true
		}
		return
	}
	callees := s.a.Graph.resolveCall(s.pkg, call)
	for _, callee := range callees {
		cs := s.a.Summaries[callee]
		if cs == nil {
			continue // same SCC, first iteration
		}
		s.applyCalleeAcquires(callee, cs, call.Pos(), ls)
		for c := range cs.Releases {
			if !ls.release(c) {
				s.sum.Releases[c] = true
			}
		}
		for c := range cs.HeldAtExit {
			ls.acquire(c)
			s.sum.Acquires[c] = true
		}
		for _, bp := range cs.Blocks {
			via := callee.Name
			if bp.Via != "" {
				via = callee.Name + " → " + bp.Via
			}
			s.addBlock(BlockPoint{Pos: bp.Pos, What: bp.What, Via: via})
		}
	}
}

// recordAcquire registers a direct acquisition: every held lock forms
// an ordered pair with the new one.
func (s *summarizer) recordAcquire(class types.Object, pos token.Pos, ls *lockState) {
	for _, h := range ls.held {
		if h != class {
			s.recordPair(h, class, pos, "")
		}
	}
	ls.acquire(class)
	s.sum.Acquires[class] = true
}

// applyCalleeAcquires pairs every held lock against everything the
// callee may acquire, and folds the callee's acquire set in.
func (s *summarizer) applyCalleeAcquires(callee *CGNode, cs *Summary, pos token.Pos, ls *lockState) {
	for acq := range cs.Acquires {
		for _, h := range ls.held {
			if h != acq {
				s.recordPair(h, acq, pos, callee.Name)
			}
		}
		s.sum.Acquires[acq] = true
	}
}

func (s *summarizer) recordPair(held, acquired types.Object, pos token.Pos, via string) {
	key := pairKey{held, acquired}
	if _, have := s.a.Pairs[key]; have {
		return
	}
	s.a.Pairs[key] = &PairSite{Pos: pos, Func: s.node.Name, Via: via}
}

// waitOnParam reports whether the Wait receiver is a *sync.WaitGroup
// parameter (of this function or one it captures from).
func (s *summarizer) waitOnParam(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	return s.a.Chans.wgParams[s.pkg.Info.Uses[id]]
}

// syncWaitAt recognizes sync.WaitGroup.Wait and sync.Cond.Wait calls.
func syncWaitAt(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	named, ok := derefType(recv.Type()).(*types.Named)
	if !ok {
		return "", false
	}
	return "sync." + named.Obj().Name() + ".Wait", true
}

// ---- always-nil error results ----

// alwaysNilError reports whether the function's last result is an
// error that is literally nil on every return path (possibly via a
// callee that is itself always-nil). Named results, bare returns, and
// anything else make the answer false.
func (s *summarizer) alwaysNilError() bool {
	var sig *types.Signature
	if s.node.Fn != nil {
		sig = s.node.Fn.Type().(*types.Signature)
	} else if t := s.pkg.Info.Types[s.node.Lit].Type; t != nil {
		sig, _ = t.(*types.Signature)
	}
	if sig == nil || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1)
	if !isErrorType(last.Type()) {
		return false
	}
	sawReturn := false
	ok := true
	ast.Inspect(s.node.Body(), func(n ast.Node) bool {
		if lit, isLit := n.(*ast.FuncLit); isLit && lit != s.node.Lit {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		sawReturn = true
		if len(ret.Results) == 0 {
			ok = false // bare return with named results: unknowable here
			return true
		}
		lastExpr := ast.Unparen(ret.Results[len(ret.Results)-1])
		if id, isIdent := lastExpr.(*ast.Ident); isIdent && id.Name == "nil" {
			return true
		}
		// return f() where f's error is itself always nil.
		if call, isCall := lastExpr.(*ast.CallExpr); isCall && len(ret.Results) == 1 {
			for _, callee := range s.a.Graph.resolveCall(s.pkg, call) {
				if cs := s.a.Summaries[callee]; cs != nil && cs.AlwaysNilErr {
					return true
				}
			}
		}
		ok = false
		return true
	})
	return ok && sawReturn
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
