package lint

import (
	"go/ast"
	"go/types"
)

// checkHTTPResp enforces HTTP hygiene on *net/http.Response values
// obtained in a function: the body must be closed, and it must be read
// or drained before (or instead of) closing — an unread body makes the
// transport discard the pooled connection, which under course-deadline
// load converts every retry into a fresh TCP+TLS handshake.
//
// A response handed to other code (passed bare as an argument, returned,
// stored, or sent) transfers the obligation to the receiver and is not
// checked here.
func checkHTTPResp(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	walkFuncs(pkg, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Rhs) != 1 {
				return true
			}
			if _, ok := asg.Rhs[0].(*ast.CallExpr); !ok {
				return true
			}
			for _, lhs := range asg.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj == nil || !isHTTPResponse(obj.Type()) {
					continue
				}
				use := analyzeVarUse(pkg, decl.Body, obj, asg)
				if use.escapes {
					continue
				}
				closed, read := bodyUse(pkg, decl.Body, obj)
				switch {
				case !closed:
					diags = append(diags, Diagnostic{
						Check:   "httpresp",
						Pos:     prog.Fset.Position(asg.Pos()),
						Message: "response body of " + id.Name + " is never closed: defer " + id.Name + ".Body.Close()",
					})
				case !read:
					diags = append(diags, Diagnostic{
						Check: "httpresp",
						Pos:   prog.Fset.Position(asg.Pos()),
						Message: "response body of " + id.Name + " is closed but never read: drain it first " +
							"(io.Copy(io.Discard, " + id.Name + ".Body)) so the pooled connection is reused",
					})
				}
			}
			return true
		})
	})
	return diags
}

func isHTTPResponse(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Response" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// bodyUse scans body for uses of obj.Body: whether it is closed
// (obj.Body.Close() appears) and whether it is read (obj.Body appears
// anywhere else — as a reader argument, a decoder source, an
// io.LimitReader wrap, ...).
func bodyUse(pkg *Package, body *ast.BlockStmt, obj types.Object) (closed, read bool) {
	// Body selectors consumed by a Close call, identified by node
	// pointer so the same expression isn't double-counted as a read.
	closeRecv := map[*ast.SelectorExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		if bs := bodySelectorOf(pkg, sel.X, obj); bs != nil {
			closed = true
			closeRecv[bs] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if bs := bodySelectorOf(pkg, sel, obj); bs != nil && !closeRecv[bs] {
			read = true
		}
		return true
	})
	return closed, read
}

// bodySelectorOf unwraps e to the obj.Body selector it denotes, or nil.
func bodySelectorOf(pkg *Package, e ast.Expr, obj types.Object) *ast.SelectorExpr {
	if p, ok := e.(*ast.ParenExpr); ok {
		return bodySelectorOf(pkg, p.X, obj)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Body" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Info.Uses[id] != obj {
		return nil
	}
	return sel
}
