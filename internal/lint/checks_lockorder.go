package lint

import (
	"go/types"
	"sort"
	"strings"
)

// checkLockOrder builds the global lock-ordering graph from the
// composed function summaries — an edge A→B means some path acquires B
// while holding A — and reports every edge that participates in a
// cycle. A cycle (the registry RWMutex taken before a topic mutex on
// one path and after it on another) is the classic two-thread
// deadlock: each diagnostic names the conflicting acquisition so both
// paths are visible from either end.
//
// Cycles are detected on lock *classes* (the field or variable a mutex
// lives in), so two instances of one sharded class never form a cycle
// by themselves; only genuinely inverted orderings between classes are
// reported.
func checkLockOrder(prog *Program, pkg *Package) []Diagnostic {
	a := prog.IPA()
	cycles := a.lockCycles()
	var diags []Diagnostic
	for _, edge := range cycles {
		site := a.Pairs[edge]
		pos := prog.Fset.Position(site.Pos)
		if a.PkgOf(pos) != pkg {
			continue
		}
		reverse := a.counterSite(edge)
		msg := "lock order cycle: " + a.LockName(edge[0]) + " held while acquiring " + a.LockName(edge[1])
		if site.Via != "" {
			msg += " (via " + site.Via + ")"
		}
		if reverse != "" {
			msg += "; inverse order at " + reverse
		}
		diags = append(diags, Diagnostic{Check: "lockorder", Pos: pos, Message: msg})
	}
	return diags
}

// lockCycles returns every pair edge that lies inside a strongly
// connected component of the lock graph with more than one lock class
// — i.e. every edge that is part of some ordering cycle. Self-edges
// (nested acquisition of two instances of one class) are excluded:
// sharded designs order instances explicitly and a class-level
// self-loop cannot distinguish that from a bug.
func (a *Analysis) lockCycles() []pairKey {
	a.cyclesOnce.Do(func() {
		adj := map[types.Object][]types.Object{}
		nodes := map[types.Object]bool{}
		for k := range a.Pairs {
			if k[0] == k[1] {
				continue
			}
			adj[k[0]] = append(adj[k[0]], k[1])
			nodes[k[0]], nodes[k[1]] = true, true
		}
		comp := sccOf(nodes, adj)
		for k := range a.Pairs {
			if k[0] != k[1] && comp[k[0]] == comp[k[1]] && comp[k[0]] != 0 {
				a.cycleEdges = append(a.cycleEdges, k)
			}
		}
		sort.Slice(a.cycleEdges, func(i, j int) bool {
			return a.Pairs[a.cycleEdges[i]].Pos < a.Pairs[a.cycleEdges[j]].Pos
		})
	})
	return a.cycleEdges
}

// counterSite renders the site of the reversed ordering for a cyclic
// edge: for A→B, where B is held while (eventually) acquiring A. For
// cycles longer than two it names the next edge along the cycle.
func (a *Analysis) counterSite(edge pairKey) string {
	direct := pairKey{edge[1], edge[0]}
	if site, ok := a.Pairs[direct]; ok {
		return a.describeSite(direct, site)
	}
	// Longer cycle: any in-cycle edge leaving edge[1].
	for _, k := range a.cycleEdges {
		if k[0] == edge[1] {
			return a.describeSite(k, a.Pairs[k])
		}
	}
	return ""
}

func (a *Analysis) describeSite(k pairKey, site *PairSite) string {
	pos := a.Graph.prog.Fset.Position(site.Pos)
	var b strings.Builder
	b.WriteString(shortPos(pos))
	b.WriteString(" (in " + site.Func)
	if site.Via != "" {
		b.WriteString(" via " + site.Via)
	}
	b.WriteString(", " + a.LockName(k[0]) + " → " + a.LockName(k[1]) + ")")
	return b.String()
}

func shortPos(pos interface{ String() string }) string {
	s := pos.String()
	// Trim everything before the last path separator pair to keep the
	// message readable; full positions remain on the diagnostic itself.
	if i := strings.LastIndex(s, "/"); i >= 0 {
		if j := strings.LastIndex(s[:i], "/"); j >= 0 {
			return s[j+1:]
		}
	}
	return s
}

// sccOf is Kosaraju-free: an iterative Tarjan over a small generic
// graph, returning a component id per node (ids start at 1).
func sccOf(nodes map[types.Object]bool, adj map[types.Object][]types.Object) map[types.Object]int {
	index := map[types.Object]int{}
	low := map[types.Object]int{}
	onStack := map[types.Object]bool{}
	comp := map[types.Object]int{}
	var stack []types.Object
	counter, compID := 0, 0

	var visit func(n types.Object)
	visit = func(n types.Object) {
		counter++
		index[n] = counter
		low[n] = counter
		stack = append(stack, n)
		onStack[n] = true
		for _, m := range adj[n] {
			if index[m] == 0 {
				visit(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			compID++
			size := 0
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				comp[m] = compID
				size++
				if m == n {
					break
				}
			}
			if size == 1 {
				// Singleton components are not cycles; zero them so the
				// caller's comp[a]==comp[b] test means "in a real cycle"
				// only when a multi-node component matched.
				comp[n] = -compID
			}
		}
	}
	for n := range nodes {
		if index[n] == 0 {
			visit(n)
		}
	}
	// Normalize: multi-node components keep positive ids, singletons
	// get unique negative ids (never equal across nodes unless the
	// same node).
	return comp
}
