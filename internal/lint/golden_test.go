package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestGolden loads every fixture package under testdata/src, runs all
// checks, and compares the findings against "want" markers embedded in
// the fixture sources. A line expecting findings carries either
//
//	... // want check1 check2
//	... /* want check1 */ <rest of line>
//
// and must be flagged by exactly those checks; every unmarked line must
// stay clean. All fixtures load through one Loader so the (expensive)
// standard-library type-checking is shared.
func TestGolden(t *testing.T) {
	srcRoot := filepath.Join("testdata", "src")
	ents, err := os.ReadDir(srcRoot)
	if err != nil {
		t.Fatalf("reading %s: %v", srcRoot, err)
	}
	var dirs, paths []string
	for _, e := range ents {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join(srcRoot, e.Name()))
			paths = append(paths, "fix/"+e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}

	prog, err := NewLoader().LoadDirs(dirs, paths)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}

	got := map[string][]string{} // "file:line" -> check names
	for _, d := range Run(prog, Checks()) {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		got[key] = append(got[key], d.Check)
	}
	want := map[string][]string{}
	for _, dir := range dirs {
		if err := scanWantMarkers(dir, want); err != nil {
			t.Fatal(err)
		}
	}

	for key, checks := range want {
		sort.Strings(checks)
		g := append([]string(nil), got[key]...)
		sort.Strings(g)
		if !reflect.DeepEqual(checks, g) {
			t.Errorf("%s: want %v, got %v", key, checks, g)
		}
	}
	for key, checks := range got {
		if want[key] == nil {
			t.Errorf("%s: unexpected findings %v", key, checks)
		}
	}
}

// scanWantMarkers records the expected checks per file:line for every
// .go file in dir, keyed by absolute path to match Diagnostic.File.
func scanWantMarkers(dir string, out map[string][]string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		// Key by the same path the loader parsed, so it matches
		// Diagnostic.File exactly.
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, name := range wantsOn(line) {
				key := fmt.Sprintf("%s:%d", path, i+1)
				out[key] = append(out[key], name)
			}
		}
	}
	return nil
}

// wantsOn extracts the check names a marker on this line expects:
// "// want a b" to end of line, or "/* want a b */" inline.
func wantsOn(line string) []string {
	if _, rest, ok := strings.Cut(line, "/* want "); ok {
		if body, _, ok := strings.Cut(rest, "*/"); ok {
			return strings.Fields(body)
		}
		return nil
	}
	if _, rest, ok := strings.Cut(line, "// want "); ok {
		return strings.Fields(rest)
	}
	return nil
}
