package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func names(checks []*Check) []string {
	var out []string
	for _, c := range checks {
		out = append(out, c.Name)
	}
	return out
}

func TestSelectDefaultsToAll(t *testing.T) {
	checks, err := Select(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := names(checks), CheckNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Select(nil, nil) = %v, want %v", got, want)
	}
}

func TestSelectEnable(t *testing.T) {
	checks, err := Select([]string{"clock", "span"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(checks); !reflect.DeepEqual(got, []string{"clock", "span"}) {
		t.Fatalf("enable clock,span = %v", got)
	}
}

func TestSelectDisableWins(t *testing.T) {
	checks, err := Select([]string{"clock", "span"}, []string{"span"})
	if err != nil {
		t.Fatal(err)
	}
	if got := names(checks); !reflect.DeepEqual(got, []string{"clock"}) {
		t.Fatalf("enable clock,span disable span = %v", got)
	}
	checks, err = Select(nil, []string{"clock"})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if c.Name == "clock" {
			t.Fatal("disabled check still selected")
		}
	}
	if len(checks) != len(Checks())-1 {
		t.Fatalf("disable clock kept %d of %d checks", len(checks), len(Checks()))
	}
}

func TestSelectUnknownCheck(t *testing.T) {
	if _, err := Select([]string{"nope"}, nil); err == nil {
		t.Fatal("enable nope: want error")
	}
	_, err := Select(nil, []string{"nope"})
	if err == nil {
		t.Fatal("disable nope: want error")
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error %q does not name the unknown check", err)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Check: "clock", File: "internal/auth/auth.go", Line: 42, Col: 7,
		Message: "direct time.Now",
	}
	want := "internal/auth/auth.go:42:7: [clock] direct time.Now"
	if got := d.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestHasDeprecatedMarker(t *testing.T) {
	cases := []struct {
		doc  string
		want bool
	}{
		{"Frob frobnicates.\n\nDeprecated: use Blah.\n", true},
		{"Deprecated: immediately.\n", true},
		{"Mentions the word Deprecated: mid-line is fine when indented?\n", false},
		{"This doc merely talks about the Deprecated: marker.\n", false},
		{"Nothing to see.\n", false},
	}
	for _, c := range cases {
		if got := hasDeprecatedMarker(c.doc); got != c.want {
			t.Errorf("hasDeprecatedMarker(%q) = %v, want %v", c.doc, got, c.want)
		}
	}
}

func TestSuppressionSet(t *testing.T) {
	s := suppressionSet{}
	s.add("f.go", 10, "clock")
	s.add("f.go", 12, "*")
	cases := []struct {
		d    Diagnostic
		want bool
	}{
		{Diagnostic{File: "f.go", Line: 10, Check: "clock"}, true},
		{Diagnostic{File: "f.go", Line: 10, Check: "span"}, false},
		{Diagnostic{File: "f.go", Line: 11, Check: "clock"}, false},
		{Diagnostic{File: "f.go", Line: 12, Check: "span"}, true},
		{Diagnostic{File: "g.go", Line: 10, Check: "clock"}, false},
	}
	for _, c := range cases {
		if got := s.covers(c.d); got != c.want {
			t.Errorf("covers(%s:%d %s) = %v, want %v", c.d.File, c.d.Line, c.d.Check, got, c.want)
		}
	}
}

func TestRunSortsDiagnostics(t *testing.T) {
	prog := &Program{Fset: token.NewFileSet()}
	check := &Check{Name: "fake", Run: func(*Program, *Package) []Diagnostic {
		return []Diagnostic{
			{Check: "fake", Pos: token.Position{Filename: "b.go", Line: 2, Column: 1}},
			{Check: "fake", Pos: token.Position{Filename: "a.go", Line: 9, Column: 3}},
			{Check: "fake", Pos: token.Position{Filename: "a.go", Line: 1, Column: 5}},
		}
	}}
	prog.Packages = []*Package{{}}
	got := Run(prog, []*Check{check})
	if len(got) != 3 {
		t.Fatalf("got %d diagnostics", len(got))
	}
	if got[0].File != "a.go" || got[0].Line != 1 || got[1].Line != 9 || got[2].File != "b.go" {
		t.Fatalf("diagnostics not sorted by position: %v", got)
	}
}

func TestModuleRoot(t *testing.T) {
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "rai" {
		t.Fatalf("module path = %q, want rai", modPath)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %q has no go.mod: %v", root, err)
	}
	if _, _, err := ModuleRoot(t.TempDir()); err == nil {
		t.Fatal("ModuleRoot outside any module: want error")
	}
}
