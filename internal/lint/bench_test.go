package lint

import (
	"sync"
	"testing"
)

// The module is loaded and type-checked once per test binary; the
// self-check test and the full-tree benchmark share the result, so the
// expensive part (type-checking the tree plus the standard library it
// imports) is paid a single time however many consumers run.
var (
	selfOnce sync.Once
	selfProg *Program
	selfRoot string
	selfErr  error
)

func loadSelf() (*Program, string, error) {
	selfOnce.Do(func() {
		root, modPath, err := ModuleRoot(".")
		if err != nil {
			selfErr = err
			return
		}
		selfRoot = root
		selfProg, selfErr = NewLoader().LoadTree(root, modPath)
	})
	return selfProg, selfRoot, selfErr
}

// BenchmarkRaivetFullTree measures one complete raivet pass over this
// repository: call graph, SCC order, per-function summaries, and every
// check. Each iteration runs on a fresh Program sharing the loaded
// packages, so the interprocedural analysis is rebuilt (not served
// from the per-Program cache) while the parse/type-check stays
// amortized — the number CI watches is the analysis, not the loader.
func BenchmarkRaivetFullTree(b *testing.B) {
	prog, _, err := loadSelf()
	if err != nil {
		b.Fatal(err)
	}
	checks := Checks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := &Program{Fset: prog.Fset, Packages: prog.Packages, Deprecated: prog.Deprecated}
		if diags := Run(fresh, checks); len(diags) > 0 {
			b.Fatalf("tree not clean during benchmark: %d finding(s)", len(diags))
		}
	}
}

// BenchmarkRaivetChecksWarm measures the checks alone against a warm
// interprocedural cache — the marginal cost of one more check pass.
func BenchmarkRaivetChecksWarm(b *testing.B) {
	prog, _, err := loadSelf()
	if err != nil {
		b.Fatal(err)
	}
	checks := Checks()
	prog.IPA() // warm the cache outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(prog, checks); len(diags) > 0 {
			b.Fatalf("tree not clean during benchmark: %d finding(s)", len(diags))
		}
	}
}
