package lint

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// loadSrc writes the given packages (import path -> file name -> source)
// into a temp tree and loads them through one Loader. Cross-package
// imports work as long as both packages are in the map.
func loadSrc(t *testing.T, pkgs map[string]map[string]string) *Program {
	t.Helper()
	root := t.TempDir()
	var dirs, paths []string
	for ip := range pkgs {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		dir := filepath.Join(root, filepath.FromSlash(ip))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, src := range pkgs[ip] {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		dirs = append(dirs, dir)
	}
	prog, err := NewLoader().LoadDirs(dirs, paths)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return prog
}

// nodeByName finds a call-graph node by its display name.
func nodeByName(t *testing.T, a *Analysis, name string) *CGNode {
	t.Helper()
	for _, n := range a.Graph.Nodes {
		if n.Name == name {
			return n
		}
	}
	var have []string
	for _, n := range a.Graph.Nodes {
		have = append(have, n.Name)
	}
	t.Fatalf("no call-graph node named %q (have %v)", name, have)
	return nil
}

func calleeNames(edges []CGEdge) []string {
	var out []string
	for _, e := range edges {
		out = append(out, e.Callee.Name)
	}
	sort.Strings(out)
	return out
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}
