package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkGoroLeak flags go statements whose spawned function —
// transitively, through the call graph — can park forever: a channel
// send or receive, or a sync wait, with no reachable cancellation path
// (a ctx.Done/default/timer select case, a close of the channel
// anywhere in the module, or a buffered result channel).
//
// A leaked goroutine is invisible until deadline day: each one pins
// its stack, its captured job state, and often a subscription, and a
// surge multiplies them. The analysis is deliberately conservative in
// what it claims: operations on channels it cannot resolve to a field
// or variable (method results, parameters of unknown provenance) are
// trusted, so every report names a concrete op on a concrete channel.
//
// Recognized-safe shapes, beyond per-op cancellation:
//
//   - handshake: the spawning function itself receives from the same
//     channel class outside any select (the send must be drained for
//     the spawner to proceed), and symmetrically for sends;
//   - waiter-closer: wg.Wait followed by close(ch) in the spawned
//     body (the goroutine exists to turn Wait into a signal).
func checkGoroLeak(prog *Program, pkg *Package) []Diagnostic {
	a := prog.IPA()
	var diags []Diagnostic
	for _, n := range a.Graph.Nodes {
		if n.Pkg != pkg {
			continue
		}
		for _, spawn := range n.Spawns {
			sum := a.Summaries[spawn.Callee]
			if sum == nil || len(sum.Blocks) == 0 {
				continue
			}
			exempt := spawnerChanOps(a, pkg, n)
			for _, bp := range sum.Blocks {
				if bp.exemptedBy(exempt) {
					continue
				}
				if waiterCloser(pkg, spawn.Callee, bp) {
					continue
				}
				pos := prog.Fset.Position(spawn.Site)
				bpos := prog.Fset.Position(bp.Pos)
				msg := "goroutine can block forever: " + bp.What
				if bp.Via != "" {
					msg += " (via " + bp.Via + ")"
				}
				msg += " at " + shortPos(bpos) + " with no cancellation path"
				diags = append(diags, Diagnostic{Check: "goroleak", Pos: pos, Message: msg})
				break // one finding per go statement
			}
		}
	}
	return diags
}

// blockClass extracts the channel class a block point is about, when
// it carries one (wired through What by construction — the class is
// stored alongside instead).
type spawnerOps struct {
	recvs map[types.Object]bool // bare receives in the spawner
	sends map[types.Object]bool // bare sends in the spawner
}

// exemptedBy applies the handshake exemption.
func (bp BlockPoint) exemptedBy(ops spawnerOps) bool {
	if bp.Class == nil {
		return false
	}
	if bp.IsSend {
		return ops.recvs[bp.Class]
	}
	if bp.IsRecv {
		return ops.sends[bp.Class]
	}
	return false
}

// spawnerChanOps collects the channel classes the spawning function
// sends to / receives from outside selects: a bare receive in the
// spawner means a send in the goroutine is drained (the handshake
// idiom), and vice versa. Receives inside selects do not count — a
// select that can take another case is exactly how the drain is
// abandoned and the goroutine leaked.
func spawnerChanOps(a *Analysis, pkg *Package, n *CGNode) spawnerOps {
	ops := spawnerOps{recvs: map[types.Object]bool{}, sends: map[types.Object]bool{}}
	inSelect := func(stack []ast.Node) bool {
		for _, s := range stack {
			if _, ok := s.(*ast.SelectStmt); ok {
				return true
			}
		}
		return false
	}
	var stack []ast.Node
	ast.Inspect(n.Body(), func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, m)
		if lit, ok := m.(*ast.FuncLit); ok && lit != n.Lit {
			// Sibling goroutines count too: a consumer goroutine spawned
			// next to the producer drains it.
			return true
		}
		switch v := m.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && !inSelect(stack) {
				if c := a.Chans.resolve(chanClassOf(pkg, v.X)); c != nil {
					ops.recvs[c] = true
				}
			}
		case *ast.RangeStmt:
			if t := pkg.Info.Types[v.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if c := a.Chans.resolve(chanClassOf(pkg, v.X)); c != nil {
						ops.recvs[c] = true
					}
				}
			}
		case *ast.SendStmt:
			if !inSelect(stack) {
				if c := a.Chans.resolve(chanClassOf(pkg, v.Chan)); c != nil {
					ops.sends[c] = true
				}
			}
		}
		return true
	})
	return ops
}

// waiterCloser recognizes the wg.Wait-then-close signal goroutine:
// the Wait exists to be turned into a channel close, and the Dones it
// waits for are the spawner's business, not this goroutine's.
func waiterCloser(pkg *Package, n *CGNode, bp BlockPoint) bool {
	if !bp.IsSyncWait {
		return false
	}
	found := false
	ast.Inspect(n.Body(), func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "close" {
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && call.Pos() > bp.Pos {
				found = true
			}
		}
		return true
	})
	return found
}
