package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkErrFlow flags error results that vanish before any code looks
// at them, on non-test code paths:
//
//   - a call whose last result is an error, used as a bare statement
//     (the error is dropped on the floor);
//   - a go statement spawning such a call (the error has nowhere to
//     go at all);
//   - an error assigned to a variable and then overwritten by another
//     assignment in the same block with no read in between (the first
//     error is checked by nobody — the classic paste-then-shadow bug
//     on commit/ack paths).
//
// Sanctioned shapes stay quiet: explicit discards (`_ = f()`) are an
// audited decision, deferred calls follow the resource-cleanup idiom,
// and writers that cannot fail by contract (bytes.Buffer,
// strings.Builder, fmt.Fprint* — the output-boundary convention) are
// exempt. Calls to module functions whose summaries prove the error
// is nil on every return path are exempt too — that is the
// interprocedural half: a facade that cannot fail yet returns error
// for interface reasons does not force ritual checks on its callers.
func checkErrFlow(prog *Program, pkg *Package) []Diagnostic {
	a := prog.IPA()
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if isTestFile(prog, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, errFlowInBody(a, pkg, fd.Body)...)
		}
	}
	return diags
}

func isTestFile(prog *Program, f *ast.File) bool {
	return strings.HasSuffix(prog.Fset.Position(f.FileStart).Filename, "_test.go")
}

func errFlowInBody(a *Analysis, pkg *Package, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				if d, bad := droppedError(a, pkg, call, "discarded"); bad {
					diags = append(diags, d)
				}
			}
		case *ast.GoStmt:
			if d, bad := droppedError(a, pkg, v.Call, "discarded by go statement"); bad {
				diags = append(diags, d)
			}
		case *ast.BlockStmt:
			diags = append(diags, overwrittenErrors(a, pkg, v)...)
		}
		return true
	})
	return diags
}

// droppedError reports a call statement whose error result nobody can
// ever see.
func droppedError(a *Analysis, pkg *Package, call *ast.CallExpr, how string) (Diagnostic, bool) {
	if !returnsError(pkg, call) || errExempt(a, pkg, call) {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Check:   "errflow",
		Pos:     a.Graph.prog.Fset.Position(call.Pos()),
		Message: "error result of " + calleeName(call) + " " + how + ": handle it, or assign to _ to make the drop explicit",
	}, true
}

// returnsError reports whether the call's last result is an error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	t := pkg.Info.Types[call].Type
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		return isErrorType(tuple.At(tuple.Len() - 1).Type())
	}
	return isErrorType(t)
}

// errExempt covers callees whose dropped error is conventional:
// cannot-fail writers, the fmt output boundary, and module functions
// proven always-nil by their summaries.
func errExempt(a *Analysis, pkg *Package, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if name, ok := stdlibFunc(pkg, fun, "fmt"); ok && strings.HasPrefix(name, "Print") || ok && strings.HasPrefix(name, "Fprint") {
		return true
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		// hash.Hash (and friends in package hash) document that Write
		// never returns an error.
		if t := pkg.Info.Types[sel.X].Type; t != nil {
			if named, isNamed := derefType(t).(*types.Named); isNamed {
				if o := named.Obj(); o.Pkg() != nil && o.Pkg().Path() == "hash" {
					return true
				}
			}
		}
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			recv := fn.Type().(*types.Signature).Recv()
			if recv != nil {
				if named, ok := derefType(recv.Type()).(*types.Named); ok {
					owner := named.Obj()
					if owner.Pkg() != nil {
						switch owner.Pkg().Path() + "." + owner.Name() {
						case "bytes.Buffer", "strings.Builder":
							return true // documented to never return an error
						}
					}
				}
			}
		}
	}
	for _, callee := range a.Graph.resolveCall(pkg, call) {
		if cs := a.Summaries[callee]; cs != nil && cs.AlwaysNilErr {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// overwrittenErrors scans one block's statement list for an error
// variable written twice with no intervening read. Only sibling
// top-level statements are compared, so branch-local rebinds ("if x
// { err = f() }") never false-positive; a write inside a nested
// statement conservatively clears the pending state.
func overwrittenErrors(a *Analysis, pkg *Package, block *ast.BlockStmt) []Diagnostic {
	pending := map[types.Object]token.Pos{}
	var diags []Diagnostic
	for _, st := range block.List {
		writes, reads, nestedWrites := errAccesses(pkg, st)
		for obj := range reads {
			delete(pending, obj)
		}
		for obj := range nestedWrites {
			delete(pending, obj)
		}
		for obj, pos := range writes {
			if prev, ok := pending[obj]; ok {
				diags = append(diags, Diagnostic{
					Check: "errflow",
					Pos:   a.Graph.prog.Fset.Position(prev),
					Message: "error assigned to " + obj.Name() +
						" is overwritten before any check (see " + shortPos(a.Graph.prog.Fset.Position(pos)) + ")",
				})
			}
			pending[obj] = pos
		}
	}
	return diags
}

// errAccesses classifies how one statement touches error variables:
// top-level writes (assignment statements directly in the block),
// reads anywhere within, and writes buried in nested statements.
func errAccesses(pkg *Package, st ast.Stmt) (writes, reads, nestedWrites map[types.Object]token.Pos) {
	writes = map[types.Object]token.Pos{}
	reads = map[types.Object]token.Pos{}
	nestedWrites = map[types.Object]token.Pos{}

	topLHS := map[*ast.Ident]bool{}
	if as, ok := st.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				obj := objOf(pkg, id)
				if obj != nil && isErrorType(obj.Type()) {
					topLHS[id] = true
					writes[obj] = as.Pos()
				}
			}
		}
	}
	ast.Inspect(st, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			if topLHS[v] {
				return true
			}
			obj := objOf(pkg, v)
			if obj == nil || !isErrorType(obj.Type()) {
				return true
			}
			if isWriteTarget(pkg, st, v) {
				nestedWrites[obj] = v.Pos()
			} else {
				reads[obj] = v.Pos()
			}
		case *ast.UnaryExpr:
			// &err passed along: treat as a read (escape).
			if v.Op == token.AND {
				if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
					if obj := objOf(pkg, id); obj != nil && isErrorType(obj.Type()) {
						reads[obj] = v.Pos()
					}
				}
			}
		}
		return true
	})
	return writes, reads, nestedWrites
}

func objOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// isWriteTarget reports whether id appears as an assignment LHS of
// some (possibly nested) assignment within st.
func isWriteTarget(pkg *Package, st ast.Stmt, id *ast.Ident) bool {
	target := false
	ast.Inspect(st, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if lhs == id {
				target = true
			}
		}
		return true
	})
	return target
}
