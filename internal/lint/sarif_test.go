package lint

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestSARIFRoundTrip encodes diagnostics with WriteSARIF and decodes
// the document back through the same structs: every finding must
// survive with its rule, message, and location intact, and every
// registered check must appear as a rule even when it found nothing.
func TestSARIFRoundTrip(t *testing.T) {
	in := []Diagnostic{
		{Check: "clock", File: "internal/auth/auth.go", Line: 42, Col: 7, Message: "direct time.Now"},
		{Check: "lockorder", File: "internal/broker/broker.go", Line: 9, Col: 2, Message: "lock cycle"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, in); err != nil {
		t.Fatal(err)
	}
	var log SarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("decoding our own SARIF: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "raivet" {
		t.Errorf("driver = %q, want raivet", run.Tool.Driver.Name)
	}
	rules := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, name := range CheckNames() {
		if !rules[name] {
			t.Errorf("check %q missing from rules", name)
		}
	}
	if len(run.Results) != len(in) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(in))
	}
	for i, r := range run.Results {
		d := in[i]
		if r.RuleID != d.Check || r.Message.Text != d.Message {
			t.Errorf("result %d = %s %q, want %s %q", i, r.RuleID, r.Message.Text, d.Check, d.Message)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != d.File || loc.Region.StartLine != d.Line || loc.Region.StartColumn != d.Col {
			t.Errorf("result %d location = %s:%d:%d, want %s:%d:%d",
				i, loc.ArtifactLocation.URI, loc.Region.StartLine, loc.Region.StartColumn, d.File, d.Line, d.Col)
		}
	}
}

// TestSARIFEmptyRun keeps the zero-findings document well-formed:
// results must encode as [], not null, for strict SARIF consumers.
func TestSARIFEmptyRun(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"results": null`)) {
		t.Errorf("empty run encodes results as null:\n%s", buf.String())
	}
}

func TestCountIgnores(t *testing.T) {
	src := `package p

//lint:ignore clock the scheduler needs the real wall clock
var a int

//lint:ignore nope unknown check does not count
var b int

//lint:ignore span
var c int // no reason given: malformed, does not count

//lint:ignore * fixture exercises every check
var d int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	prog := &Program{Fset: fset, Packages: []*Package{{Path: "p", Files: []*ast.File{f}}}}
	if got := CountIgnores(prog); got != 2 {
		t.Errorf("CountIgnores = %d, want 2 (one known check, one wildcard)", got)
	}
}
