package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkGoLoop flags goroutine literals that capture a loop variable of
// an enclosing for/range statement. Go 1.22 made each iteration's
// variable distinct, so this is no longer the classic aliasing bug —
// but the project bans the capture anyway: passing the value as an
// argument keeps goroutine inputs explicit and keeps the code correct
// when back-ported or read against pre-1.22 semantics.
func checkGoLoop(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	walkFuncs(pkg, func(decl *ast.FuncDecl) {
		// First pass: map every loop-iteration variable to its loop body.
		loopVar := map[types.Object]*ast.BlockStmt{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.RangeStmt:
				if v.Tok == token.DEFINE {
					for _, e := range []ast.Expr{v.Key, v.Value} {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := pkg.Info.Defs[id]; obj != nil {
								loopVar[obj] = v.Body
							}
						}
					}
				}
			case *ast.ForStmt:
				if init, ok := v.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, e := range init.Lhs {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := pkg.Info.Defs[id]; obj != nil {
								loopVar[obj] = v.Body
							}
						}
					}
				}
			}
			return true
		})
		if len(loopVar) == 0 {
			return
		}
		// Second pass: goroutine literals referencing a loop variable of
		// a loop they are inside of.
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pkg.Info.Uses[id]
				body, isLoopVar := loopVar[obj]
				if !isLoopVar || g.Pos() < body.Pos() || g.End() > body.End() {
					return true
				}
				diags = append(diags, Diagnostic{
					Check:   "goloop",
					Pos:     prog.Fset.Position(id.Pos()),
					Message: "goroutine captures loop variable " + id.Name + ": pass it as an argument to the function literal",
				})
				return true
			})
			return true
		})
	})
	return diags
}

// checkWgAdd flags sync.WaitGroup.Add calls made inside the goroutine
// they account for. Add must happen-before the corresponding Wait; an
// Add racing Wait from inside the spawned goroutine lets Wait return
// before the work is tracked — the canonical drain bug.
func checkWgAdd(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	walkFuncs(pkg, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" || !isWaitGroup(pkg.Info.Types[sel.X].Type) {
					return true
				}
				// A WaitGroup declared inside this literal is its own
				// nested scope; only flag captured ones.
				if root := identRoot(sel.X); root != nil {
					if obj := pkg.Info.Uses[root]; obj != nil && lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End() {
						return true
					}
				}
				diags = append(diags, Diagnostic{
					Check:   "wgadd",
					Pos:     prog.Fset.Position(call.Pos()),
					Message: "WaitGroup.Add inside the spawned goroutine races Wait: call Add before the go statement",
				})
				return true
			})
			return true
		})
	})
	return diags
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// syncLockTypes are the sync primitives that must never be copied once
// used. (go vet's copylocks catches many copies; this check also covers
// the signature-level ones — value receivers, parameters, and returns —
// uniformly, so the invariant is enforced even where vet is not run.)
var syncLockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
	"Map":       true,
	"Pool":      true,
}

// checkLockCopy flags functions whose receiver, parameters, or results
// carry — by value — a type that transitively contains a sync primitive.
func checkLockCopy(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	walkFuncs(pkg, func(decl *ast.FuncDecl) {
		flag := func(field *ast.Field, role string) {
			t := pkg.Info.Types[field.Type].Type
			if t == nil {
				return
			}
			if name, found := containsLock(t, map[types.Type]bool{}); found {
				diags = append(diags, Diagnostic{
					Check:   "lockcopy",
					Pos:     prog.Fset.Position(field.Type.Pos()),
					Message: role + " copies " + name + " by value: use a pointer",
				})
			}
		}
		if decl.Recv != nil {
			for _, f := range decl.Recv.List {
				flag(f, "receiver of "+decl.Name.Name)
			}
		}
		if decl.Type.Params != nil {
			for _, f := range decl.Type.Params.List {
				flag(f, "parameter of "+decl.Name.Name)
			}
		}
		if decl.Type.Results != nil {
			for _, f := range decl.Type.Results.List {
				flag(f, "result of "+decl.Name.Name)
			}
		}
	})
	return diags
}

// containsLock reports whether t (by value) transitively contains a
// sync primitive, returning the primitive's name. Pointers, slices,
// maps, channels, and interfaces stop the recursion: copying those does
// not copy the pointed-to lock.
func containsLock(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	switch v := t.(type) {
	case *types.Named:
		obj := v.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return "sync." + obj.Name(), true
		}
		return containsLock(v.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if name, found := containsLock(v.Field(i).Type(), seen); found {
				return name, true
			}
		}
	case *types.Array:
		return containsLock(v.Elem(), seen)
	}
	return "", false
}
