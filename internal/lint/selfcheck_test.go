package lint

import (
	"path/filepath"
	"testing"
)

// TestRepositoryIsClean is the self-check: raivet run over this module
// must report nothing. It is the test-suite twin of the verify.sh gate,
// so a change that reintroduces a wall-clock read or a fresh
// context.Background in library code fails `go test` too, not just the
// release script.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, root, err := loadSelf()
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, Checks())
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.File); err == nil {
			d.File = rel
		}
		t.Errorf("%s", d.String())
	}
	if len(diags) > 0 {
		t.Fatalf("raivet found %d issue(s) in the repository; fix them or add a justified //lint:ignore", len(diags))
	}
}
