package lint

import (
	"go/ast"
	"go/types"
)

// clockExemptPath is the one package allowed to touch the real clock:
// it is where clock.Real wraps it.
const clockExemptPath = "internal/clock"

// bannedTimeFuncs are the package-level time functions that read or
// schedule against the process wall clock. Code that uses them directly
// diverges under the virtual clock, which breaks the simulation
// harness's bit-reproducible figures and every deterministic test.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// checkClock enforces clock discipline: no direct wall-clock reads or
// timers outside internal/clock. Any mention counts — calls and method
// values alike, because storing time.Now into a struct field is exactly
// the leak that bypasses an injected clock.Clock.
func checkClock(prog *Program, pkg *Package) []Diagnostic {
	if isClockPackage(pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if !bannedTimeFuncs[sel.Sel.Name] {
				return true
			}
			diags = append(diags, Diagnostic{
				Check: "clock",
				Pos:   prog.Fset.Position(sel.Pos()),
				Message: "direct time." + sel.Sel.Name +
					": inject clock.Clock (rai/internal/clock) so virtual-clock runs stay deterministic",
			})
			return true
		})
	}
	return diags
}

func isClockPackage(path string) bool {
	return path == clockExemptPath ||
		len(path) > len(clockExemptPath) &&
			path[len(path)-len(clockExemptPath)-1] == '/' &&
			path[len(path)-len(clockExemptPath):] == clockExemptPath
}
