package lint

import (
	"strings"
	"testing"
)

// summaryOf builds the IPA over src (one package "m/s") and returns
// the summary for the named node.
func summaryOf(t *testing.T, src, name string) (*Analysis, *Summary) {
	t.Helper()
	prog := loadSrc(t, map[string]map[string]string{"m/s": {"s.go": src}})
	a := prog.IPA()
	n := nodeByName(t, a, name)
	sum := a.Summaries[n]
	if sum == nil {
		t.Fatalf("no summary for %q", name)
	}
	return a, sum
}

const lockHelperSrc = `package s

import "sync"

type R struct{ mu sync.Mutex }

func (r *R) lock()   { r.mu.Lock() }
func (r *R) unlock() { r.mu.Unlock() }

// maybeLock holds the mutex only on the success path, so callers'
// summaries must not treat it as held unconditionally.
func (r *R) maybeLock(ok bool) bool {
	if !ok {
		return false
	}
	r.mu.Lock()
	return true
}

// alwaysLock locks on every path.
func (r *R) alwaysLock(ok bool) {
	if ok {
		r.mu.Lock()
	} else {
		r.mu.Lock()
	}
}
`

func TestSummaryLockHelperHeldAtExit(t *testing.T) {
	a, sum := summaryOf(t, lockHelperSrc, "(*R).lock")
	if len(sum.HeldAtExit) != 1 {
		t.Fatalf("lock(): HeldAtExit = %d classes, want 1", len(sum.HeldAtExit))
	}
	for c := range sum.HeldAtExit {
		if name := a.LockName(c); !strings.Contains(name, "mu") {
			t.Errorf("lock(): held class renders as %q, want the mu field", name)
		}
	}
	if len(sum.Acquires) != 1 {
		t.Errorf("lock(): Acquires = %d classes, want 1", len(sum.Acquires))
	}
}

func TestSummaryUnlockHelperReleases(t *testing.T) {
	_, sum := summaryOf(t, lockHelperSrc, "(*R).unlock")
	if len(sum.Releases) != 1 {
		t.Errorf("unlock(): Releases = %d classes, want 1", len(sum.Releases))
	}
	if len(sum.HeldAtExit) != 0 {
		t.Errorf("unlock(): HeldAtExit = %d classes, want 0", len(sum.HeldAtExit))
	}
}

// HeldAtExit is a must-hold intersection: a helper that locks only on
// its success path contributes nothing, while one that locks on every
// branch does.
func TestSummaryHeldAtExitIsIntersection(t *testing.T) {
	_, sum := summaryOf(t, lockHelperSrc, "(*R).maybeLock")
	if len(sum.HeldAtExit) != 0 {
		t.Errorf("maybeLock(): HeldAtExit = %d classes, want 0 (early return holds nothing)", len(sum.HeldAtExit))
	}
	if len(sum.Acquires) != 1 {
		t.Errorf("maybeLock(): Acquires = %d classes, want 1 (may-acquire stays a union)", len(sum.Acquires))
	}
	_, sum = summaryOf(t, lockHelperSrc, "(*R).alwaysLock")
	if len(sum.HeldAtExit) != 1 {
		t.Errorf("alwaysLock(): HeldAtExit = %d classes, want 1 (held on both branches)", len(sum.HeldAtExit))
	}
}

func TestSummaryAlwaysNilError(t *testing.T) {
	src := `package s

import "errors"

func direct() error  { return nil }
func viaCall() error { return direct() }
func real() error    { return errors.New("x") }
`
	_, sum := summaryOf(t, src, "direct")
	if !sum.AlwaysNilErr {
		t.Error("direct(): AlwaysNilErr = false, want true")
	}
	_, sum = summaryOf(t, src, "viaCall")
	if !sum.AlwaysNilErr {
		t.Error("viaCall(): AlwaysNilErr = false, want true (propagates through callee)")
	}
	_, sum = summaryOf(t, src, "real")
	if sum.AlwaysNilErr {
		t.Error("real(): AlwaysNilErr = true, want false")
	}
}

// A Wait on a *sync.WaitGroup parameter is a block point (the Dones
// are someone else's promise); a Wait on a local or field group is
// balanced by code the module owns and stays quiet.
func TestSummaryWaitGroupProvenance(t *testing.T) {
	src := `package s

import "sync"

type P struct{ wg sync.WaitGroup }

func OnParam(wg *sync.WaitGroup) { wg.Wait() }

func OnField(p *P) { p.wg.Wait() }

func OnLocal() {
	var wg sync.WaitGroup
	wg.Wait()
}
`
	_, sum := summaryOf(t, src, "OnParam")
	if len(sum.Blocks) != 1 || !sum.Blocks[0].IsSyncWait {
		t.Errorf("OnParam: Blocks = %+v, want one sync wait", sum.Blocks)
	}
	_, sum = summaryOf(t, src, "OnField")
	if len(sum.Blocks) != 0 {
		t.Errorf("OnField: Blocks = %+v, want none", sum.Blocks)
	}
	_, sum = summaryOf(t, src, "OnLocal")
	if len(sum.Blocks) != 0 {
		t.Errorf("OnLocal: Blocks = %+v, want none", sum.Blocks)
	}
}

// A function that spawns its own sender and receives the result (or
// feeds its own spawned workers) completes the handshake locally: the
// op is not a block point even when the whole function later runs on
// a spawned goroutine.
func TestSummaryLocalHandshake(t *testing.T) {
	src := `package s

type S struct{ ch chan int }

func SelfHandshake() int {
	done := make(chan int)
	go func() { done <- 1 }()
	return <-done
}

func FeedOwnWorkers() {
	work := make(chan int)
	go func() {
		for range work {
		}
	}()
	work <- 1
	close(work)
}

func BareRecv(s *S) int { return <-s.ch }
`
	_, sum := summaryOf(t, src, "SelfHandshake")
	if len(sum.Blocks) != 0 {
		t.Errorf("SelfHandshake: Blocks = %+v, want none (own literal sends)", sum.Blocks)
	}
	_, sum = summaryOf(t, src, "FeedOwnWorkers")
	if len(sum.Blocks) != 0 {
		t.Errorf("FeedOwnWorkers: Blocks = %+v, want none (own workers drain)", sum.Blocks)
	}
	_, sum = summaryOf(t, src, "BareRecv")
	if len(sum.Blocks) != 1 || !sum.Blocks[0].IsRecv {
		t.Errorf("BareRecv: Blocks = %+v, want one receive (never closed, nothing local sends)", sum.Blocks)
	}
}

// Channel provenance: a close through a local alias lands on the
// underlying field; an opaque source (map lookup) stays quiet.
func TestSummaryChannelAliasAndOpaque(t *testing.T) {
	src := `package s

type S struct{ done chan struct{} }

func (s *S) Stop() {
	close(s.done)
}

func (s *S) WaitAliased() {
	done := s.done
	<-done
}

func FromMap(m map[int]chan int) int {
	ch := m[0]
	return <-ch
}
`
	_, sum := summaryOf(t, src, "(*S).WaitAliased")
	if len(sum.Blocks) != 0 {
		t.Errorf("WaitAliased: Blocks = %+v, want none (alias resolves to the closed field)", sum.Blocks)
	}
	_, sum = summaryOf(t, src, "FromMap")
	if len(sum.Blocks) != 0 {
		t.Errorf("FromMap: Blocks = %+v, want none (opaque provenance is trusted)", sum.Blocks)
	}
}
