package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkCtxFlow is the interprocedural completion of ctxfirst/ctxbg: a
// function that already has a context.Context in scope (its own
// parameter, or a captured one in a nested literal) must forward it —
// passing a fresh Background/TODO-rooted context to a ctx-accepting
// callee severs cancellation exactly where the caller promised to
// propagate it. Unlike ctxbg this fires in package main too: a daemon
// with a signal-derived root context that hands context.Background()
// to a helper has disconnected that helper from shutdown.
//
// Two shapes are flagged at the call site:
//
//   - an argument of type context.Context whose expression mints
//     Background/TODO inline (possibly wrapped: WithTimeout(
//     context.Background(), d));
//   - an argument naming a local variable that was *defined* from a
//     Background-rooted expression (a one-hop derivation chain).
//
// Reassigning an existing ctx variable (the "if ctx == nil { ctx =
// context.Background() }" fallback) is not tracked: that idiom is the
// sanctioned nil-context default and is audited by ctxbg instead.
func checkCtxFlow(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if isTestFile(prog, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, ctxFlowInFunc(prog, pkg, fd)...)
		}
	}
	return diags
}

func ctxFlowInFunc(prog *Program, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	// tainted tracks Background-rooted local definitions; shared across
	// the literal nest (a captured tainted ctx stays tainted).
	tainted := map[types.Object]bool{}

	// walk processes one function body; inScope is whether any
	// enclosing function (this one included) has a ctx parameter.
	// Nested literals are visited exactly once, with their own scope.
	var walk func(body *ast.BlockStmt, self *ast.FuncLit, inScope bool)
	walk = func(body *ast.BlockStmt, self *ast.FuncLit, inScope bool) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncLit:
				if v == self {
					return true
				}
				walk(v.Body, v, inScope || len(ctxParams(pkg, v.Type)) > 0)
				return false
			case *ast.AssignStmt:
				if v.Tok == token.DEFINE {
					for i, rhs := range v.Rhs {
						if !backgroundRooted(pkg, rhs, tainted) {
							continue
						}
						for j, lhs := range v.Lhs {
							if len(v.Rhs) > 1 && j != i {
								continue
							}
							if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
								if obj := pkg.Info.Defs[id]; obj != nil && isContextType(obj.Type()) {
									tainted[obj] = true
								}
							}
						}
					}
				}
			case *ast.CallExpr:
				if !inScope {
					return true
				}
				for _, arg := range v.Args {
					if t := pkg.Info.Types[arg].Type; t == nil || !isContextType(t) {
						continue
					}
					if backgroundRooted(pkg, arg, tainted) {
						diags = append(diags, Diagnostic{
							Check: "ctxflow",
							Pos:   prog.Fset.Position(arg.Pos()),
							Message: "ctx is in scope but a context.Background-rooted context is passed: " +
								"forward ctx (derive with context.WithoutCancel to outlive it)",
						})
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, nil, len(ctxParams(pkg, fd.Type)) > 0)
	return diags
}

// ctxParams returns the context.Context parameter objects of a
// function type.
func ctxParams(pkg *Package, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft == nil || ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		t := pkg.Info.Types[field.Type].Type
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// backgroundRooted reports whether the expression mints or carries a
// context rooted in context.Background()/TODO(): a direct call, any
// wrapper call with such an argument, or a variable defined from one.
func backgroundRooted(pkg *Package, e ast.Expr, tainted map[types.Object]bool) bool {
	rooted := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if name, ok := stdlibFunc(pkg, v.Fun, "context"); ok && (name == "Background" || name == "TODO") {
				rooted = true
			}
		case *ast.Ident:
			if obj := pkg.Info.Uses[v]; obj != nil && tainted[obj] {
				rooted = true
			}
		}
		return !rooted
	})
	return rooted
}
