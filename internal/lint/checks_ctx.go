package lint

import (
	"go/ast"
	"go/types"
)

// checkCtxBackground enforces context discipline in library code: no
// context.Background() or context.TODO(). Library functions accept the
// caller's ctx (deriving with WithoutCancel when they must outlive it);
// only package main — where a process root genuinely exists — and tests
// mint fresh contexts.
func checkCtxBackground(prog *Program, pkg *Package) []Diagnostic {
	if pkg.IsMain() {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := stdlibFunc(pkg, call.Fun, "context")
			if !ok || (name != "Background" && name != "TODO") {
				return true
			}
			diags = append(diags, Diagnostic{
				Check: "ctxbg",
				Pos:   prog.Fset.Position(call.Pos()),
				Message: "context." + name +
					"() in library code: accept the caller's ctx (derive with context.WithoutCancel to outlive it)",
			})
			return true
		})
	}
	return diags
}

// checkCtxFirst enforces the context-first signature convention: when an
// exported function, method, or interface method takes a
// context.Context at all, it takes it as the first parameter.
func checkCtxFirst(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	flag := func(pos ast.Node, what string) {
		diags = append(diags, Diagnostic{
			Check:   "ctxfirst",
			Pos:     prog.Fset.Position(pos.Pos()),
			Message: what + " takes context.Context but not as the first parameter",
		})
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if idx := ctxParamIndex(pkg, d.Type.Params); idx > 0 {
					flag(d.Name, "exported "+funcKind(d)+" "+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					iface, ok := ts.Type.(*ast.InterfaceType)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					for _, m := range iface.Methods.List {
						ft, ok := m.Type.(*ast.FuncType)
						if ok && len(m.Names) > 0 {
							if idx := ctxParamIndex(pkg, ft.Params); idx > 0 {
								flag(m.Names[0], "interface method "+ts.Name.Name+"."+m.Names[0].Name)
							}
						}
					}
				}
			}
		}
	}
	return diags
}

// ctxParamIndex returns the parameter index of the first
// context.Context parameter, or -1 when there is none. Indexes count
// individual names ("a, b int" is two parameters).
func ctxParamIndex(pkg *Package, params *ast.FieldList) int {
	if params == nil {
		return -1
	}
	idx := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t := pkg.Info.Types[field.Type].Type; t != nil && isContextType(t) {
			return idx
		}
		idx += n
	}
	return -1
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkDeprecated flags calls to functions carrying a "Deprecated:" doc
// marker from code that is not itself deprecated. The marker set is
// built program-wide at load time, so a deprecated wrapper in core is
// caught when called from brokerd and vice versa.
func checkDeprecated(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	walkFuncs(pkg, func(decl *ast.FuncDecl) {
		if obj := pkg.Info.Defs[decl.Name]; obj != nil && prog.Deprecated[obj] {
			return // deprecated code may call deprecated code
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = fun
			case *ast.SelectorExpr:
				callee = fun.Sel
			default:
				return true
			}
			obj := pkg.Info.Uses[callee]
			if obj == nil || !prog.Deprecated[obj] {
				return true
			}
			diags = append(diags, Diagnostic{
				Check:   "deprecated",
				Pos:     prog.Fset.Position(call.Pos()),
				Message: "call to deprecated " + obj.Name() + ": use its context-first replacement",
			})
			return true
		})
	})
	return diags
}

// stdlibFunc reports the function name when fun is a selector into the
// named standard-library package (e.g. context.Background).
func stdlibFunc(pkg *Package, fun ast.Expr, stdPkg string) (string, bool) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != stdPkg {
		return "", false
	}
	return sel.Sel.Name, true
}
