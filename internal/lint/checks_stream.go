package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// streamPackageMarkers select the storage data plane: the packages whose
// whole point after the streaming refactor is that object and journal
// bytes flow through io.Reader/io.Writer without ever being buffered
// whole. Matching by import-path substring covers the server, client,
// and backend halves alike.
var streamPackageMarkers = []string{"objstore", "docstore", "blobstore"}

// checkStream flags io.ReadAll inside the storage packages. A ReadAll
// there reintroduces the O(object size) memory spike the streaming
// storage layer exists to eliminate — one large upload regresses the
// file server back to buffering whole archives.
//
// Two shapes stay legal:
//   - io.ReadAll(io.LimitReader(r, n)): explicitly bounded, the idiom
//     for small error bodies and capped metadata reads;
//   - the blobstore conformance harness, which buffers deliberately so
//     it can compare full contents across backends.
func checkStream(prog *Program, pkg *Package) []Diagnostic {
	if !streamCheckedPath(pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isIoFunc(pkg, call.Fun, "ReadAll") {
				return true
			}
			if len(call.Args) == 1 {
				if inner, ok := call.Args[0].(*ast.CallExpr); ok && isIoFunc(pkg, inner.Fun, "LimitReader") {
					return true
				}
			}
			diags = append(diags, Diagnostic{
				Check: "stream",
				Pos:   prog.Fset.Position(call.Pos()),
				Message: "io.ReadAll buffers the whole object in the storage data plane: " +
					"stream through io.Copy/GetReader, or bound it with io.ReadAll(io.LimitReader(r, n))",
			})
			return true
		})
	}
	return diags
}

// streamCheckedPath reports whether an import path belongs to the
// storage data plane (and is not the conformance harness).
func streamCheckedPath(path string) bool {
	if strings.Contains(path, "conformance") {
		return false
	}
	for _, m := range streamPackageMarkers {
		if strings.Contains(path, m) {
			return true
		}
	}
	return false
}

// isIoFunc reports whether fun denotes the standard library io.<name>.
func isIoFunc(pkg *Package, fun ast.Expr, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "io"
}
