// Package streambadobjstore plants storage-data-plane buffering
// violations: its fixture path contains "objstore", so the stream check
// applies. Unbounded io.ReadAll is flagged; LimitReader-bounded reads
// and plain streaming copies are not.
package streambadobjstore

import (
	"io"
)

// Slurp buffers a whole object in memory.
func Slurp(r io.Reader) ([]byte, error) {
	return io.ReadAll(r) // want stream
}

// SlurpAssigned buffers through an assignment.
func SlurpAssigned(r io.Reader) int {
	data, _ := io.ReadAll(r) // want stream
	return len(data)
}

// Bounded reads a capped error body; the explicit limit keeps it legal.
func Bounded(r io.Reader) ([]byte, error) {
	return io.ReadAll(io.LimitReader(r, 512))
}

// Streamed copies without buffering.
func Streamed(w io.Writer, r io.Reader) (int64, error) {
	return io.Copy(w, r)
}

// Suppressed documents a deliberate whole-object read.
func Suppressed(r io.Reader) ([]byte, error) {
	//lint:ignore stream test fixture for the suppression path
	return io.ReadAll(r)
}
