// Package goloopbad plants goroutine loop-variable captures in both
// range and three-clause for loops.
package goloopbad

// SpawnRange captures the range variable inside the goroutine.
func SpawnRange(items []int, done chan int) {
	for _, it := range items {
		go func() {
			done <- it // want goloop
		}()
	}
}

// SpawnFor captures the index variable of a classic for loop.
func SpawnFor(n int, done chan int) {
	for i := 0; i < n; i++ {
		go func() {
			done <- i // want goloop
		}()
	}
}

// Good passes the loop value as an argument.
func Good(items []int, done chan int) {
	for _, it := range items {
		go func(v int) {
			done <- v
		}(it)
	}
}

// Outside uses the variable after the loop, where capture is fine.
func Outside(items []int, done chan int) {
	var last int
	for _, it := range items {
		last = it
	}
	go func() {
		done <- last
	}()
}
