// Package lockorderbad injects a two-mutex ordering cycle: the
// registry lock is taken before a topic lock on one path and after it
// (through a helper, so composition is exercised) on another. Two
// threads on the two paths deadlock holding one lock each.
package lockorderbad

import "sync"

type registry struct {
	mu     sync.Mutex
	topics map[string]*topic
}

type topic struct {
	mu   sync.Mutex
	subs int
}

// AddSub follows the documented order: registry before topic.
func (r *registry) AddSub(t *topic) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t.mu.Lock() // want lockorder
	t.subs++
	t.mu.Unlock()
}

// Drop inverts it: topic held while a helper retakes the registry.
func (r *registry) Drop(t *topic) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r.deleteTopic("x") // want lockorder
}

func (r *registry) deleteTopic(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.topics, name)
}

// stats is a third lock used in one consistent order everywhere: it
// forms pairs but no cycle, so it must stay silent.
type stats struct {
	mu    sync.Mutex
	seen  int
	inner sync.Mutex
}

func (s *stats) bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Lock()
	s.seen++
	s.inner.Unlock()
}

func (s *stats) read() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Lock()
	defer s.inner.Unlock()
	return s.seen
}

// lockBoth acquires and hands both locks to the caller (HeldAtExit),
// and unlockBoth releases caller-held locks (Releases): the helper
// shapes summaries must carry for composition to stay in order.
func (s *stats) lockBoth() {
	s.mu.Lock()
	s.inner.Lock()
}

func (s *stats) unlockBoth() {
	s.inner.Unlock()
	s.mu.Unlock()
}

func (s *stats) reset() {
	s.lockBoth()
	s.seen = 0
	s.unlockBoth()
}
