// Package httprespbad plants HTTP response-body violations: a body that
// is never closed, and one closed without being drained.
package httprespbad

import (
	"io"
	"net/http"
)

// Fetch never closes the body, leaking the connection.
func Fetch(url string) (int, error) {
	resp, err := http.Get(url) // want httpresp
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// CloseOnly closes without draining, defeating connection reuse.
func CloseOnly(url string) error {
	resp, err := http.Get(url) // want httpresp
	if err != nil {
		return err
	}
	resp.Body.Close() // want errflow
	return nil
}

// Good drains then closes.
func Good(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// HandOff returns the response; the caller owns the body.
func HandOff(url string) (*http.Response, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	return resp, nil
}
