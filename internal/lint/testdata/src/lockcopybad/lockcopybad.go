// Package lockcopybad plants signature-level lock copies: value
// receivers, parameters, and results of types that transitively contain
// sync primitives.
package lockcopybad

import "sync"

// Guarded embeds a mutex directly.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Wrapper contains a lock only transitively, via an array of Guarded.
type Wrapper struct {
	shards [4]Guarded
}

// Incr copies the mutex into the receiver on every call.
func (g Guarded) Incr() { // want lockcopy
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Snapshot copies the lock in through a parameter.
func Snapshot(g Guarded) int { // want lockcopy
	return g.n
}

// Make copies the lock out through the result.
func Make() Wrapper { // want lockcopy
	return Wrapper{}
}

// Use takes a pointer: no copy, no finding.
func Use(g *Guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// ByRef returns a pointer: also clean.
func ByRef() *Wrapper {
	return &Wrapper{}
}
