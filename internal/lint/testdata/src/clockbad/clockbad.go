// Package clockbad plants clock-discipline violations for the golden
// test. Lines carrying a "want" marker must be flagged; everything else
// must stay clean.
package clockbad

import "time"

// Poller polls something on a schedule.
type Poller struct {
	now func() time.Time
}

// New wires the wall clock straight into the struct — the exact leak
// that bypasses an injected clock.Clock.
func New() *Poller {
	return &Poller{now: time.Now} // want clock
}

// Wait sleeps and schedules against the real clock.
func (p *Poller) Wait() {
	time.Sleep(time.Second)   // want clock
	<-time.After(time.Second) // want clock
}

// Age is clean: it reads the injected time source, and time.Duration /
// time.Time mentions are not banned — only the wall-clock functions.
func (p *Poller) Age(t time.Time) time.Duration {
	return p.now().Sub(t)
}
