// Package wgaddbad plants the canonical WaitGroup drain bug: Add called
// inside the goroutine it accounts for, racing Wait.
package wgaddbad

import "sync"

// Drain lets Wait return before any work is tracked.
func Drain(n int, out chan int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func(v int) {
			wg.Add(1) // want wgadd
			defer wg.Done()
			out <- v
		}(i)
	}
	wg.Wait()
}

// Good calls Add before spawning.
func Good(n int, out chan int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			out <- v
		}(i)
	}
	wg.Wait()
}

// Nested declares its own WaitGroup inside the goroutine; Add on that
// one is a separate scope and must not be flagged.
func Nested(out chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var inner sync.WaitGroup
		inner.Add(1)
		go func() {
			defer inner.Done()
			out <- 1
		}()
		inner.Wait()
	}()
	wg.Wait()
}
