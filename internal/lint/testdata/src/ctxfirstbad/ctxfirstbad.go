// Package ctxfirstbad plants context-position violations on exported
// functions and interface methods.
package ctxfirstbad

import "context"

// Misplaced buries the context mid-signature.
func Misplaced(name string, ctx context.Context) error { // want ctxfirst
	return ctx.Err()
}

// Runner is an exported interface with one offending method.
type Runner interface {
	Run(name string, ctx context.Context) error // want ctxfirst
	Stop(ctx context.Context) error
}

// Good is the conventional shape.
func Good(ctx context.Context, name string) error {
	return ctx.Err()
}

// unexported signatures are the author's business.
func unexported(name string, ctx context.Context) error {
	return ctx.Err()
}

var _ = unexported
