// Package ctxbgbad plants fresh-context violations: library code must
// accept the caller's ctx, not mint its own root.
package ctxbgbad

import "context"

// Root mints a root context in library code.
func Root() context.Context {
	return context.Background() // want ctxbg
}

// Todo is no better.
func Todo() context.Context {
	ctx := context.TODO() // want ctxbg
	return ctx
}

// Detach is the sanctioned shape: derive from the caller's context.
func Detach(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}
