// Package ctxflowbad severs context propagation every way ctxflow
// must catch: minting a Background root inline, laundering one
// through a local, and doing it from a capturing literal — alongside
// correct forwarding and the sanctioned WithoutCancel detach.
package ctxflowbad

import "context"

func helper(ctx context.Context) error { return ctx.Err() }

// Sever has ctx in scope but hands the callee a fresh root.
func Sever(ctx context.Context) error {
	return helper(context.Background()) // want ctxbg ctxflow
}

// Derived launders the root through a local definition.
func Derived(ctx context.Context) error {
	bg := context.TODO() // want ctxbg
	return helper(bg)    // want ctxflow
}

// Wrapped roots a derivation chain in Background and forwards it.
func Wrapped(ctx context.Context) error {
	wctx, cancel := context.WithTimeout(context.Background(), 0) // want ctxbg ctxflow
	defer cancel()
	return helper(wctx) // want ctxflow
}

// Captured severs from inside a literal capturing the enclosing ctx.
func Captured(ctx context.Context) func() error {
	return func() error {
		return helper(context.Background()) // want ctxbg ctxflow
	}
}

// Forward is the point of the convention: quiet.
func Forward(ctx context.Context) error {
	return helper(ctx)
}

// Detach is the sanctioned way to outlive the caller: quiet.
func Detach(ctx context.Context) error {
	return helper(context.WithoutCancel(ctx))
}

// NoScope has no ctx in scope; minting a root here is ctxbg's
// business alone.
func NoScope() error {
	return helper(context.Background()) // want ctxbg
}
