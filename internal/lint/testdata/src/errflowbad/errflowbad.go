// Package errflowbad drops errors every way errflow must catch —
// statement calls, go statements, overwrite-before-check — alongside
// the sanctioned shapes (explicit discard, deferred cleanup, proven
// always-nil callees) that must stay silent.
package errflowbad

import "errors"

var errBoom = errors.New("boom")

func commit() error { return errBoom }
func settle() error { return errBoom }

type closer struct{}

func (closer) Close() error { return errBoom }

// Drop loses the commit error on the floor.
func Drop() {
	commit() // want errflow
}

// GoDrop spawns a call whose error has nowhere to go at all.
func GoDrop() {
	go commit() // want errflow
}

// Shadow overwrites the first error before anything reads it.
func Shadow() error {
	err := commit() // want errflow
	err = settle()
	return err
}

// Explicit discard is an audited decision: quiet.
func Explicit() {
	_ = commit()
}

// Deferred cleanup follows the resource idiom: quiet.
func Deferred(c closer) {
	defer c.Close()
}

// Checked reads every error before the next write: quiet.
func Checked() error {
	if err := commit(); err != nil {
		return err
	}
	err := commit()
	if err != nil {
		return err
	}
	err = settle()
	return err
}

// Wrapped reads the pending error on the overwriting line: quiet.
func Wrapped() error {
	err := commit()
	err = errors.Join(err, settle())
	return err
}

// alwaysNil provably cannot fail; it returns error only to satisfy a
// facade signature.
func alwaysNil() error { return nil }

// nilByDelegation bottoms out in alwaysNil.
func nilByDelegation() error { return alwaysNil() }

// FacadeDrop drops a proven-nil error: quiet, interprocedurally.
func FacadeDrop() {
	alwaysNil()
	nilByDelegation()
}
