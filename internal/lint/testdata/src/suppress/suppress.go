// Package suppress exercises the //lint:ignore machinery: same-line and
// line-above suppressions, the wildcard, and the two malformed shapes
// (missing reason, unknown check) that are themselves reported.
package suppress

import "time"

// SameLine suppresses on the offending line itself.
func SameLine() time.Time {
	return time.Now() //lint:ignore clock fixture exercises same-line suppression
}

// LineAbove suppresses from the line directly above.
func LineAbove() {
	//lint:ignore clock fixture exercises line-above suppression
	time.Sleep(time.Nanosecond)
}

// Wildcard silences every check on the next line.
func Wildcard() time.Time {
	//lint:ignore * fixture exercises wildcard suppression
	return time.Now()
}

// MissingReason has no justification, so the directive is reported and
// the finding it meant to silence still fires.
func MissingReason() {
	time.Sleep(time.Nanosecond) /* want clock suppression */ //lint:ignore clock
}

// UnknownCheck names a check that does not exist.
func UnknownCheck() {
	time.Sleep(time.Nanosecond) /* want clock suppression */ //lint:ignore notacheck this name matches nothing
}
