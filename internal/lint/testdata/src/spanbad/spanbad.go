// Package spanbad plants span-hygiene violations. Tracer and Span stand
// in for rai/internal/telemetry: checkSpan matches the starter-name /
// *Span result shape, not the import path, exactly so this fixture can
// type-check without importing the real tracer.
package spanbad

// Span is an in-flight trace node.
type Span struct{}

// End finishes the span.
func (s *Span) End() {}

// Child starts a nested span.
func (s *Span) Child(name string) *Span { return &Span{} }

// Tracer mints root spans.
type Tracer struct{}

// StartRoot begins a trace.
func (t *Tracer) StartRoot(name string) *Span { return &Span{} }

// Leak loses spans three different ways.
func Leak(t *Tracer) {
	t.StartRoot("dropped")     // want span
	sp := t.StartRoot("leaky") // want span
	sp.Child("inner-dropped")  // want span
}

// Underscore discards the span at the assignment.
func Underscore(t *Tracer) {
	_ = t.StartRoot("gone") // want span
}

// Good ends everything it starts.
func Good(t *Tracer) {
	sp := t.StartRoot("ok")
	defer sp.End()
	child := sp.Child("inner")
	child.End()
}

// HandOff transfers the obligation to the caller.
func HandOff(t *Tracer) *Span {
	sp := t.StartRoot("handoff")
	return sp
}
