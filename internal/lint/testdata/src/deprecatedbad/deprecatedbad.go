// Package deprecatedbad plants a call to a deprecated function from
// live code. Deprecated-to-deprecated calls are allowed.
package deprecatedbad

// Submit is the replacement.
func Submit(n int) int { return n }

// SubmitLegacy is the old entry point.
//
// Deprecated: use Submit.
func SubmitLegacy(n int) int { return Submit(n) }

// LegacyHelper is itself deprecated, so its call below is exempt.
//
// Deprecated: gone in v2.
func LegacyHelper() int { return SubmitLegacy(1) }

// Caller is live code reaching for the deprecated name.
func Caller() int {
	return SubmitLegacy(2) // want deprecated
}
