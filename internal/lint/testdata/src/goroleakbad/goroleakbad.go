// Package goroleakbad plants goroutines that can park forever — sends
// with abandoned receivers, receives nobody closes, cancellation-free
// selects, bare waits — next to the shapes that are safe by
// construction and must stay silent.
package goroleakbad

import (
	"context"
	"sync"
)

type server struct {
	jobs   chan int // closed by produce: consumers terminate
	stalls chan int // never closed anywhere
}

type pair struct {
	a chan int
	b chan int
}

// LeakySend races the select: when ctx.Done wins, nobody ever
// receives and the goroutine blocks on the unbuffered send forever.
func LeakySend(ctx context.Context, compute func() int) int {
	result := make(chan int)
	go func() { // want goroleak
		result <- compute()
	}()
	select {
	case v := <-result:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Buffered is the fix: a one-slot buffer lets the sender finish and
// exit whether or not the select takes the result.
func Buffered(ctx context.Context, compute func() int) int {
	result := make(chan int, 1)
	go func() {
		result <- compute()
	}()
	select {
	case v := <-result:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Handshake is drained unconditionally by the spawner: safe.
func Handshake(compute func() int) int {
	done := make(chan int)
	go func() {
		done <- compute()
	}()
	return <-done
}

// LeakyRecv waits on a channel nobody sends to or closes.
func LeakyRecv(s *server) {
	go func() { // want goroleak
		<-s.stalls
	}()
}

// Consume ranges over a channel the producer closes: terminates.
func Consume(s *server) {
	go func() {
		for range s.jobs {
		}
	}()
}

func produce(s *server) {
	s.jobs <- 1
	close(s.jobs)
}

// SelectStuck has no default, Done, timer, or ever-closed case.
func SelectStuck(p *pair) {
	go func() { // want goroleak
		select {
		case <-p.a:
		case <-p.b:
		}
	}()
}

// SelectDone can always leave via cancellation.
func SelectDone(ctx context.Context, p *pair) {
	go func() {
		select {
		case <-p.a:
		case <-ctx.Done():
		}
	}()
}

// WaitLeak parks on a WaitGroup whose Dones are someone else's
// promise.
func WaitLeak(wg *sync.WaitGroup) {
	go func() { // want goroleak
		wg.Wait()
	}()
}

// WaitSignal is the waiter-closer idiom: Wait exists to become a
// close, and the spawner owns the Add/Done balance.
func WaitSignal(wg *sync.WaitGroup) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	return done
}

// Run spawns a named method that blocks two calls down — the
// interprocedural path.
func Run(s *server) {
	go s.loop() // want goroleak
}

func (s *server) loop() { s.step() }

func (s *server) step() {
	s.stalls <- 1
}
