package lint

import "testing"

func TestCallGraphStaticAndSpawnEdges(t *testing.T) {
	prog := loadSrc(t, map[string]map[string]string{
		"m/a": {"a.go": `package a

func F() {
	G()
	go H()
	go func() { G() }()
}

func G() {}
func H() {}
`},
	})
	a := prog.IPA()
	f := nodeByName(t, a, "F")
	if got := calleeNames(f.Calls); !contains(got, "G") {
		t.Errorf("F.Calls = %v, want G among them", got)
	}
	spawns := calleeNames(f.Spawns)
	if !contains(spawns, "H") || !contains(spawns, "F$1") {
		t.Errorf("F.Spawns = %v, want H and F$1", spawns)
	}
	lit := nodeByName(t, a, "F$1")
	if got := calleeNames(lit.Calls); !contains(got, "G") {
		t.Errorf("F$1.Calls = %v, want G", got)
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	prog := loadSrc(t, map[string]map[string]string{
		"m/iface": {"iface.go": `package iface

type Store interface{ Put(string) error }

type mem struct{}

func (m *mem) Put(string) error { return nil }

type disk struct{}

func (d disk) Put(string) error { return nil }

type unrelated struct{}

func (u unrelated) Get(string) error { return nil }

func Use(s Store) { _ = s.Put("x") }
`},
	})
	a := prog.IPA()
	use := nodeByName(t, a, "Use")
	got := calleeNames(use.Calls)
	if !contains(got, "(*mem).Put") || !contains(got, "(*disk).Put") {
		t.Errorf("interface call fan-out = %v, want (*mem).Put and (*disk).Put", got)
	}
	for _, n := range got {
		if n == "(*unrelated).Get" {
			t.Errorf("interface call resolved to non-implementing method: %v", got)
		}
	}
}

// TestSCCOrderBottomUp checks the invariant the summary pass relies
// on: every edge out of SCCs[i] lands in SCCs[j] with j <= i, and a
// mutually recursive pair shares one component.
func TestSCCOrderBottomUp(t *testing.T) {
	prog := loadSrc(t, map[string]map[string]string{
		"m/scc": {"scc.go": `package scc

func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

func Driver() bool { return Even(4) }
`},
	})
	a := prog.IPA()
	comp := map[*CGNode]int{}
	for i, scc := range a.Graph.SCCs {
		for _, n := range scc {
			comp[n] = i
		}
	}
	even := nodeByName(t, a, "Even")
	odd := nodeByName(t, a, "Odd")
	driver := nodeByName(t, a, "Driver")
	if comp[even] != comp[odd] {
		t.Errorf("Even in SCC %d, Odd in SCC %d; mutual recursion should share one", comp[even], comp[odd])
	}
	if comp[driver] <= comp[even] {
		t.Errorf("Driver (SCC %d) should come after its callee Even (SCC %d)", comp[driver], comp[even])
	}
	for i, scc := range a.Graph.SCCs {
		for _, n := range scc {
			for _, e := range n.Calls {
				if j, ok := comp[e.Callee]; ok && j > i {
					t.Errorf("edge %s -> %s goes up the SCC order (%d -> %d)", n.Name, e.Callee.Name, i, j)
				}
			}
		}
	}
}
