package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader turns a directory tree into type-checked packages using
// nothing but the standard library: go/parser for syntax, go/types for
// semantics, and the "source" importer for out-of-module dependencies
// (which, for this repository, means the standard library only).
// In-module packages are resolved against each other so cross-package
// facts — such as which functions are deprecated — hold object identity
// across the whole program.

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path ("rai/internal/core").
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed non-test sources, ordered by file name.
	Files []*ast.File
	// Types and Info carry go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// IsMain reports whether the package is a command ("package main").
func (p *Package) IsMain() bool { return p.Types != nil && p.Types.Name() == "main" }

// Program is a set of packages loaded together, plus program-wide facts
// the checks consult.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	// Deprecated records every function or method whose doc comment
	// carries a "Deprecated:" marker, across all loaded packages.
	Deprecated map[types.Object]bool

	// ipa caches the interprocedural analysis (call graph, summaries,
	// lock graph); built lazily by IPA() and shared by every check.
	ipaOnce sync.Once
	ipa     *Analysis
}

// Loader loads and type-checks packages. The zero value is not usable;
// call NewLoader.
type Loader struct {
	fset    *token.FileSet
	std     types.Importer
	parsed  map[string]*pkgSrc // import path -> parsed-but-unchecked
	checked map[string]*Package
	order   []string // load order of import paths
	tests   bool     // also load _test.go files
}

// IncludeTests makes subsequent loads parse _test.go files as well:
// in-package test files join their package, and external (package
// foo_test) files become their own unit named "<path> [tests]".
// Checks that are not test-appropriate skip test files themselves.
func (l *Loader) IncludeTests() *Loader {
	l.tests = true
	return l
}

type pkgSrc struct {
	dir   string
	files []*ast.File
}

// NewLoader returns an empty loader. The "source" importer serves
// standard-library imports by type-checking their sources under GOROOT,
// so no compiled export data is required.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		parsed:  map[string]*pkgSrc{},
		checked: map[string]*Package{},
	}
}

// LoadTree walks root, parses every non-test package outside testdata
// and hidden directories, and type-checks the lot. modPath is the module
// path that maps root to import paths (root/foo/bar -> modPath/foo/bar).
func (l *Loader) LoadTree(root, modPath string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := map[string]bool{}
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, walkErr error) error {
		if walkErr != nil {
			return walkErr
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && p != root) || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && (l.tests || !strings.HasSuffix(p, "_test.go")) {
			dir := filepath.Dir(p)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		if err := l.parseDir(dir, ip); err != nil {
			return nil, err
		}
	}
	return l.check()
}

// LoadDirs parses and checks an explicit set of directories, naming each
// package with the given import paths (parallel slices). Used by the
// golden-file tests to load testdata packages the tree walk skips.
func (l *Loader) LoadDirs(dirs, importPaths []string) (*Program, error) {
	for i, dir := range dirs {
		if err := l.parseDir(dir, importPaths[i]); err != nil {
			return nil, err
		}
	}
	return l.check()
}

func (l *Loader) parseDir(dir, importPath string) error {
	if _, ok := l.parsed[importPath]; ok {
		return nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	src := &pkgSrc{dir: dir}
	var extern []*ast.File // external test package (package foo_test)
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !l.tests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, name), err)
		}
		if isTest && strings.HasSuffix(f.Name.Name, "_test") {
			extern = append(extern, f)
			continue
		}
		src.files = append(src.files, f)
	}
	if len(src.files) > 0 {
		l.parsed[importPath] = src
		l.order = append(l.order, importPath)
	}
	if len(extern) > 0 {
		// The external unit is ordered after its base package so the
		// base is checked (and importable) first.
		tp := importPath + " [tests]"
		l.parsed[tp] = &pkgSrc{dir: dir, files: extern}
		l.order = append(l.order, tp)
	}
	return nil
}

// check type-checks every parsed package (in dependency order, driven by
// the importer callback) and assembles the Program.
func (l *Loader) check() (*Program, error) {
	for _, ip := range l.order {
		if _, err := l.importPath(ip); err != nil {
			return nil, err
		}
	}
	prog := &Program{Fset: l.fset, Deprecated: map[types.Object]bool{}}
	for _, ip := range l.order {
		p := l.checked[ip]
		prog.Packages = append(prog.Packages, p)
		collectDeprecated(p, prog.Deprecated)
	}
	return prog, nil
}

// importPath resolves one import: in-module packages are checked from
// source (recursively, via this same function), everything else is
// delegated to the standard-library source importer.
func (l *Loader) importPath(path string) (*types.Package, error) {
	if p, ok := l.checked[path]; ok {
		return p.Types, nil
	}
	src, ok := l.parsed[path]
	if !ok {
		return l.std.Import(path)
	}
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importerFunc(l.importPath)}
	tpkg, err := conf.Check(path, l.fset, src.files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	l.checked[path] = &Package{Path: path, Dir: src.dir, Files: src.files, Types: tpkg, Info: info}
	return tpkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// collectDeprecated records the objects of functions and methods whose
// doc comment carries a deprecation marker: per godoc convention, a
// paragraph line beginning "Deprecated:". (Requiring line-start keeps a
// doc comment that merely mentions the marker from being treated as
// deprecated itself.)
func collectDeprecated(p *Package, out map[types.Object]bool) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || !hasDeprecatedMarker(fd.Doc.Text()) {
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				out[obj] = true
			}
		}
	}
}

func hasDeprecatedMarker(doc string) bool {
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

// ModuleRoot walks upward from dir to the enclosing go.mod and returns
// the directory and the module path declared there.
func ModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
