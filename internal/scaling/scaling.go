// Package scaling models the worker-fleet provisioning story of the
// paper's §VII "Resource Usage": cheaper G2 (K40) instances early in the
// project, a transition to P2 (K80) instances as students move to GPU
// kernels, growth to 10 multi-job instances for interactive response,
// and finally 20–30 single-job instances during the benchmarking weeks.
// It provides the instance catalog, a fleet with per-slot scheduling and
// billing, and fixed/elastic provisioning policies, so the reproduction
// can measure queue delay and dollar cost under the deadline burst.
package scaling

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// InstanceType is an AWS-like worker machine class.
type InstanceType struct {
	Name string
	GPU  string
	// HourlyUSD is the on-demand price (2016-era list prices).
	HourlyUSD float64
	// BootDelay is launch-to-ready time.
	BootDelay time.Duration
}

// The two instance classes the course used (§VII).
var (
	G2 = InstanceType{Name: "g2.2xlarge", GPU: "K40", HourlyUSD: 0.65, BootDelay: 4 * time.Minute}
	P2 = InstanceType{Name: "p2.xlarge", GPU: "K80", HourlyUSD: 0.90, BootDelay: 4 * time.Minute}
)

// ErrNoCapacity indicates an assignment was requested from an empty fleet.
var ErrNoCapacity = errors.New("scaling: fleet has no instances")

// Instance is one provisioned worker machine.
type Instance struct {
	ID         int
	Type       InstanceType
	LaunchedAt time.Time
	ReadyAt    time.Time
	Terminated time.Time // zero while active
	// slotFree[i] is when slot i next becomes available. Multiple slots
	// model the multi-job worker mode; one slot is the single-job mode
	// used for accurate benchmarking (§V, §VII).
	slotFree []time.Time
}

// active reports whether the instance is running at t.
func (in *Instance) active(t time.Time) bool {
	return !t.Before(in.LaunchedAt) && (in.Terminated.IsZero() || t.Before(in.Terminated))
}

// Fleet is a set of instances with FIFO job assignment and billing.
type Fleet struct {
	nextID    int
	instances []*Instance
	// SlotsPerInstance is the worker concurrency (jobs in flight).
	SlotsPerInstance int
}

// NewFleet returns an empty fleet with the given worker concurrency.
func NewFleet(slotsPerInstance int) *Fleet {
	if slotsPerInstance < 1 {
		slotsPerInstance = 1
	}
	return &Fleet{SlotsPerInstance: slotsPerInstance}
}

// Launch starts n instances of typ at now; they become ready after the
// boot delay.
func (f *Fleet) Launch(n int, typ InstanceType, now time.Time) {
	for i := 0; i < n; i++ {
		f.nextID++
		ready := now.Add(typ.BootDelay)
		slots := make([]time.Time, f.SlotsPerInstance)
		for j := range slots {
			slots[j] = ready
		}
		f.instances = append(f.instances, &Instance{
			ID: f.nextID, Type: typ, LaunchedAt: now, ReadyAt: ready, slotFree: slots,
		})
	}
}

// Terminate stops up to n instances at now, preferring the ones whose
// slots free earliest (least disruption). It returns how many stopped.
func (f *Fleet) Terminate(n int, now time.Time) int {
	act := f.activeInstances(now)
	sort.Slice(act, func(i, j int) bool {
		return act[i].lastFree().Before(act[j].lastFree())
	})
	stopped := 0
	for _, in := range act {
		if stopped >= n {
			break
		}
		// Never kill an instance mid-job: it terminates when its last
		// slot drains (AWS-style graceful drain).
		end := in.lastFree()
		if end.Before(now) {
			end = now
		}
		in.Terminated = end
		stopped++
	}
	return stopped
}

func (in *Instance) lastFree() time.Time {
	last := in.slotFree[0]
	for _, t := range in.slotFree[1:] {
		if t.After(last) {
			last = t
		}
	}
	return last
}

func (f *Fleet) activeInstances(t time.Time) []*Instance {
	var out []*Instance
	for _, in := range f.instances {
		if in.active(t) {
			out = append(out, in)
		}
	}
	return out
}

// ActiveCount reports instances running at t.
func (f *Fleet) ActiveCount(t time.Time) int { return len(f.activeInstances(t)) }

// Assign schedules a job arriving at arrival with the given service
// duration onto the earliest-available slot (FIFO). It returns the job
// start time; wait = start - arrival.
func (f *Fleet) Assign(arrival time.Time, service time.Duration) (time.Time, error) {
	var best *Instance
	bestSlot := -1
	var bestStart time.Time
	for _, in := range f.instances {
		if !in.Terminated.IsZero() && !arrival.Before(in.Terminated) {
			continue
		}
		for si, free := range in.slotFree {
			start := arrival
			if free.After(start) {
				start = free
			}
			// A terminating instance cannot take work past its drain.
			if !in.Terminated.IsZero() && start.Add(service).After(in.Terminated) {
				continue
			}
			if best == nil || start.Before(bestStart) {
				best, bestSlot, bestStart = in, si, start
			}
		}
	}
	if best == nil {
		return time.Time{}, ErrNoCapacity
	}
	best.slotFree[bestSlot] = bestStart.Add(service)
	return bestStart, nil
}

// OutstandingWork totals busy time scheduled beyond now across all
// slots — the backlog signal provisioning policies consume.
func (f *Fleet) OutstandingWork(now time.Time) time.Duration {
	var total time.Duration
	for _, in := range f.instances {
		for _, free := range in.slotFree {
			if free.After(now) {
				total += free.Sub(now)
			}
		}
	}
	return total
}

// CostUSD bills every instance for its active lifespan through end,
// rounded up to whole hours (AWS 2016 billing granularity).
func (f *Fleet) CostUSD(end time.Time) float64 {
	var total float64
	for _, in := range f.instances {
		stop := end
		if !in.Terminated.IsZero() && in.Terminated.Before(end) {
			stop = in.Terminated
		}
		if stop.Before(in.LaunchedAt) {
			continue
		}
		hours := math.Ceil(stop.Sub(in.LaunchedAt).Hours())
		if hours < 1 {
			hours = 1
		}
		total += hours * in.Type.HourlyUSD
	}
	return total
}

// InstanceHours totals active hours through end.
func (f *Fleet) InstanceHours(end time.Time) float64 {
	var total float64
	for _, in := range f.instances {
		stop := end
		if !in.Terminated.IsZero() && in.Terminated.Before(end) {
			stop = in.Terminated
		}
		if stop.After(in.LaunchedAt) {
			total += stop.Sub(in.LaunchedAt).Hours()
		}
	}
	return total
}

// PolicyInput is the telemetry a provisioning policy sees at a decision
// point (the broker's queue depth is the key signal, §IV).
type PolicyInput struct {
	Now time.Time
	// QueueDepth is jobs waiting for a slot.
	QueueDepth int
	// Active is the current instance count.
	Active int
	// RecentArrivalsPerHour is the arrival rate over the last window.
	RecentArrivalsPerHour float64
	// AvgServiceSeconds is the recent mean job service time.
	AvgServiceSeconds float64
}

// Policy decides the desired fleet size.
type Policy interface {
	Desired(in PolicyInput) int
	Name() string
}

// FixedPolicy is the local-cluster baseline: capacity never changes
// (§III "the fixed resources of the local cluster can become
// oversubscribed during the final weeks").
type FixedPolicy struct{ N int }

// Desired implements Policy.
func (p FixedPolicy) Desired(PolicyInput) int { return p.N }

// Name implements Policy.
func (p FixedPolicy) Name() string { return fmt.Sprintf("fixed-%d", p.N) }

// ElasticPolicy sizes the fleet to the offered load with headroom,
// within [Min, Max] — RAI's cost-efficient elasticity (§VII: "students
// worked in bursts, which required RAI to be elastic to remain reliable
// and cost-efficient").
type ElasticPolicy struct {
	Min, Max int
	// SlotsPerInstance mirrors the fleet's concurrency.
	SlotsPerInstance int
	// Headroom multiplies the load-derived size (default 1.5).
	Headroom float64
}

// Desired implements Policy: size ≈ offered load (Erlangs) × headroom,
// plus an immediate reaction to standing backlog.
func (p ElasticPolicy) Desired(in PolicyInput) int {
	headroom := p.Headroom
	if headroom <= 0 {
		headroom = 1.5
	}
	slots := p.SlotsPerInstance
	if slots < 1 {
		slots = 1
	}
	offered := in.RecentArrivalsPerHour * in.AvgServiceSeconds / 3600 // busy slots needed
	fromLoad := int(math.Ceil(offered * headroom / float64(slots)))
	fromBacklog := int(math.Ceil(float64(in.QueueDepth) / float64(slots*4)))
	desired := fromLoad + fromBacklog
	if desired < p.Min {
		desired = p.Min
	}
	if desired > p.Max {
		desired = p.Max
	}
	return desired
}

// Name implements Policy.
func (p ElasticPolicy) Name() string { return fmt.Sprintf("elastic-%d..%d", p.Min, p.Max) }
