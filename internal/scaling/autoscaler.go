package scaling

import (
	"errors"
	"sync"
	"time"

	"rai/internal/clock"
)

// Autoscaler closes the elasticity loop the paper's deployment ran by
// hand ("we provisioned 20 to 30 AWS P2 instances", §VII): it samples
// queue telemetry on an interval, asks the Policy for a desired size,
// and actuates the difference. The telemetry source is typically the
// broker's depth on rai/tasks (brokerd's STATS op); the actuator is
// whatever launches workers — EC2 in the paper, goroutines or a Fleet in
// the reproduction.
type Autoscaler struct {
	// Policy decides the desired worker count.
	Policy Policy
	// Source samples current telemetry.
	Source func() (PolicyInput, error)
	// ScaleUp and ScaleDown actuate a size change by n > 0 instances.
	ScaleUp   func(n int) error
	ScaleDown func(n int) error
	// Interval between decisions (default 1 minute).
	Interval time.Duration
	// Cooldown suppresses scale-downs for this long after any scale-up,
	// damping flapping under bursty arrivals (default 5 minutes).
	Cooldown time.Duration
	// Clock is the time source (virtual in tests).
	Clock clock.Clock

	mu          sync.Mutex
	current     int
	lastScaleUp time.Time
	decisions   int
	stopped     chan struct{}
	stopOnce    sync.Once
}

// ErrNoSource is returned by Run when the autoscaler is misconfigured.
var ErrNoSource = errors.New("scaling: autoscaler needs Policy, Source, ScaleUp, ScaleDown")

// Current reports the autoscaler's view of the fleet size.
func (a *Autoscaler) Current() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.current
}

// Decisions reports how many decision rounds have run.
func (a *Autoscaler) Decisions() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.decisions
}

// SetCurrent seeds the known fleet size (e.g. pre-provisioned workers).
func (a *Autoscaler) SetCurrent(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.current = n
}

// Step runs one decision round immediately; it reports the delta applied
// (positive = launched, negative = terminated).
func (a *Autoscaler) Step() (int, error) {
	if a.Policy == nil || a.Source == nil || a.ScaleUp == nil || a.ScaleDown == nil {
		return 0, ErrNoSource
	}
	clk := a.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	in, err := a.Source()
	if err != nil {
		// A telemetry blip must not kill the loop or thrash the fleet.
		a.mu.Lock()
		a.decisions++
		a.mu.Unlock()
		return 0, nil
	}
	in.Now = clk.Now()
	a.mu.Lock()
	in.Active = a.current
	cooldown := a.Cooldown
	if cooldown <= 0 {
		cooldown = 5 * time.Minute
	}
	inCooldown := !a.lastScaleUp.IsZero() && in.Now.Sub(a.lastScaleUp) < cooldown
	a.mu.Unlock()

	desired := a.Policy.Desired(in)
	delta := desired - in.Active
	switch {
	case delta > 0:
		if err := a.ScaleUp(delta); err != nil {
			return 0, err
		}
		a.mu.Lock()
		a.current += delta
		a.lastScaleUp = in.Now
		a.decisions++
		a.mu.Unlock()
		return delta, nil
	case delta < 0 && !inCooldown:
		if err := a.ScaleDown(-delta); err != nil {
			return 0, err
		}
		a.mu.Lock()
		a.current += delta
		a.decisions++
		a.mu.Unlock()
		return delta, nil
	default:
		a.mu.Lock()
		a.decisions++
		a.mu.Unlock()
		return 0, nil
	}
}

// Run executes decision rounds on the interval until Stop.
func (a *Autoscaler) Run() error {
	if a.Policy == nil || a.Source == nil || a.ScaleUp == nil || a.ScaleDown == nil {
		return ErrNoSource
	}
	clk := a.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	interval := a.Interval
	if interval <= 0 {
		interval = time.Minute
	}
	a.mu.Lock()
	if a.stopped == nil {
		a.stopped = make(chan struct{})
	}
	stopped := a.stopped
	a.mu.Unlock()
	for {
		select {
		case <-stopped:
			return nil
		case <-clk.After(interval):
			if _, err := a.Step(); err != nil && !errors.Is(err, ErrNoSource) {
				// Actuation failures are retried next round.
				continue
			}
		}
	}
}

// Stop ends Run (idempotent).
func (a *Autoscaler) Stop() {
	a.mu.Lock()
	if a.stopped == nil {
		a.stopped = make(chan struct{})
	}
	a.mu.Unlock()
	a.stopOnce.Do(func() { close(a.stopped) })
}
