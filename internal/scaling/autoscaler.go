package scaling

import (
	"errors"
	"sync"
	"time"

	"rai/internal/clock"
	"rai/internal/telemetry"
)

// Autoscaler closes the elasticity loop the paper's deployment ran by
// hand ("we provisioned 20 to 30 AWS P2 instances", §VII): it samples
// queue telemetry on an interval, asks the Policy for a desired size,
// and actuates the difference. The telemetry source is typically
// MetricsSource over the shared registry (broker queue depth, worker
// service times); the actuator is whatever launches workers — EC2 in
// the paper, goroutines or a Fleet in the reproduction.
type Autoscaler struct {
	// Policy decides the desired worker count.
	Policy Policy
	// Source samples current telemetry.
	Source func() (PolicyInput, error)
	// ScaleUp and ScaleDown actuate a size change by n > 0 instances.
	ScaleUp   func(n int) error
	ScaleDown func(n int) error
	// Interval between decisions (default 1 minute).
	Interval time.Duration
	// Cooldown suppresses scale-downs for this long after any scale-up,
	// damping flapping under bursty arrivals (default 5 minutes).
	Cooldown time.Duration
	// Clock is the time source (virtual in tests).
	Clock clock.Clock
	// Telemetry receives the autoscaler's own instruments
	// (rai_autoscaler_workers, rai_autoscaler_desired_workers,
	// rai_autoscaler_decisions_total, rai_autoscaler_scale_events_total).
	// Set it before the first Step/Run/accessor call; when nil, a
	// private registry backs the instruments so the exported accessors
	// keep working — the gauges ARE the bookkeeping, not a copy of it.
	Telemetry *telemetry.Registry

	mu          sync.Mutex
	tel         *autoscalerTelemetry
	lastScaleUp time.Time
	stopped     chan struct{}
	stopOnce    sync.Once
}

// autoscalerTelemetry holds the instruments that replace the former
// current/decisions integer fields.
type autoscalerTelemetry struct {
	workers   *telemetry.Gauge
	desired   *telemetry.Gauge
	decisions *telemetry.Counter
	events    map[string]*telemetry.Counter // direction -> actuations
}

// ErrNoSource is returned by Run when the autoscaler is misconfigured.
var ErrNoSource = errors.New("scaling: autoscaler needs Policy, Source, ScaleUp, ScaleDown")

func (a *Autoscaler) instruments() *autoscalerTelemetry {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tel == nil {
		reg := a.Telemetry
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		a.tel = &autoscalerTelemetry{
			workers:   reg.Gauge("rai_autoscaler_workers", "worker instances the autoscaler believes are running"),
			desired:   reg.Gauge("rai_autoscaler_desired_workers", "fleet size the policy last requested"),
			decisions: reg.Counter("rai_autoscaler_decisions_total", "decision rounds run (including telemetry blips)"),
			events: map[string]*telemetry.Counter{
				"up":   reg.Counter("rai_autoscaler_scale_events_total", "actuated fleet-size changes by direction", telemetry.L("direction", "up")),
				"down": reg.Counter("rai_autoscaler_scale_events_total", "actuated fleet-size changes by direction", telemetry.L("direction", "down")),
			},
		}
	}
	return a.tel
}

// Current reports the autoscaler's view of the fleet size (the
// rai_autoscaler_workers gauge).
func (a *Autoscaler) Current() int {
	return int(a.instruments().workers.Value())
}

// Decisions reports how many decision rounds have run (the
// rai_autoscaler_decisions_total counter).
func (a *Autoscaler) Decisions() int {
	return int(a.instruments().decisions.Value())
}

// SetCurrent seeds the known fleet size (e.g. pre-provisioned workers).
func (a *Autoscaler) SetCurrent(n int) {
	a.instruments().workers.Set(float64(n))
}

// Step runs one decision round immediately; it reports the delta applied
// (positive = launched, negative = terminated).
func (a *Autoscaler) Step() (int, error) {
	if a.Policy == nil || a.Source == nil || a.ScaleUp == nil || a.ScaleDown == nil {
		return 0, ErrNoSource
	}
	clk := a.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	tel := a.instruments()
	in, err := a.Source()
	if err != nil {
		// A telemetry blip must not kill the loop or thrash the fleet.
		tel.decisions.Inc()
		return 0, nil
	}
	in.Now = clk.Now()
	in.Active = int(tel.workers.Value())
	a.mu.Lock()
	cooldown := a.Cooldown
	if cooldown <= 0 {
		cooldown = 5 * time.Minute
	}
	inCooldown := !a.lastScaleUp.IsZero() && in.Now.Sub(a.lastScaleUp) < cooldown
	a.mu.Unlock()

	desired := a.Policy.Desired(in)
	tel.desired.Set(float64(desired))
	delta := desired - in.Active
	switch {
	case delta > 0:
		if err := a.ScaleUp(delta); err != nil {
			return 0, err
		}
		tel.workers.Add(float64(delta))
		tel.events["up"].Inc()
		tel.decisions.Inc()
		a.mu.Lock()
		a.lastScaleUp = in.Now
		a.mu.Unlock()
		return delta, nil
	case delta < 0 && !inCooldown:
		if err := a.ScaleDown(-delta); err != nil {
			return 0, err
		}
		tel.workers.Add(float64(delta))
		tel.events["down"].Inc()
		tel.decisions.Inc()
		return delta, nil
	default:
		tel.decisions.Inc()
		return 0, nil
	}
}

// Run executes decision rounds on the interval until Stop.
func (a *Autoscaler) Run() error {
	if a.Policy == nil || a.Source == nil || a.ScaleUp == nil || a.ScaleDown == nil {
		return ErrNoSource
	}
	clk := a.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	interval := a.Interval
	if interval <= 0 {
		interval = time.Minute
	}
	a.mu.Lock()
	if a.stopped == nil {
		a.stopped = make(chan struct{})
	}
	stopped := a.stopped
	a.mu.Unlock()
	for {
		select {
		case <-stopped:
			return nil
		case <-clk.After(interval):
			if _, err := a.Step(); err != nil && !errors.Is(err, ErrNoSource) {
				// Actuation failures are retried next round.
				continue
			}
		}
	}
}

// Stop ends Run (idempotent).
func (a *Autoscaler) Stop() {
	a.mu.Lock()
	if a.stopped == nil {
		a.stopped = make(chan struct{})
	}
	a.mu.Unlock()
	a.stopOnce.Do(func() { close(a.stopped) })
}
