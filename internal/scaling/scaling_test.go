package scaling

import (
	"errors"
	"testing"
	"time"
)

var t0 = time.Date(2016, 12, 9, 0, 0, 0, 0, time.UTC)

func TestLaunchBootDelay(t *testing.T) {
	f := NewFleet(1)
	f.Launch(2, P2, t0)
	if got := f.ActiveCount(t0); got != 2 {
		t.Fatalf("active = %d", got)
	}
	// A job arriving immediately waits for boot.
	start, err := f.Assign(t0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !start.Equal(t0.Add(P2.BootDelay)) {
		t.Errorf("start = %v, want after boot delay", start)
	}
}

func TestAssignFIFOAcrossSlots(t *testing.T) {
	f := NewFleet(1)
	f.Launch(2, P2, t0.Add(-time.Hour)) // long booted
	s1, _ := f.Assign(t0, time.Minute)
	s2, _ := f.Assign(t0, time.Minute)
	s3, _ := f.Assign(t0, time.Minute)
	if !s1.Equal(t0) || !s2.Equal(t0) {
		t.Fatalf("first two should start immediately: %v %v", s1, s2)
	}
	if !s3.Equal(t0.Add(time.Minute)) {
		t.Fatalf("third start = %v, want queued behind a slot", s3)
	}
}

func TestMultiSlotInstance(t *testing.T) {
	f := NewFleet(4)
	f.Launch(1, P2, t0.Add(-time.Hour))
	for i := 0; i < 4; i++ {
		s, err := f.Assign(t0, time.Minute)
		if err != nil || !s.Equal(t0) {
			t.Fatalf("slot %d start = %v, %v", i, s, err)
		}
	}
	s, _ := f.Assign(t0, time.Minute)
	if !s.Equal(t0.Add(time.Minute)) {
		t.Fatalf("fifth job start = %v", s)
	}
}

func TestAssignEmptyFleet(t *testing.T) {
	f := NewFleet(1)
	if _, err := f.Assign(t0, time.Second); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v", err)
	}
}

func TestTerminateDrainsGracefully(t *testing.T) {
	f := NewFleet(1)
	f.Launch(2, P2, t0.Add(-time.Hour))
	// Occupy one instance until t0+10m.
	f.Assign(t0, 10*time.Minute)
	stopped := f.Terminate(2, t0)
	if stopped != 2 {
		t.Fatalf("stopped = %d", stopped)
	}
	// The busy instance drains at t0+10m; the idle one stops now.
	if got := f.ActiveCount(t0.Add(5 * time.Minute)); got != 1 {
		t.Errorf("active at +5m = %d, want 1 (draining)", got)
	}
	if got := f.ActiveCount(t0.Add(11 * time.Minute)); got != 0 {
		t.Errorf("active at +11m = %d, want 0", got)
	}
	// No new work lands on terminated instances.
	if _, err := f.Assign(t0.Add(20*time.Minute), time.Second); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("assign after drain: %v", err)
	}
}

func TestTerminatingInstanceRejectsWorkPastDrain(t *testing.T) {
	f := NewFleet(1)
	f.Launch(1, P2, t0.Add(-time.Hour))
	f.Assign(t0, 10*time.Minute) // drains at +10m
	f.Terminate(1, t0)
	// A 5-minute job arriving at +1m would finish at +15m > drain: refused.
	if _, err := f.Assign(t0.Add(time.Minute), 5*time.Minute); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("assign past drain: %v", err)
	}
}

func TestOutstandingWork(t *testing.T) {
	f := NewFleet(1)
	f.Launch(1, P2, t0.Add(-time.Hour))
	f.Assign(t0, 10*time.Minute)
	if got := f.OutstandingWork(t0); got != 10*time.Minute {
		t.Errorf("outstanding = %v", got)
	}
	if got := f.OutstandingWork(t0.Add(4 * time.Minute)); got != 6*time.Minute {
		t.Errorf("outstanding at +4m = %v", got)
	}
	if got := f.OutstandingWork(t0.Add(time.Hour)); got != 0 {
		t.Errorf("outstanding after drain = %v", got)
	}
}

func TestCostBillsWholeHours(t *testing.T) {
	f := NewFleet(1)
	f.Launch(1, P2, t0)
	// 90 minutes active → 2 billed hours.
	if got := f.CostUSD(t0.Add(90 * time.Minute)); got != 2*P2.HourlyUSD {
		t.Errorf("cost = %v, want %v", got, 2*P2.HourlyUSD)
	}
	// Terminated instances stop accruing.
	f.Terminate(1, t0.Add(30*time.Minute))
	if got := f.CostUSD(t0.Add(10 * time.Hour)); got != 1*P2.HourlyUSD {
		t.Errorf("post-terminate cost = %v", got)
	}
}

func TestInstanceHours(t *testing.T) {
	f := NewFleet(1)
	f.Launch(2, G2, t0)
	got := f.InstanceHours(t0.Add(90 * time.Minute))
	if got != 3.0 {
		t.Errorf("instance hours = %v, want 3.0", got)
	}
}

func TestG2CheaperThanP2(t *testing.T) {
	// §VII: "These instances are cheaper than instances with more
	// powerful GPU resources."
	if G2.HourlyUSD >= P2.HourlyUSD {
		t.Errorf("G2 $%v not cheaper than P2 $%v", G2.HourlyUSD, P2.HourlyUSD)
	}
	if G2.GPU != "K40" || P2.GPU != "K80" {
		t.Errorf("GPU models: %s/%s", G2.GPU, P2.GPU)
	}
}

func TestFixedPolicy(t *testing.T) {
	p := FixedPolicy{N: 7}
	if p.Desired(PolicyInput{QueueDepth: 1000}) != 7 {
		t.Error("fixed policy moved")
	}
	if p.Name() != "fixed-7" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestElasticPolicyScalesWithLoad(t *testing.T) {
	p := ElasticPolicy{Min: 2, Max: 30, SlotsPerInstance: 1}
	idle := p.Desired(PolicyInput{RecentArrivalsPerHour: 0, AvgServiceSeconds: 30})
	if idle != 2 {
		t.Errorf("idle desired = %d, want Min", idle)
	}
	// 600 jobs/hour at 60 s each = 10 Erlangs → ~15 with headroom.
	busy := p.Desired(PolicyInput{RecentArrivalsPerHour: 600, AvgServiceSeconds: 60})
	if busy < 10 || busy > 30 {
		t.Errorf("busy desired = %d", busy)
	}
	// Saturating load clamps at Max.
	insane := p.Desired(PolicyInput{RecentArrivalsPerHour: 100000, AvgServiceSeconds: 60})
	if insane != 30 {
		t.Errorf("clamped desired = %d", insane)
	}
	// Standing backlog forces extra capacity even with zero arrivals.
	backlog := p.Desired(PolicyInput{QueueDepth: 100, AvgServiceSeconds: 30})
	if backlog <= 2 {
		t.Errorf("backlog desired = %d", backlog)
	}
	if p.Name() != "elastic-2..30" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestElasticPolicyMultiSlot(t *testing.T) {
	single := ElasticPolicy{Min: 1, Max: 30, SlotsPerInstance: 1}
	quad := ElasticPolicy{Min: 1, Max: 30, SlotsPerInstance: 4}
	in := PolicyInput{RecentArrivalsPerHour: 600, AvgServiceSeconds: 60}
	if quad.Desired(in) >= single.Desired(in) {
		t.Errorf("multi-slot workers should need fewer instances: %d vs %d",
			quad.Desired(in), single.Desired(in))
	}
}
