package scaling

import (
	"testing"
	"time"

	"rai/internal/broker"
	"rai/internal/clock"
	"rai/internal/telemetry"
)

// TestMetricsSourceFromBrokerTelemetry drives a real broker plus
// worker-histogram observations and asserts MetricsSource recovers the
// queue depth, arrival rate, and service time from the registry alone.
func TestMetricsSourceFromBrokerTelemetry(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2016, 12, 9, 0, 0, 0, 0, time.UTC))
	reg := telemetry.NewRegistry()
	b := broker.New(broker.WithClock(vc), broker.WithTelemetry(reg))
	defer b.Close()
	b.ExportQueueDepth("rai", "tasks")

	src := MetricsSource(reg, "rai", "tasks", vc)
	in, err := src() // baseline sample: no window yet
	if err != nil {
		t.Fatal(err)
	}
	if in.QueueDepth != 0 || in.RecentArrivalsPerHour != 0 {
		t.Fatalf("baseline sample = %+v, want zeros", in)
	}

	// Ten submissions arrive in one minute; two jobs finish at 60s each.
	for i := 0; i < 10; i++ {
		if _, err := b.Publish("rai", []byte("job")); err != nil {
			t.Fatal(err)
		}
	}
	jobSecs := reg.Histogram("rai_worker_job_seconds", "wall time per completed job", telemetry.QueueDelayBuckets)
	jobSecs.Observe(60)
	jobSecs.Observe(60)
	vc.Advance(time.Minute)

	in, err = src()
	if err != nil {
		t.Fatal(err)
	}
	if in.QueueDepth != 10 {
		t.Errorf("queue depth = %d, want 10 (topic backlog)", in.QueueDepth)
	}
	if in.RecentArrivalsPerHour < 599 || in.RecentArrivalsPerHour > 601 {
		t.Errorf("arrival rate = %v/h, want ~600", in.RecentArrivalsPerHour)
	}
	if in.AvgServiceSeconds != 60 {
		t.Errorf("avg service = %vs, want 60", in.AvgServiceSeconds)
	}

	// An elastic autoscaler fed by the source scales up; its own
	// bookkeeping lands in the same registry.
	fleet := 0
	a := &Autoscaler{
		Policy:    ElasticPolicy{Min: 2, Max: 30, SlotsPerInstance: 1},
		Source:    src,
		Clock:     vc,
		Telemetry: reg,
		ScaleUp:   func(n int) error { fleet += n; return nil },
		ScaleDown: func(n int) error { fleet -= n; return nil },
	}
	vc.Advance(time.Minute)
	delta, err := a.Step()
	if err != nil || delta <= 0 {
		t.Fatalf("step: delta=%d err=%v", delta, err)
	}
	if fleet != a.Current() {
		t.Errorf("fleet = %d, Current() = %d", fleet, a.Current())
	}
	if v, _ := reg.Value("rai_autoscaler_workers"); int(v) != fleet {
		t.Errorf("rai_autoscaler_workers = %v, want %d", v, fleet)
	}
	if v, _ := reg.Value("rai_autoscaler_scale_events_total", telemetry.L("direction", "up")); v != 1 {
		t.Errorf("scale-up events = %v, want 1", v)
	}
	if v, _ := reg.Value("rai_autoscaler_decisions_total"); int(v) != a.Decisions() {
		t.Errorf("decisions counter = %v, accessor = %d", v, a.Decisions())
	}
	if v, _ := reg.Value("rai_autoscaler_desired_workers"); int(v) != a.Current() {
		t.Errorf("desired gauge = %v, want %d after convergence", v, a.Current())
	}
}

// TestMetricsSourceMissingDepthGauge: without ExportQueueDepth the
// source errors, and the autoscaler treats the round as a blip (no
// fleet movement).
func TestMetricsSourceMissingDepthGauge(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2016, 12, 9, 0, 0, 0, 0, time.UTC))
	reg := telemetry.NewRegistry()
	src := MetricsSource(reg, "rai", "tasks", vc)
	if _, err := src(); err == nil {
		t.Fatal("want error when rai_broker_queue_depth is not exported")
	}
	fleet := 5
	a := &Autoscaler{
		Policy:    FixedPolicy{N: 1},
		Source:    src,
		Clock:     vc,
		Telemetry: reg,
		ScaleUp:   func(n int) error { fleet += n; return nil },
		ScaleDown: func(n int) error { fleet -= n; return nil },
	}
	a.SetCurrent(5)
	if delta, err := a.Step(); err != nil || delta != 0 {
		t.Fatalf("blip step: delta=%d err=%v", delta, err)
	}
	if fleet != 5 {
		t.Fatalf("fleet moved on telemetry failure: %d", fleet)
	}
	if a.Decisions() != 1 {
		t.Fatalf("decisions = %d, want 1", a.Decisions())
	}
	if _, ok := reg.Value("rai_autoscaler_workers"); !ok {
		t.Fatal("autoscaler gauges not registered in shared registry")
	}
}
