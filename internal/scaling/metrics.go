package scaling

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rai/internal/clock"
	"rai/internal/telemetry"
)

// MetricsSource derives the autoscaler's PolicyInput from the shared
// telemetry registry instead of bespoke counters threaded through the
// call graph:
//
//   - QueueDepth comes from rai_broker_queue_depth{topic,channel}; the
//     broker must export it (Broker.ExportQueueDepth), otherwise every
//     sample fails and the autoscaler treats the round as a blip.
//   - RecentArrivalsPerHour is the rate of
//     rai_broker_publish_total{topic} between consecutive samples.
//   - AvgServiceSeconds is the mean of the rai_worker_job_seconds
//     histogram over the same window, falling back to the lifetime mean
//     when no job finished since the previous sample.
//
// Active and Now are stamped by Autoscaler.Step, so the source leaves
// them zero. The returned func keeps the previous sample as closure
// state and is safe for concurrent use.
func MetricsSource(reg *telemetry.Registry, topic, channel string, clk clock.Clock) func() (PolicyInput, error) {
	if clk == nil {
		clk = clock.Real{}
	}
	var mu sync.Mutex
	var lastAt time.Time
	var lastPub, lastSum float64
	var lastCount uint64
	return func() (PolicyInput, error) {
		if reg == nil {
			return PolicyInput{}, errors.New("scaling: MetricsSource needs a telemetry registry")
		}
		depth, ok := reg.Value("rai_broker_queue_depth",
			telemetry.L("topic", topic), telemetry.L("channel", channel))
		if !ok {
			return PolicyInput{}, fmt.Errorf(
				"scaling: rai_broker_queue_depth{topic=%q,channel=%q} not exported (call Broker.ExportQueueDepth)",
				topic, channel)
		}
		in := PolicyInput{QueueDepth: int(depth)}

		pub, _ := reg.Value("rai_broker_publish_total", telemetry.L("topic", topic))
		count, sum := reg.Histogram("rai_worker_job_seconds",
			"wall time per completed job", telemetry.QueueDelayBuckets).Totals()

		mu.Lock()
		defer mu.Unlock()
		now := clk.Now()
		if !lastAt.IsZero() {
			if dt := now.Sub(lastAt).Hours(); dt > 0 && pub >= lastPub {
				in.RecentArrivalsPerHour = (pub - lastPub) / dt
			}
			if dc := count - lastCount; count >= lastCount && dc > 0 {
				in.AvgServiceSeconds = (sum - lastSum) / float64(dc)
			}
		}
		if in.AvgServiceSeconds == 0 && count > 0 {
			in.AvgServiceSeconds = sum / float64(count)
		}
		lastAt, lastPub, lastCount, lastSum = now, pub, count, sum
		return in, nil
	}
}
