package scaling

import (
	"errors"
	"sync"
	"testing"
	"time"

	"rai/internal/clock"
)

// fakeTelemetry is a controllable Source.
type fakeTelemetry struct {
	mu  sync.Mutex
	in  PolicyInput
	err error
}

func (f *fakeTelemetry) set(in PolicyInput) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.in = in
}

func (f *fakeTelemetry) source() (PolicyInput, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.in, f.err
}

func newAutoscaler(tel *fakeTelemetry, vc *clock.Virtual) (*Autoscaler, *int) {
	fleet := 0
	a := &Autoscaler{
		Policy:   ElasticPolicy{Min: 2, Max: 20, SlotsPerInstance: 1},
		Source:   tel.source,
		Clock:    vc,
		Interval: time.Minute,
		Cooldown: 5 * time.Minute,
	}
	a.ScaleUp = func(n int) error { fleet += n; return nil }
	a.ScaleDown = func(n int) error { fleet -= n; return nil }
	return a, &fleet
}

func TestAutoscalerScalesUpOnLoad(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2016, 12, 9, 0, 0, 0, 0, time.UTC))
	tel := &fakeTelemetry{}
	a, fleet := newAutoscaler(tel, vc)

	// Idle: floor of 2.
	if delta, err := a.Step(); err != nil || delta != 2 {
		t.Fatalf("idle step: delta=%d err=%v", delta, err)
	}
	if *fleet != 2 || a.Current() != 2 {
		t.Fatalf("fleet = %d, current = %d", *fleet, a.Current())
	}
	// Deadline burst: 600 jobs/hour at 60s each.
	tel.set(PolicyInput{RecentArrivalsPerHour: 600, AvgServiceSeconds: 60})
	delta, err := a.Step()
	if err != nil || delta <= 0 {
		t.Fatalf("burst step: delta=%d err=%v", delta, err)
	}
	if a.Current() < 10 {
		t.Errorf("current = %d after burst, want >= 10", a.Current())
	}
}

func TestAutoscalerCooldownDampsFlapping(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2016, 12, 9, 0, 0, 0, 0, time.UTC))
	tel := &fakeTelemetry{}
	a, fleet := newAutoscaler(tel, vc)
	tel.set(PolicyInput{RecentArrivalsPerHour: 600, AvgServiceSeconds: 60})
	a.Step() // scale up
	high := a.Current()

	// Load vanishes immediately — but we just scaled up: hold.
	tel.set(PolicyInput{})
	if delta, _ := a.Step(); delta != 0 {
		t.Fatalf("scale-down during cooldown: delta=%d", delta)
	}
	if a.Current() != high {
		t.Fatalf("fleet moved during cooldown: %d", a.Current())
	}
	// After the cooldown expires, scale-down proceeds to the floor.
	vc.Advance(6 * time.Minute)
	if delta, _ := a.Step(); delta >= 0 {
		t.Fatalf("post-cooldown: delta=%d, want negative", delta)
	}
	if a.Current() != 2 || *fleet != 2 {
		t.Fatalf("fleet = %d after scale-down", a.Current())
	}
}

func TestAutoscalerTelemetryBlipIsSafe(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2016, 12, 9, 0, 0, 0, 0, time.UTC))
	tel := &fakeTelemetry{err: errors.New("broker unreachable")}
	a, fleet := newAutoscaler(tel, vc)
	a.SetCurrent(7)
	*fleet = 7
	if delta, err := a.Step(); err != nil || delta != 0 {
		t.Fatalf("blip step: delta=%d err=%v", delta, err)
	}
	if *fleet != 7 {
		t.Fatalf("fleet moved on telemetry failure: %d", *fleet)
	}
}

func TestAutoscalerMisconfigured(t *testing.T) {
	a := &Autoscaler{}
	if _, err := a.Step(); !errors.Is(err, ErrNoSource) {
		t.Fatalf("step: %v", err)
	}
	if err := a.Run(); !errors.Is(err, ErrNoSource) {
		t.Fatalf("run: %v", err)
	}
}

func TestAutoscalerRunLoopOnVirtualClock(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2016, 12, 9, 0, 0, 0, 0, time.UTC))
	tel := &fakeTelemetry{}
	a, _ := newAutoscaler(tel, vc)
	done := make(chan error, 1)
	go func() { done <- a.Run() }()

	// Drive three decision intervals.
	for i := 0; i < 3; i++ {
		deadline := time.Now().Add(2 * time.Second)
		for vc.PendingTimers() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		vc.Advance(time.Minute)
		deadline = time.Now().Add(2 * time.Second)
		for a.Decisions() <= i && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	if a.Decisions() < 3 {
		t.Fatalf("decisions = %d, want >= 3", a.Decisions())
	}
	a.Stop()
	a.Stop() // idempotent
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
	if a.Current() != 2 {
		t.Fatalf("steady-state fleet = %d, want the floor", a.Current())
	}
}

func TestAutoscalerActuationFailureRetries(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2016, 12, 9, 0, 0, 0, 0, time.UTC))
	tel := &fakeTelemetry{}
	fleet := 0
	fail := true
	a := &Autoscaler{
		Policy:   FixedPolicy{N: 3},
		Source:   tel.source,
		Clock:    vc,
		Interval: time.Minute,
		ScaleUp: func(n int) error {
			if fail {
				return errors.New("EC2 capacity error")
			}
			fleet += n
			return nil
		},
		ScaleDown: func(n int) error { fleet -= n; return nil },
	}
	if _, err := a.Step(); err == nil {
		t.Fatal("failed actuation reported success")
	}
	if a.Current() != 0 {
		t.Fatalf("current moved on failed scale-up: %d", a.Current())
	}
	fail = false
	if delta, err := a.Step(); err != nil || delta != 3 {
		t.Fatalf("retry: delta=%d err=%v", delta, err)
	}
	if fleet != 3 {
		t.Fatalf("fleet = %d", fleet)
	}
}
