package bzip2w

import (
	"bytes"
	"compress/bzip2"
	"io"
	"math/rand"
	"strings"
	"testing"
)

func decompress(t *testing.T, z []byte) []byte {
	t.Helper()
	out, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(z)))
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	return out
}

func TestParallelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Compressible multi-block input (spans several 100k blocks at level 1).
	var b bytes.Buffer
	for b.Len() < 450_000 {
		b.WriteString(strings.Repeat(string(rune('a'+rng.Intn(6))), 1+rng.Intn(80)))
	}
	p := b.Bytes()
	for _, workers := range []int{1, 2, 4, 8} {
		z, err := CompressParallel(p, 1, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := decompress(t, z); !bytes.Equal(got, p) {
			t.Fatalf("workers=%d: round trip mismatch", workers)
		}
	}
}

func TestParallelSmallInputFallsBack(t *testing.T) {
	p := []byte("tiny input")
	z, err := CompressParallel(p, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := compressSerial(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(z, serial) {
		t.Error("small input did not take the serial path")
	}
}

func TestParallelEmptyInput(t *testing.T) {
	z, err := CompressParallel(nil, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := decompress(t, z); len(got) != 0 {
		t.Fatalf("empty round trip = %d bytes", len(got))
	}
}

func TestParallelBadLevelNormalized(t *testing.T) {
	p := bytes.Repeat([]byte("x"), 1000)
	z, err := CompressParallel(p, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := decompress(t, z); !bytes.Equal(got, p) {
		t.Fatal("round trip after level normalization")
	}
}

func TestParallelRatioCloseToSerial(t *testing.T) {
	// The concatenated-streams trick must not cost much ratio.
	var b bytes.Buffer
	for b.Len() < 600_000 {
		b.WriteString("int main(void) { return forward(x, y, k); } // kernel driver\n")
	}
	p := b.Bytes()
	serial, err := compressSerial(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompressParallel(p, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(par)) > 1.25*float64(len(serial)) {
		t.Errorf("parallel output %d bytes vs serial %d (+%.0f%%)",
			len(par), len(serial), 100*(float64(len(par))/float64(len(serial))-1))
	}
}

func BenchmarkCompressSerialVsParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	for buf.Len() < 2_000_000 {
		buf.WriteString(strings.Repeat(string(rune('a'+rng.Intn(20))), 1+rng.Intn(30)))
	}
	p := buf.Bytes()
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(p)))
		for i := 0; i < b.N; i++ {
			if _, err := compressSerial(p, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(len(p)))
		for i := 0; i < b.N; i++ {
			if _, err := CompressParallel(p, 1, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
