package bzip2w

// bzip2 uses the MSB-first CRC-32 (polynomial 0x04C11DB7, init and xorout
// 0xFFFFFFFF, no bit reflection) — distinct from the IEEE CRC in
// hash/crc32, so it is implemented here.

var crcTable [256]uint32

func init() {
	const poly = 0x04c11db7
	for i := range crcTable {
		c := uint32(i) << 24
		for k := 0; k < 8; k++ {
			if c&0x80000000 != 0 {
				c = c<<1 ^ poly
			} else {
				c <<= 1
			}
		}
		crcTable[i] = c
	}
}

// crc32bz accumulates the bzip2 block CRC over p starting from crc
// (callers pass 0xFFFFFFFF initially and finalize with ^crc).
type blockCRC uint32

func newBlockCRC() blockCRC { return 0xffffffff }

func (c blockCRC) update(p []byte) blockCRC {
	v := uint32(c)
	for _, b := range p {
		v = v<<8 ^ crcTable[byte(v>>24)^b]
	}
	return blockCRC(v)
}

func (c blockCRC) updateByte(b byte) blockCRC {
	v := uint32(c)
	return blockCRC(v<<8 ^ crcTable[byte(v>>24)^b])
}

func (c blockCRC) sum() uint32 { return ^uint32(c) }

// combineCRC folds a finished block CRC into the stream CRC the way the
// bzip2 footer requires.
func combineCRC(combined, block uint32) uint32 {
	return (combined<<1 | combined>>31) ^ block
}
