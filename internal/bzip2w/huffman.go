package bzip2w

import "sort"

// Huffman coding for the bzip2 entropy stage. The encoder follows the
// reference implementation's shape: 2–6 tables chosen by stream length,
// greedy table assignment per 50-symbol group, a few refinement
// iterations, and canonical code assignment with a 17-bit length cap
// (lengths are legal up to 20; the reference encoder also caps at 17).

const (
	groupSize   = 50
	maxCodeLen  = 17
	maxGroups   = 6
	nIterations = 4
)

// buildCodeLengths computes Huffman code lengths (capped at maxCodeLen)
// for the given symbol frequencies using a standard heap-free two-queue
// construction; when the tree exceeds the cap, frequencies are flattened
// and the tree rebuilt, exactly as bzip2's hbMakeCodeLengths does.
func buildCodeLengths(freq []int32) []uint8 {
	n := len(freq)
	lens := make([]uint8, n)
	w := make([]int64, n)
	for i, f := range freq {
		if f == 0 {
			w[i] = 1 // every symbol must be encodable
		} else {
			w[i] = int64(f)
		}
	}
	for {
		if tryBuild(w, lens) {
			return lens
		}
		// Flatten: halve (plus one) so depth shrinks but order persists.
		for i := range w {
			w[i] = w[i]/2 + 1
		}
	}
}

// tryBuild assigns code lengths for weights w; reports false when some
// length exceeds maxCodeLen.
func tryBuild(w []int64, lens []uint8) bool {
	n := len(w)
	if n == 1 {
		lens[0] = 1
		return true
	}
	type node struct {
		weight      int64
		left, right int32 // child node indices, -1 for leaf
		sym         int32
	}
	nodes := make([]node, 0, 2*n)
	order := make([]int32, n)
	for i := 0; i < n; i++ {
		nodes = append(nodes, node{weight: w[i], left: -1, right: -1, sym: int32(i)})
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if nodes[order[a]].weight != nodes[order[b]].weight {
			return nodes[order[a]].weight < nodes[order[b]].weight
		}
		return order[a] < order[b]
	})
	// Two-queue merge: leaves (sorted) + internal nodes (created in
	// nondecreasing weight order).
	var internal []int32
	li, ii := 0, 0
	pop := func() int32 {
		if li < len(order) && (ii >= len(internal) || nodes[order[li]].weight <= nodes[internal[ii]].weight) {
			li++
			return order[li-1]
		}
		ii++
		return internal[ii-1]
	}
	remaining := n
	for remaining > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, node{weight: nodes[a].weight + nodes[b].weight, left: a, right: b, sym: -1})
		internal = append(internal, int32(len(nodes)-1))
		remaining--
	}
	root := pop()
	// Depth-first traversal assigning depths.
	type frame struct {
		idx   int32
		depth uint8
	}
	stack := []frame{{root, 0}}
	ok := true
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[f.idx]
		if nd.left < 0 {
			d := f.depth
			if d == 0 {
				d = 1
			}
			if d > maxCodeLen {
				ok = false
				d = maxCodeLen
			}
			lens[nd.sym] = d
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
	return ok
}

// assignCodes produces canonical MSB-first codes from lengths.
func assignCodes(lens []uint8) []uint32 {
	codes := make([]uint32, len(lens))
	var minLen, maxLen uint8 = 32, 0
	for _, l := range lens {
		if l < minLen {
			minLen = l
		}
		if l > maxLen {
			maxLen = l
		}
	}
	code := uint32(0)
	for l := minLen; l <= maxLen; l++ {
		for i, ll := range lens {
			if ll == l {
				codes[i] = code
				code++
			}
		}
		code <<= 1
	}
	return codes
}

// chooseNumGroups mirrors the reference encoder's table-count heuristic.
func chooseNumGroups(nMTF int) int {
	switch {
	case nMTF < 200:
		return 2
	case nMTF < 600:
		return 3
	case nMTF < 1200:
		return 4
	case nMTF < 2400:
		return 5
	default:
		return 6
	}
}

// huffmanPlan is the output of the entropy-planning stage: per-table code
// lengths and codes, plus the table selector for every 50-symbol group.
type huffmanPlan struct {
	nGroups   int
	lens      [][]uint8  // [group][symbol]
	codes     [][]uint32 // [group][symbol]
	selectors []uint8    // table index per group of 50 symbols
}

// planHuffman runs the iterative group-assignment refinement from
// bzip2's sendMTFValues over the MTF symbol stream.
func planHuffman(mtf []uint16, alphaSize int) *huffmanPlan {
	nGroups := chooseNumGroups(len(mtf))
	// Initial tables: partition the alphabet by cumulative frequency so
	// each table starts responsible for ~1/nGroups of the mass.
	freq := make([]int32, alphaSize)
	for _, s := range mtf {
		freq[s]++
	}
	lens := make([][]uint8, nGroups)
	for g := range lens {
		lens[g] = make([]uint8, alphaSize)
	}
	remaining := int32(len(mtf))
	lo := 0
	for g := nGroups; g > 0; g-- {
		target := remaining / int32(g)
		var acc int32
		hi := lo
		for hi < alphaSize-1 && acc < target {
			acc += freq[hi]
			hi++
		}
		// Tables favour "their" slice with short codes and punish the rest.
		for s := 0; s < alphaSize; s++ {
			if s >= lo && s < hi {
				lens[nGroups-g][s] = 0
			} else {
				lens[nGroups-g][s] = 15
			}
		}
		remaining -= acc
		lo = hi
	}

	nSel := (len(mtf) + groupSize - 1) / groupSize
	selectors := make([]uint8, nSel)
	gfreq := make([][]int32, nGroups)
	for g := range gfreq {
		gfreq[g] = make([]int32, alphaSize)
	}
	for iter := 0; iter < nIterations; iter++ {
		for g := 0; g < nGroups; g++ {
			for s := range gfreq[g] {
				gfreq[g][s] = 0
			}
		}
		// Assign every group of 50 to the cheapest table under current lens.
		for sel := 0; sel < nSel; sel++ {
			start := sel * groupSize
			end := start + groupSize
			if end > len(mtf) {
				end = len(mtf)
			}
			best, bestCost := 0, int64(1)<<62
			for g := 0; g < nGroups; g++ {
				var cost int64
				for _, s := range mtf[start:end] {
					l := lens[g][s]
					if l == 0 {
						l = 1 // "free" placeholder from initialization
					}
					cost += int64(l)
				}
				if cost < bestCost {
					best, bestCost = g, cost
				}
			}
			selectors[sel] = uint8(best)
			for _, s := range mtf[start:end] {
				gfreq[best][s]++
			}
		}
		// Recompute each table from the frequencies it actually won.
		for g := 0; g < nGroups; g++ {
			lens[g] = buildCodeLengths(gfreq[g])
		}
	}
	codes := make([][]uint32, nGroups)
	for g := 0; g < nGroups; g++ {
		codes[g] = assignCodes(lens[g])
	}
	return &huffmanPlan{nGroups: nGroups, lens: lens, codes: codes, selectors: selectors}
}
