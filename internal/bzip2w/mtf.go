package bzip2w

// Move-to-front transform plus bzip2's RLE2 stage: zero runs from MTF are
// re-expressed in bijective base 2 over the RUNA/RUNB symbols, ordinary
// symbols shift up by one, and a block-terminating EOB symbol is appended.

const (
	runA = 0
	runB = 1
)

// mtfRLE2 encodes bwt (whose bytes use the compacted alphabet of nUsed
// symbols given by symMap: byte value -> compact index) into the MTF+RLE2
// symbol stream. The output alphabet has nUsed+2 symbols:
// RUNA=0, RUNB=1, compact symbols at index j encode as j+1, EOB=nUsed+1.
func mtfRLE2(bwt []byte, symMap *[256]uint16, nUsed int) []uint16 {
	out := make([]uint16, 0, len(bwt)/2+32)
	var order [256]byte
	for i := 0; i < nUsed; i++ {
		order[i] = byte(i)
	}
	eob := uint16(nUsed + 1)
	zeroRun := 0
	flushRun := func() {
		// Bijective base-2: digits RUNA (=1) and RUNB (=2).
		n := zeroRun
		for n > 0 {
			if n&1 == 1 {
				out = append(out, runA)
				n = (n - 1) >> 1
			} else {
				out = append(out, runB)
				n = (n - 2) >> 1
			}
		}
		zeroRun = 0
	}
	for _, b := range bwt {
		sym := byte(symMap[b])
		if order[0] == sym {
			zeroRun++
			continue
		}
		flushRun()
		// Move sym to front, recording its previous position.
		var pos int
		prev := order[0]
		for i := 1; ; i++ {
			cur := order[i]
			order[i] = prev
			prev = cur
			if cur == sym {
				pos = i
				break
			}
		}
		order[0] = sym
		out = append(out, uint16(pos)+1)
	}
	flushRun()
	return append(out, eob)
}

// symbolMap scans the block and produces the compacted alphabet: used
// flags per byte, the byte->compact-index map, and the used-symbol count.
func symbolMap(block []byte) (used [256]bool, symMap [256]uint16, nUsed int) {
	for _, b := range block {
		used[b] = true
	}
	for i := 0; i < 256; i++ {
		if used[i] {
			symMap[i] = uint16(nUsed)
			nUsed++
		}
	}
	return used, symMap, nUsed
}
