package bzip2w

// Burrows–Wheeler transform of a block, computed by sorting all cyclic
// rotations with prefix-doubling (Manber–Myers) and counting-sort radix
// passes: O(n log n) time, O(n) extra space, no pathological inputs.

// bwtTransform returns the BWT of data (last column of the sorted cyclic
// rotation matrix) and origPtr, the row index at which the original string
// appears — the two artifacts the bzip2 block header carries.
func bwtTransform(data []byte, out []byte) (origPtr int) {
	n := len(data)
	if n == 0 {
		return 0
	}
	if n == 1 {
		out[0] = data[0]
		return 0
	}
	sa := sortRotations(data)
	for i, p := range sa {
		if p == 0 {
			origPtr = i
			out[i] = data[n-1]
		} else {
			out[i] = data[p-1]
		}
	}
	return origPtr
}

// sortRotations returns the indices of the cyclic rotations of data in
// lexicographic order (prefix doubling with counting sort).
func sortRotations(data []byte) []int32 {
	n := len(data)
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)
	cnt := make([]int32, maxInt(256, n)+1)

	// Initial ranks are byte values; counting-sort positions by first byte.
	for i := 0; i < n; i++ {
		rank[i] = int32(data[i])
	}
	for i := range cnt {
		cnt[i] = 0
	}
	for i := 0; i < n; i++ {
		cnt[rank[i]+1]++
	}
	for i := 1; i < 257; i++ {
		cnt[i] += cnt[i-1]
	}
	for i := 0; i < n; i++ {
		sa[cnt[rank[i]]] = int32(i)
		cnt[rank[i]]++
	}

	classes := int32(256)
	for k := 1; ; k <<= 1 {
		// Sort by (rank[i], rank[(i+k) mod n]). sa is already ordered by
		// rank of the k-length prefix; shifting each start left by k yields
		// the order of second keys, and a stable counting sort on the
		// first key finishes the pass.
		sh := int32(k % n)
		for i := 0; i < n; i++ {
			tmp[i] = sa[i] - sh
			if tmp[i] < 0 {
				tmp[i] += int32(n)
			}
		}
		for i := int32(0); i <= classes; i++ {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[rank[i]+1]++
		}
		for i := int32(1); i <= classes; i++ {
			cnt[i] += cnt[i-1]
		}
		for i := 0; i < n; i++ {
			s := tmp[i]
			sa[cnt[rank[s]]] = s
			cnt[rank[s]]++
		}
		// Re-rank: rotations equal on their first 2k characters share
		// ranks. tmp doubles as the new-rank buffer now that the shifted
		// order has been consumed.
		tmp[sa[0]] = 0
		newClasses := int32(1)
		for i := 1; i < n; i++ {
			a, b := sa[i-1], sa[i]
			same := rank[a] == rank[b] && rank[(int(a)+k)%n] == rank[(int(b)+k)%n]
			if !same {
				newClasses++
			}
			tmp[b] = newClasses - 1
		}
		copy(rank, tmp)
		classes = newClasses
		if classes == int32(n) || k >= n {
			// Fully ordered, or the input is periodic (equal rotations
			// can never separate); either way the order is final.
			break
		}
	}
	return sa
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
