package bzip2w

import "io"

// bitWriter emits bits MSB-first, the bit order the bzip2 container uses.
type bitWriter struct {
	w    io.Writer
	bits uint64
	n    uint // number of pending bits in the high end of bits<<?
	buf  []byte
	err  error
}

func newBitWriter(w io.Writer) *bitWriter {
	return &bitWriter{w: w, buf: make([]byte, 0, 4096)}
}

// writeBits appends the low n bits of v (n <= 48), most significant first.
func (b *bitWriter) writeBits(v uint64, n uint) {
	if b.err != nil {
		return
	}
	b.bits = b.bits<<n | v&(1<<n-1)
	b.n += n
	for b.n >= 8 {
		b.n -= 8
		b.buf = append(b.buf, byte(b.bits>>b.n))
		if len(b.buf) >= 4096 {
			b.flushBuf()
		}
	}
}

func (b *bitWriter) flushBuf() {
	if b.err != nil || len(b.buf) == 0 {
		return
	}
	_, b.err = b.w.Write(b.buf)
	b.buf = b.buf[:0]
}

// close pads the final partial byte with zero bits and flushes.
func (b *bitWriter) close() error {
	if b.n > 0 {
		pad := 8 - b.n
		b.writeBits(0, pad)
	}
	b.flushBuf()
	return b.err
}
