// Package bzip2w implements a bzip2 compressor. The Go standard library
// ships only the decompressor (compress/bzip2); RAI submissions travel as
// .tar.bz2 archives, so the writer is built here from scratch: RLE1,
// Burrows–Wheeler transform, move-to-front, RLE2, and the multi-table
// Huffman entropy coder, framed in the standard bzip2 container.
//
// Output is verified round-trip against compress/bzip2 in the tests.
package bzip2w

import (
	"errors"
	"fmt"
	"io"
)

// DefaultLevel is the block-size level used by NewWriter (bzip2's own
// default). Level k uses k*100_000-byte blocks.
const DefaultLevel = 9

const (
	blockMagic = 0x314159265359 // BCD of pi: block header
	eosMagic   = 0x177245385090 // BCD of sqrt(pi): end of stream
)

// Writer compresses data written to it into a bzip2 stream on the
// underlying writer. Close must be called to flush the final block and
// the stream footer.
type Writer struct {
	bw         *bitWriter
	level      int
	block      []byte // RLE1-encoded block contents
	blockLimit int
	crc        blockCRC
	combined   uint32
	headerDone bool
	closed     bool
	err        error
	// RLE1 run state
	last   int // previous byte value, -1 when no run is open
	runLen int
}

// NewWriter returns a Writer at DefaultLevel.
func NewWriter(w io.Writer) *Writer {
	bw, err := NewWriterLevel(w, DefaultLevel)
	if err != nil {
		panic(err) // unreachable: DefaultLevel is valid
	}
	return bw
}

// NewWriterLevel returns a Writer using level*100kB blocks; level must be
// in [1,9].
func NewWriterLevel(w io.Writer, level int) (*Writer, error) {
	if level < 1 || level > 9 {
		return nil, fmt.Errorf("bzip2w: invalid level %d (want 1..9)", level)
	}
	return &Writer{
		bw:         newBitWriter(w),
		level:      level,
		blockLimit: level * 100_000,
		crc:        newBlockCRC(),
		last:       -1,
	}, nil
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("bzip2w: write after Close")
	}
	if w.err != nil {
		return 0, w.err
	}
	for _, b := range p {
		w.crc = w.crc.updateByte(b)
		w.rle1Add(b)
		// Leave room to close the open run (count byte) when cutting.
		if len(w.block) >= w.blockLimit-5 {
			if err := w.endBlock(); err != nil {
				return 0, err
			}
		}
	}
	return len(p), nil
}

// rle1Add feeds one byte through the RLE1 stage into the block buffer.
func (w *Writer) rle1Add(b byte) {
	if int(b) == w.last {
		w.runLen++
		if w.runLen <= 4 {
			w.block = append(w.block, b)
		}
		if w.runLen == 4+255 {
			w.block = append(w.block, 255)
			w.last, w.runLen = -1, 0
		}
		return
	}
	w.finishRun()
	w.last, w.runLen = int(b), 1
	w.block = append(w.block, b)
}

// finishRun closes an open RLE1 run, appending the count byte when the
// run reached length 4.
func (w *Writer) finishRun() {
	if w.runLen >= 4 {
		w.block = append(w.block, byte(w.runLen-4))
	}
	w.last, w.runLen = -1, 0
}

// endBlock compresses and emits the current block.
func (w *Writer) endBlock() error {
	w.finishRun()
	if len(w.block) == 0 {
		return nil
	}
	if !w.headerDone {
		w.writeStreamHeader()
	}
	crc := w.crc.sum()
	w.combined = combineCRC(w.combined, crc)
	w.emitBlock(w.block, crc)
	w.block = w.block[:0]
	w.crc = newBlockCRC()
	return w.bw.err
}

// Close flushes the final block and stream footer. It does not close the
// underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if err := w.endBlock(); err != nil {
		w.err = err
		return err
	}
	if !w.headerDone {
		w.writeStreamHeader()
	}
	w.bw.writeBits(eosMagic, 48)
	w.bw.writeBits(uint64(w.combined), 32)
	w.err = w.bw.close()
	return w.err
}

func (w *Writer) writeStreamHeader() {
	w.bw.writeBits('B', 8)
	w.bw.writeBits('Z', 8)
	w.bw.writeBits('h', 8)
	w.bw.writeBits(uint64('0'+w.level), 8)
	w.headerDone = true
}

// emitBlock runs the BWT→MTF→Huffman pipeline and writes one block.
func (w *Writer) emitBlock(block []byte, crc uint32) {
	used, symMap, nUsed := symbolMap(block)
	bwt := make([]byte, len(block))
	origPtr := bwtTransform(block, bwt)
	mtf := mtfRLE2(bwt, &symMap, nUsed)
	alphaSize := nUsed + 2
	plan := planHuffman(mtf, alphaSize)

	bw := w.bw
	bw.writeBits(blockMagic, 48)
	bw.writeBits(uint64(crc), 32)
	bw.writeBits(0, 1) // "randomized" flag: deprecated, always 0
	bw.writeBits(uint64(origPtr), 24)

	// Symbol map: a 16-bit bitmap of used 16-symbol ranges, then one
	// 16-bit bitmap per used range.
	var rangeUsed uint16
	for r := 0; r < 16; r++ {
		for s := 0; s < 16; s++ {
			if used[r*16+s] {
				rangeUsed |= 1 << (15 - r)
				break
			}
		}
	}
	bw.writeBits(uint64(rangeUsed), 16)
	for r := 0; r < 16; r++ {
		if rangeUsed&(1<<(15-r)) == 0 {
			continue
		}
		var bits uint16
		for s := 0; s < 16; s++ {
			if used[r*16+s] {
				bits |= 1 << (15 - s)
			}
		}
		bw.writeBits(uint64(bits), 16)
	}

	bw.writeBits(uint64(plan.nGroups), 3)
	bw.writeBits(uint64(len(plan.selectors)), 15)

	// Selectors, MTF-coded in unary.
	var order [maxGroups]uint8
	for i := range order {
		order[i] = uint8(i)
	}
	for _, sel := range plan.selectors {
		var j int
		for order[j] != sel {
			j++
		}
		copy(order[1:j+1], order[:j])
		order[0] = sel
		for k := 0; k < j; k++ {
			bw.writeBits(1, 1)
		}
		bw.writeBits(0, 1)
	}

	// Code-length tables, delta coded.
	for g := 0; g < plan.nGroups; g++ {
		lens := plan.lens[g]
		cur := int(lens[0])
		bw.writeBits(uint64(cur), 5)
		for _, l := range lens {
			for cur < int(l) {
				bw.writeBits(0b10, 2) // increment
				cur++
			}
			for cur > int(l) {
				bw.writeBits(0b11, 2) // decrement
				cur--
			}
			bw.writeBits(0, 1) // done
		}
	}

	// Payload: each 50-symbol group uses its selected table.
	for i, s := range mtf {
		g := plan.selectors[i/groupSize]
		bw.writeBits(uint64(plan.codes[g][s]), uint(plan.lens[g][s]))
	}
}

// Compress is a convenience helper that compresses p in one call.
func Compress(p []byte) ([]byte, error) {
	var buf sliceWriter
	w, err := NewWriterLevel(&buf, DefaultLevel)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(p); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf, nil
}

type sliceWriter []byte

func (s *sliceWriter) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}
