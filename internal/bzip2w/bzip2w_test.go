package bzip2w

import (
	"bytes"
	"compress/bzip2"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// roundTrip compresses p at the given level and decodes it with the
// standard library's decompressor.
func roundTrip(t *testing.T, p []byte, level int) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterLevel(&buf, level)
	if err != nil {
		t.Fatalf("NewWriterLevel: %v", err)
	}
	if _, err := w.Write(p); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := io.ReadAll(bzip2.NewReader(&buf))
	if err != nil {
		t.Fatalf("stdlib decompressor rejected our stream (input %d bytes): %v", len(p), err)
	}
	if !bytes.Equal(got, p) {
		t.Fatalf("round trip mismatch: wrote %d bytes, read %d", len(p), len(got))
	}
}

func TestRoundTripEmpty(t *testing.T) { roundTrip(t, nil, 9) }

func TestRoundTripSmall(t *testing.T) {
	cases := []string{
		"a",
		"ab",
		"hello, bzip2 world\n",
		"aaaa",
		"aaaaa",
		"aaaabaaaab",
		strings.Repeat("a", 4+255),  // exactly max RLE1 run
		strings.Repeat("a", 4+256),  // one past max run
		strings.Repeat("ab", 1000),  // period-2 rotations
		strings.Repeat("abc", 5000), // period-3
		"\x00\x01\x02\xff\xfe\x00\x00\x00\x00\x00",
	}
	for _, s := range cases {
		roundTrip(t, []byte(s), 9)
	}
}

func TestRoundTripAllByteValues(t *testing.T) {
	p := make([]byte, 256*7)
	for i := range p {
		p[i] = byte(i % 256)
	}
	roundTrip(t, p, 9)
}

func TestRoundTripUniformRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(408))
	for _, n := range []int{1, 100, 5_000, 60_000} {
		p := make([]byte, n)
		rng.Read(p)
		roundTrip(t, p, 9)
	}
}

func TestRoundTripBiasedRandom(t *testing.T) {
	// Text-like distribution exercises the Huffman refinement path.
	rng := rand.New(rand.NewSource(598))
	p := make([]byte, 80_000)
	letters := []byte("etaoin shrdlu\n")
	for i := range p {
		if rng.Intn(10) == 0 {
			p[i] = byte(rng.Intn(256))
		} else {
			p[i] = letters[rng.Intn(len(letters))]
		}
	}
	roundTrip(t, p, 9)
}

func TestRoundTripMultiBlock(t *testing.T) {
	// Level 1 → 100kB blocks; 350kB input spans 4 blocks and exercises
	// the combined CRC.
	rng := rand.New(rand.NewSource(176))
	p := make([]byte, 350_000)
	for i := range p {
		p[i] = byte('a' + rng.Intn(4))
	}
	roundTrip(t, p, 1)
}

func TestRoundTripLongRuns(t *testing.T) {
	var b bytes.Buffer
	for i := 0; i < 50; i++ {
		b.WriteString(strings.Repeat(string(rune('a'+i%3)), 100+i*37))
	}
	roundTrip(t, b.Bytes(), 9)
}

func TestRoundTripWriteByteAtATime(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	msg := []byte("the quick brown fox jumps over the lazy dog, repeatedly. ")
	for i := 0; i < 40; i++ {
		for _, c := range msg {
			if _, err := w.Write([]byte{c}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(bzip2.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40*len(msg) {
		t.Fatalf("got %d bytes, want %d", len(got), 40*len(msg))
	}
}

func TestInvalidLevel(t *testing.T) {
	for _, lv := range []int{0, 10, -3} {
		if _, err := NewWriterLevel(io.Discard, lv); err == nil {
			t.Errorf("NewWriterLevel(%d) succeeded, want error", lv)
		}
	}
}

func TestWriteAfterClose(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("Write after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestCompressHelper(t *testing.T) {
	data := []byte(strings.Repeat("rai submission payload ", 1000))
	z, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) >= len(data) {
		t.Errorf("compressible input did not shrink: %d -> %d", len(data), len(z))
	}
	got, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(z)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("Compress round trip mismatch")
	}
}

// TestQuickRoundTrip is the property-based check: any byte slice survives
// compress → stdlib decompress unchanged.
func TestQuickRoundTrip(t *testing.T) {
	f := func(p []byte, seed int64) bool {
		var buf bytes.Buffer
		w, _ := NewWriterLevel(&buf, 1)
		if _, err := w.Write(p); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		got, err := io.ReadAll(bzip2.NewReader(&buf))
		if err != nil {
			return false
		}
		return bytes.Equal(got, p)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRunHeavy targets the RLE1 edge cases with run-structured input.
func TestQuickRunHeavy(t *testing.T) {
	f := func(runs []uint16, b byte) bool {
		var in bytes.Buffer
		for i, r := range runs {
			in.Write(bytes.Repeat([]byte{b + byte(i%3)}, int(r%600)))
		}
		p := in.Bytes()
		var buf bytes.Buffer
		w, _ := NewWriterLevel(&buf, 1)
		w.Write(p)
		if err := w.Close(); err != nil {
			return false
		}
		got, err := io.ReadAll(bzip2.NewReader(&buf))
		return err == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBWTKnownVector(t *testing.T) {
	// Classic example: BWT of "banana" (cyclic) is "nnbaaa" with the
	// original at row 3.
	in := []byte("banana")
	out := make([]byte, len(in))
	ptr := bwtTransform(in, out)
	if string(out) != "nnbaaa" {
		t.Errorf("BWT(banana) = %q, want nnbaaa", out)
	}
	if ptr != 3 {
		t.Errorf("origPtr = %d, want 3", ptr)
	}
}

func TestBWTPeriodicInput(t *testing.T) {
	// All rotations equal: must terminate and produce a valid transform.
	in := bytes.Repeat([]byte{'x'}, 1024)
	out := make([]byte, len(in))
	ptr := bwtTransform(in, out)
	if ptr < 0 || ptr >= len(in) {
		t.Fatalf("origPtr = %d out of range", ptr)
	}
	for _, b := range out {
		if b != 'x' {
			t.Fatal("BWT of constant input must be constant")
		}
	}
}

func TestMTFRLE2SmallVector(t *testing.T) {
	// Alphabet {a,b}; input "aab": a is front → two zeros → RUNB (run of
	// 2), then b at position 1 → symbol 2, then EOB (=3).
	block := []byte("aab")
	_, symMap, nUsed := symbolMap(block)
	if nUsed != 2 {
		t.Fatalf("nUsed = %d", nUsed)
	}
	got := mtfRLE2(block, &symMap, nUsed)
	want := []uint16{runB, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("mtf = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mtf = %v, want %v", got, want)
		}
	}
}

func TestHuffmanLengthsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(256)
		freq := make([]int32, n)
		for i := range freq {
			if rng.Intn(4) != 0 {
				freq[i] = int32(rng.Intn(100000))
			}
		}
		lens := buildCodeLengths(freq)
		// Kraft inequality must hold with equality ≤ 1 and lengths in range.
		var kraft float64
		for _, l := range lens {
			if l < 1 || l > maxCodeLen {
				t.Fatalf("length %d out of range", l)
			}
			kraft += 1 / float64(int64(1)<<l)
		}
		if kraft > 1.0000001 {
			t.Fatalf("Kraft sum %v > 1 (not decodable)", kraft)
		}
	}
}

func TestAssignCodesPrefixFree(t *testing.T) {
	lens := buildCodeLengths([]int32{50, 30, 10, 5, 3, 1, 1})
	codes := assignCodes(lens)
	for i := range codes {
		for j := range codes {
			if i == j {
				continue
			}
			li, lj := uint(lens[i]), uint(lens[j])
			if li > lj {
				continue
			}
			if codes[j]>>(lj-li) == codes[i] {
				t.Fatalf("code %d (%b/%d) is a prefix of code %d (%b/%d)", i, codes[i], li, j, codes[j], lj)
			}
		}
	}
}

func TestChooseNumGroups(t *testing.T) {
	cases := map[int]int{0: 2, 199: 2, 200: 3, 599: 3, 600: 4, 1199: 4, 1200: 5, 2399: 5, 2400: 6, 1_000_000: 6}
	for n, want := range cases {
		if got := chooseNumGroups(n); got != want {
			t.Errorf("chooseNumGroups(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCombineCRCRotates(t *testing.T) {
	if got := combineCRC(0x80000000, 0); got != 1 {
		t.Errorf("combineCRC(0x80000000, 0) = %#x, want 1 (rotate-left)", got)
	}
	if got := combineCRC(1, 0xff); got != 2^0xff {
		t.Errorf("combineCRC(1, 0xff) = %#x", got)
	}
}
