package bzip2w

import (
	"runtime"
	"sync"
)

// CompressParallel compresses p using up to workers goroutines by
// splitting the input into independently compressed bzip2 streams and
// concatenating them. The bzip2 format (and compress/bzip2) accepts
// concatenated streams, so the output decodes to exactly p.
//
// Each worker chunk spans a whole number of blocks at the given level,
// so the compression-ratio loss versus serial compression is limited to
// one RLE1 run potentially split per boundary. Workers <= 1 (or input
// smaller than one block) falls back to the serial path.
func CompressParallel(p []byte, level, workers int) ([]byte, error) {
	if level < 1 || level > 9 {
		level = DefaultLevel
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := level * 100_000
	if workers <= 1 || len(p) <= chunk {
		return compressSerial(p, level)
	}
	// Split into worker-count-bounded chunks of whole blocks.
	nChunks := (len(p) + chunk - 1) / chunk
	if nChunks > workers*4 {
		// Larger chunks amortize per-stream header overhead.
		chunk = ((len(p)/(workers*4) + 99_999) / 100_000) * 100_000
		if chunk == 0 {
			chunk = level * 100_000
		}
		nChunks = (len(p) + chunk - 1) / chunk
	}
	type result struct {
		data []byte
		err  error
	}
	results := make([]result, nChunks)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < nChunks; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(p) {
			hi = len(p)
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, part []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			data, err := compressSerial(part, level)
			results[i] = result{data, err}
		}(i, p[lo:hi])
	}
	wg.Wait()
	var total int
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		total += len(r.data)
	}
	out := make([]byte, 0, total)
	for _, r := range results {
		out = append(out, r.data...)
	}
	return out, nil
}

func compressSerial(p []byte, level int) ([]byte, error) {
	var buf sliceWriter
	w, err := NewWriterLevel(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(p); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf, nil
}
