// Package blobstore is the shared streaming storage layer under RAI's
// storage services (objstore's S3-like object server and docstore's
// journal). It replaces the persistence code those packages used to
// hand-roll — and, crucially, replaces their buffer-the-whole-archive
// data path with streaming reads and writes, so a submission archive
// flows through a daemon in constant memory regardless of its size.
//
// The package provides:
//
//   - Backend: the storage-backend interface. Open returns an
//     io.ReadCloser, Create returns a committing Writer, plus Stat,
//     List, Remove, Touch, per-blob TTLs measured from last use, and
//     Sweep for expiry collection.
//   - Memory and Disk backends. Memory hands out copy-on-write readers
//     over immutable buffers (no defensive copying); Disk streams to a
//     temp file and commits with an atomic rename, cleaning up partial
//     writes on error.
//   - Table: a mount table routing bucket prefixes to backends, so one
//     daemon can keep uploads on disk and scratch buckets in memory.
//   - Capability negotiation: each backend advertises what it can do
//     (streaming, atomic rename commits, watch, append) and callers
//     degrade gracefully when a capability is absent.
//   - Watch events: subscribers observe create/update/delete events in
//     operation order, which drives cache invalidation and `raiadmin
//     logs -follow` without polling.
package blobstore

import (
	"context"
	"errors"
	"io"
	"strings"
	"time"

	"rai/internal/clock"
)

// Errors reported by backends.
var (
	ErrNoBucket     = errors.New("blobstore: no such bucket")
	ErrNotFound     = errors.New("blobstore: no such blob")
	ErrBadName      = errors.New("blobstore: invalid bucket or key")
	ErrQuota        = errors.New("blobstore: capacity exceeded")
	ErrExists       = errors.New("blobstore: bucket already exists")
	ErrNoCapability = errors.New("blobstore: backend lacks capability")
	ErrClosed       = errors.New("blobstore: backend closed")
)

// Capability is a bitmask of optional backend behaviours. Callers check
// capabilities before relying on an optional path and fall back when it
// is absent (polling instead of watching, copy-rewrite instead of
// atomic rename, whole-value writes instead of appends).
type Capability uint32

const (
	// CapStream: Open/Create move bytes incrementally; the backend never
	// materializes a whole blob to serve one.
	CapStream Capability = 1 << iota
	// CapAtomicRename: Create commits by atomically renaming a temp
	// file, so a crashed writer never leaves a torn blob visible.
	CapAtomicRename
	// CapWatch: the backend delivers create/update/delete events to
	// Watch subscribers in operation order.
	CapWatch
	// CapAppend: the backend supports Append for journal-style writers
	// (see Appender).
	CapAppend
)

// Has reports whether all bits in want are present.
func (c Capability) Has(want Capability) bool { return c&want == want }

// String renders the set for logs and /caps endpoints.
func (c Capability) String() string {
	var parts []string
	for _, e := range []struct {
		bit  Capability
		name string
	}{{CapStream, "stream"}, {CapAtomicRename, "atomic-rename"}, {CapWatch, "watch"}, {CapAppend, "append"}} {
		if c.Has(e.bit) {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Info is blob metadata. Field names (not tags) are the on-disk meta
// JSON schema, kept compatible with the sidecar files the old objstore
// disk write-through produced.
type Info struct {
	Bucket   string
	Key      string
	Size     int64
	ETag     string // hex SHA-256 of the content ("" when unknown, e.g. after appends)
	Modified time.Time
	LastUsed time.Time
	// TTL is the lifetime measured from LastUsed; zero means no expiry.
	TTL time.Duration
}

// PutOptions configures one Create.
type PutOptions struct {
	// TTL is the blob lifetime from last use; zero adopts the backend
	// default.
	TTL time.Duration
}

// Writer is a streaming blob writer. Nothing is visible to readers
// until Close commits; Abort discards a partial write (the partial
// bytes are cleaned up, not left as a torn blob). Exactly one of Close
// or Abort should be called; Abort after a failed Close is a no-op.
type Writer interface {
	io.Writer
	// Close commits the blob and finalizes Info.
	Close() error
	// Abort discards the partial write.
	Abort() error
	// Info returns the committed metadata; valid after a successful
	// Close.
	Info() Info
}

// Backend is the storage-backend interface shared by the memory and
// disk engines and the mount table.
type Backend interface {
	// Capabilities advertises the optional behaviours this backend
	// supports.
	Capabilities() Capability
	// MakeBucket creates a bucket; an existing bucket is ErrExists.
	// (Create also makes buckets implicitly, as RAI pre-creates only a
	// handful of well-known ones.)
	MakeBucket(ctx context.Context, bucket string) error
	// Buckets lists bucket names, sorted.
	Buckets(ctx context.Context) ([]string, error)
	// Create opens a streaming writer for bucket/key. The blob becomes
	// visible (and an event fires) when the writer is closed.
	Create(ctx context.Context, bucket, key string, opts PutOptions) (Writer, error)
	// Open returns a streaming reader and the blob's metadata,
	// refreshing its last-use time (expiry is measured from last use).
	Open(ctx context.Context, bucket, key string) (io.ReadCloser, Info, error)
	// Stat returns metadata without touching last-use.
	Stat(ctx context.Context, bucket, key string) (Info, error)
	// Touch refreshes last-use without reading content.
	Touch(ctx context.Context, bucket, key string) error
	// List returns metadata for keys under prefix, sorted by key.
	// Expired blobs are excluded (and lazily collected).
	List(ctx context.Context, bucket, prefix string) ([]Info, error)
	// Remove deletes a blob.
	Remove(ctx context.Context, bucket, key string) error
	// Used reports total stored bytes.
	Used(ctx context.Context) (int64, error)
	// Sweep collects expired blobs and reports how many were removed.
	Sweep(ctx context.Context) (int, error)
	// Watch subscribes to this backend's events, filtered to bucket
	// ("" = all buckets). ErrNoCapability when CapWatch is absent. The
	// subscription closes when ctx is canceled or Close is called.
	Watch(ctx context.Context, bucket string) (*Subscription, error)
	// Close releases the backend; watch subscriptions are closed.
	Close() error
}

// Appender is the optional append port (CapAppend): journal-style
// callers extend a blob without rewriting it. Size and Modified update
// when the returned writer closes; ETag becomes "" (unknown) because
// the content was not re-hashed.
type Appender interface {
	Append(ctx context.Context, bucket, key string) (io.WriteCloser, error)
}

// ValidBucket reports whether b is a legal bucket name: 1-63 runes of
// [a-z0-9.-].
func ValidBucket(b string) bool {
	if b == "" || len(b) > 63 {
		return false
	}
	for _, r := range b {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

// ValidKey reports whether k is a legal object key: non-empty, at most
// 512 bytes, relative, and free of empty/dot path segments.
func ValidKey(k string) bool {
	if k == "" || len(k) > 512 || strings.HasPrefix(k, "/") {
		return false
	}
	for _, seg := range strings.Split(k, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
	}
	return true
}

// Option configures a backend at construction.
type Option func(*config)

type config struct {
	capacity int64
	defTTL   time.Duration
	clk      clock.Clock
	watchBuf int
}

func newConfig(opts []Option) config {
	cfg := config{clk: clock.Real{}, watchBuf: defaultWatchBuffer}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithCapacity bounds total stored bytes (0 = unlimited). Streaming
// writers that cross the bound fail mid-write with ErrQuota.
func WithCapacity(n int64) Option { return func(c *config) { c.capacity = n } }

// WithDefaultTTL sets the lifetime applied when PutOptions.TTL is zero.
func WithDefaultTTL(d time.Duration) Option { return func(c *config) { c.defTTL = d } }

// WithClock substitutes the time source (virtual in tests).
func WithClock(clk clock.Clock) Option { return func(c *config) { c.clk = clk } }

// WithWatchBuffer sets the per-subscription event buffer; a subscriber
// that falls further behind drops events (counted on the
// Subscription).
func WithWatchBuffer(n int) Option { return func(c *config) { c.watchBuf = n } }
