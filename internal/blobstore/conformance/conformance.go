// Package conformance is the executable contract for blobstore
// backends: one suite of behavioural tests that every Backend
// implementation — memory, disk, and any future engine (the ROADMAP's
// indexed/content-addressed stores) — must pass identically, run under
// -race by the blobstore package tests. A new backend earns its way
// into raifs/raidb by passing this suite, not by code review alone.
package conformance

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"rai/internal/blobstore"
	"rai/internal/clock"
)

// Suite runs the backend contract. New builds a fresh, empty backend
// for one subtest, honouring the supplied options (capacity, TTL) and
// wiring the returned virtual clock as its time source.
type Suite struct {
	New func(t *testing.T, opts ...blobstore.Option) (blobstore.Backend, *clock.Virtual)
	// CheckClean, optional, asserts the backend left no stray artifacts
	// (temp files, orphan sidecars) after aborted or failed writes.
	CheckClean func(t *testing.T, be blobstore.Backend)
}

// start is the virtual timeline origin for every subtest.
var start = time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC)

// The suite drives backends synchronously from tests; there is no
// caller context to inherit.
//
//lint:ignore ctxbg conformance subtests have no caller context; cancellation is exercised explicitly via WithCancel
var testCtx = context.Background()

// NewVirtual returns a clock positioned at the suite's timeline origin;
// factories use it so every backend ticks from the same instant.
func NewVirtual() *clock.Virtual { return clock.NewVirtual(start) }

func put(t *testing.T, be blobstore.Backend, bucket, key string, data []byte, ttl time.Duration) blobstore.Info {
	t.Helper()
	w, err := be.Create(testCtx, bucket, key, blobstore.PutOptions{TTL: ttl})
	if err != nil {
		t.Fatalf("Create(%s/%s): %v", bucket, key, err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatalf("Write(%s/%s): %v", bucket, key, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close(%s/%s): %v", bucket, key, err)
	}
	return w.Info()
}

func get(t *testing.T, be blobstore.Backend, bucket, key string) []byte {
	t.Helper()
	rc, _, err := be.Open(testCtx, bucket, key)
	if err != nil {
		t.Fatalf("Open(%s/%s): %v", bucket, key, err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read %s/%s: %v", bucket, key, err)
	}
	return data
}

// Run executes every contract subtest against fresh backends.
func (s Suite) Run(t *testing.T) {
	ctx := testCtx

	t.Run("StreamingRoundTrip", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		// Write in many small chunks; a streaming backend must not care
		// about chunking, and the hash must cover the concatenation.
		w, err := be.Create(ctx, "b", "team1/j1/project.tar.bz2", blobstore.PutOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		for i := 0; i < 100; i++ {
			chunk := bytes.Repeat([]byte{byte(i)}, 1000)
			want.Write(chunk)
			if _, err := w.Write(chunk); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		info := w.Info()
		if info.Size != int64(want.Len()) {
			t.Errorf("Info().Size = %d, want %d", info.Size, want.Len())
		}
		if info.ETag == "" {
			t.Error("Info().ETag empty after commit")
		}
		got := get(t, be, "b", "team1/j1/project.tar.bz2")
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("round-trip mismatch: got %d bytes, want %d", len(got), want.Len())
		}
		st, err := be.Stat(ctx, "b", "team1/j1/project.tar.bz2")
		if err != nil || st.ETag != info.ETag {
			t.Errorf("Stat = %+v, %v; want ETag %s", st, err, info.ETag)
		}
	})

	t.Run("NothingVisibleUntilClose", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		w, err := be.Create(ctx, "b", "k", blobstore.PutOptions{})
		if err != nil {
			t.Fatal(err)
		}
		_, _ = w.Write([]byte("partial"))
		if _, err := be.Stat(ctx, "b", "k"); !errors.Is(err, blobstore.ErrNotFound) && !errors.Is(err, blobstore.ErrNoBucket) {
			t.Errorf("uncommitted blob visible: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := be.Stat(ctx, "b", "k"); err != nil {
			t.Errorf("committed blob missing: %v", err)
		}
	})

	t.Run("AbortCleansUpPartialWrite", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		put(t, be, "b", "keep", []byte("keep"), 0)
		w, err := be.Create(ctx, "b", "torn", blobstore.PutOptions{})
		if err != nil {
			t.Fatal(err)
		}
		_, _ = w.Write(bytes.Repeat([]byte("x"), 10000))
		if err := w.Abort(); err != nil {
			t.Fatalf("Abort: %v", err)
		}
		if _, err := be.Stat(ctx, "b", "torn"); !errors.Is(err, blobstore.ErrNotFound) {
			t.Errorf("aborted blob visible: %v", err)
		}
		if used, _ := be.Used(ctx); used != 4 {
			t.Errorf("Used = %d after abort, want 4", used)
		}
		if s.CheckClean != nil {
			s.CheckClean(t, be)
		}
	})

	t.Run("AbortAfterOverwriteKeepsOriginal", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		put(t, be, "b", "k", []byte("v1"), 0)
		w, err := be.Create(ctx, "b", "k", blobstore.PutOptions{})
		if err != nil {
			t.Fatal(err)
		}
		_, _ = w.Write([]byte("v2-partial"))
		w.Abort()
		if got := get(t, be, "b", "k"); string(got) != "v1" {
			t.Errorf("original clobbered by aborted overwrite: %q", got)
		}
		if s.CheckClean != nil {
			s.CheckClean(t, be)
		}
	})

	t.Run("OverwriteIsCopyOnWrite", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		put(t, be, "b", "k", []byte("first version"), 0)
		rc, _, err := be.Open(ctx, "b", "k")
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		put(t, be, "b", "k", []byte("second version, longer"), 0)
		// The reader opened before the overwrite still sees the content
		// it opened (immutable buffers in memory, held fd on disk).
		old, err := io.ReadAll(rc)
		if err != nil || string(old) != "first version" {
			t.Errorf("pre-overwrite reader = %q, %v; want %q", old, err, "first version")
		}
		if got := get(t, be, "b", "k"); string(got) != "second version, longer" {
			t.Errorf("post-overwrite read = %q", got)
		}
	})

	t.Run("RemoveDuringReadKeepsStream", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		payload := bytes.Repeat([]byte("stream"), 500)
		put(t, be, "b", "k", payload, 0)
		rc, _, err := be.Open(ctx, "b", "k")
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		if err := be.Remove(ctx, "b", "k"); err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(rc)
		if err != nil || !bytes.Equal(got, payload) {
			t.Errorf("in-flight read after remove: %d bytes, %v", len(got), err)
		}
	})

	t.Run("TTLExpiryFromLastUse", func(t *testing.T) {
		be, vc := s.New(t)
		defer be.Close()
		put(t, be, "b", "k", []byte("v"), time.Hour)
		vc.Advance(30 * time.Minute)
		get(t, be, "b", "k") // refreshes last-use
		vc.Advance(45 * time.Minute)
		if _, err := be.Stat(ctx, "b", "k"); err != nil {
			t.Errorf("blob expired despite refresh: %v", err)
		}
		vc.Advance(2 * time.Hour)
		if _, err := be.Stat(ctx, "b", "k"); !errors.Is(err, blobstore.ErrNotFound) {
			t.Errorf("expired blob still visible: %v", err)
		}
		if used, _ := be.Used(ctx); used != 0 {
			t.Errorf("Used = %d after expiry", used)
		}
	})

	t.Run("TouchRefreshes", func(t *testing.T) {
		be, vc := s.New(t)
		defer be.Close()
		put(t, be, "b", "k", []byte("v"), time.Hour)
		vc.Advance(50 * time.Minute)
		if err := be.Touch(ctx, "b", "k"); err != nil {
			t.Fatal(err)
		}
		vc.Advance(50 * time.Minute)
		if _, err := be.Stat(ctx, "b", "k"); err != nil {
			t.Errorf("blob expired despite touch: %v", err)
		}
	})

	t.Run("DefaultTTLApplied", func(t *testing.T) {
		be, vc := s.New(t, blobstore.WithDefaultTTL(time.Hour))
		defer be.Close()
		info := put(t, be, "b", "k", []byte("v"), 0)
		if info.TTL != time.Hour {
			t.Errorf("TTL = %v, want default 1h", info.TTL)
		}
		vc.Advance(2 * time.Hour)
		if n, _ := be.Sweep(ctx); n != 1 {
			t.Errorf("Sweep = %d, want 1", n)
		}
	})

	t.Run("SweepCollectsExpired", func(t *testing.T) {
		be, vc := s.New(t)
		defer be.Close()
		put(t, be, "b", "short", []byte("1"), time.Hour)
		put(t, be, "b", "long", []byte("22"), 100*time.Hour)
		put(t, be, "b", "forever", []byte("333"), 0)
		vc.Advance(2 * time.Hour)
		if n, _ := be.Sweep(ctx); n != 1 {
			t.Errorf("Sweep = %d, want 1", n)
		}
		if used, _ := be.Used(ctx); used != 5 {
			t.Errorf("Used = %d after sweep, want 5", used)
		}
	})

	t.Run("ListPrefixSorted", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		for _, k := range []string{"t2/b", "t1/z", "t1/a", "other"} {
			put(t, be, "b", k, []byte(k), 0)
		}
		infos, err := be.List(ctx, "b", "t1/")
		if err != nil || len(infos) != 2 {
			t.Fatalf("List = %d infos, %v", len(infos), err)
		}
		if infos[0].Key != "t1/a" || infos[1].Key != "t1/z" {
			t.Errorf("List order = %s, %s", infos[0].Key, infos[1].Key)
		}
	})

	t.Run("CapacityEnforced", func(t *testing.T) {
		be, _ := s.New(t, blobstore.WithCapacity(100))
		defer be.Close()
		put(t, be, "b", "a", bytes.Repeat([]byte("x"), 60), 0)
		// A stream that would cross the cap fails mid-write or at commit
		// with ErrQuota, and leaves nothing visible.
		w, err := be.Create(ctx, "b", "big", blobstore.PutOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var werr error
		for i := 0; i < 60 && werr == nil; i++ {
			_, werr = w.Write([]byte("y"))
		}
		if werr == nil {
			werr = w.Close()
		} else {
			w.Abort()
		}
		if !errors.Is(werr, blobstore.ErrQuota) {
			t.Errorf("over-capacity write error = %v, want ErrQuota", werr)
		}
		if _, err := be.Stat(ctx, "b", "big"); !errors.Is(err, blobstore.ErrNotFound) {
			t.Errorf("failed write visible: %v", err)
		}
		// Replacing an existing blob frees its old size first.
		put(t, be, "b", "a", bytes.Repeat([]byte("z"), 90), 0)
		if s.CheckClean != nil {
			s.CheckClean(t, be)
		}
	})

	t.Run("NameValidationAndErrors", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		for _, bad := range [][2]string{
			{"UPPER", "k"}, {"", "k"}, {"b", ""}, {"b", "/abs"}, {"b", "a//b"}, {"b", "a/../b"},
			{strings.Repeat("b", 64), "k"}, {"b", strings.Repeat("k", 513)},
		} {
			if _, err := be.Create(ctx, bad[0], bad[1], blobstore.PutOptions{}); !errors.Is(err, blobstore.ErrBadName) {
				t.Errorf("Create(%q/%q) = %v, want ErrBadName", bad[0], bad[1], err)
			}
		}
		if _, _, err := be.Open(ctx, "nope", "k"); !errors.Is(err, blobstore.ErrNoBucket) {
			t.Errorf("missing bucket = %v, want ErrNoBucket", err)
		}
		put(t, be, "b", "k", []byte("v"), 0)
		if _, _, err := be.Open(ctx, "b", "missing"); !errors.Is(err, blobstore.ErrNotFound) {
			t.Errorf("missing key = %v, want ErrNotFound", err)
		}
		if err := be.MakeBucket(ctx, "b2"); err != nil {
			t.Fatal(err)
		}
		if err := be.MakeBucket(ctx, "b2"); !errors.Is(err, blobstore.ErrExists) {
			t.Errorf("duplicate MakeBucket = %v, want ErrExists", err)
		}
		names, err := be.Buckets(ctx)
		if err != nil || len(names) != 2 || names[0] != "b" || names[1] != "b2" {
			t.Errorf("Buckets = %v, %v", names, err)
		}
	})

	t.Run("ContextCancellation", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		canceled, cancel := context.WithCancel(testCtx)
		cancel()
		if _, err := be.Create(canceled, "b", "k", blobstore.PutOptions{}); !errors.Is(err, context.Canceled) {
			t.Errorf("Create with canceled ctx = %v", err)
		}
		if _, _, err := be.Open(canceled, "b", "k"); !errors.Is(err, context.Canceled) {
			t.Errorf("Open with canceled ctx = %v", err)
		}
	})

	t.Run("WatchDeliveryOrder", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		if !be.Capabilities().Has(blobstore.CapWatch) {
			t.Skip("backend does not watch")
		}
		sub, err := be.Watch(ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		put(t, be, "b", "k1", []byte("v1"), 0)
		put(t, be, "b", "k1", []byte("v2"), 0)
		put(t, be, "b", "k2", []byte("v3"), 0)
		_ = be.Remove(ctx, "b", "k1")
		want := []struct {
			op  blobstore.Op
			key string
		}{
			{blobstore.OpCreate, "k1"},
			{blobstore.OpUpdate, "k1"},
			{blobstore.OpCreate, "k2"},
			{blobstore.OpDelete, "k1"},
		}
		var lastSeq uint64
		for i, w := range want {
			ev := <-sub.C()
			if ev.Op != w.op || ev.Key != w.key {
				t.Fatalf("event %d = %s %s/%s, want %s %s", i, ev.Op, ev.Bucket, ev.Key, w.op, w.key)
			}
			if ev.Seq <= lastSeq {
				t.Fatalf("event %d: seq %d not increasing past %d", i, ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
		}
		if n := sub.Dropped(); n != 0 {
			t.Errorf("Dropped = %d", n)
		}
	})

	t.Run("WatchBucketFilterAndCancel", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		if !be.Capabilities().Has(blobstore.CapWatch) {
			t.Skip("backend does not watch")
		}
		wctx, wcancel := context.WithCancel(testCtx)
		sub, err := be.Watch(wctx, "wanted")
		if err != nil {
			t.Fatal(err)
		}
		put(t, be, "ignored", "k", []byte("v"), 0)
		put(t, be, "wanted", "k", []byte("v"), 0)
		ev := <-sub.C()
		if ev.Bucket != "wanted" {
			t.Errorf("filtered watch delivered bucket %q", ev.Bucket)
		}
		wcancel()
		// Cancellation closes the channel (possibly after in-flight
		// events drain).
		for range sub.C() {
		}
	})

	t.Run("WatchExpiryEmitsDelete", func(t *testing.T) {
		be, vc := s.New(t)
		defer be.Close()
		if !be.Capabilities().Has(blobstore.CapWatch) {
			t.Skip("backend does not watch")
		}
		sub, err := be.Watch(ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		put(t, be, "b", "k", []byte("v"), time.Hour)
		vc.Advance(2 * time.Hour)
		_, _ = be.Sweep(ctx)
		if ev := <-sub.C(); ev.Op != blobstore.OpCreate {
			t.Fatalf("first event %s", ev.Op)
		}
		if ev := <-sub.C(); ev.Op != blobstore.OpDelete || ev.Key != "k" {
			t.Errorf("sweep event = %s %s", ev.Op, ev.Key)
		}
	})

	t.Run("AppendExtends", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		app, ok := be.(blobstore.Appender)
		if !ok || !be.Capabilities().Has(blobstore.CapAppend) {
			t.Skip("backend does not append")
		}
		put(t, be, "b", "journal", []byte("line1\n"), 0)
		w, err := app.Append(ctx, "b", "journal")
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprint(w, "line2\n")
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if got := get(t, be, "b", "journal"); string(got) != "line1\nline2\n" {
			t.Errorf("after append: %q", got)
		}
		st, _ := be.Stat(ctx, "b", "journal")
		if st.Size != 12 || st.ETag != "" {
			t.Errorf("append Stat = %+v, want size 12 and unknown ETag", st)
		}
		// Append to a missing key creates it.
		w2, err := app.Append(ctx, "b", "fresh")
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprint(w2, "first\n")
		w2.Close()
		if got := get(t, be, "b", "fresh"); string(got) != "first\n" {
			t.Errorf("append-created blob: %q", got)
		}
	})

	t.Run("ConcurrentMixedOps", func(t *testing.T) {
		be, _ := s.New(t)
		defer be.Close()
		// Hammer one backend from many goroutines; the -race run of this
		// subtest is the concurrency part of the contract.
		done := make(chan error, 8)
		for g := 0; g < 8; g++ {
			g := g
			go func() {
				done <- func() error {
					for i := 0; i < 50; i++ {
						key := fmt.Sprintf("t%d/obj%d", g, i%10)
						payload := bytes.Repeat([]byte{byte(g)}, 100+i)
						w, err := be.Create(ctx, "b", key, blobstore.PutOptions{})
						if err != nil {
							return err
						}
						if _, err := w.Write(payload); err != nil {
							w.Abort()
							return err
						}
						if err := w.Close(); err != nil {
							return err
						}
						rc, _, err := be.Open(ctx, "b", key)
						if err != nil {
							return err
						}
						got, err := io.ReadAll(rc)
						rc.Close()
						if err != nil {
							return err
						}
						if len(got) == 0 {
							return fmt.Errorf("empty read for %s", key)
						}
						if _, err := be.List(ctx, "b", fmt.Sprintf("t%d/", g)); err != nil {
							return err
						}
					}
					return nil
				}()
			}()
		}
		for g := 0; g < 8; g++ {
			if err := <-done; err != nil {
				t.Error(err)
			}
		}
	})

	t.Run("SweepUnderConcurrentCreate", func(t *testing.T) {
		// Sweeping while writers stream must neither collect a blob that
		// is being (re)written nor corrupt the byte accounting: after the
		// dust settles, Used must equal the sum of surviving blob sizes.
		be, vc := s.New(t)
		defer be.Close()
		for i := 0; i < 20; i++ {
			put(t, be, "b", fmt.Sprintf("old/%02d", i), []byte("stale!"), time.Hour)
		}
		vc.Advance(2 * time.Hour) // every old/ blob is now expired
		done := make(chan error, 4)
		for g := 0; g < 4; g++ {
			g := g
			go func() {
				done <- func() error {
					for i := 0; i < 25; i++ {
						key := fmt.Sprintf("new/%d-%02d", g, i)
						w, err := be.Create(testCtx, "b", key, blobstore.PutOptions{TTL: time.Hour})
						if err != nil {
							return err
						}
						if _, err := w.Write(bytes.Repeat([]byte("n"), 64)); err != nil {
							w.Abort()
							return err
						}
						if err := w.Close(); err != nil {
							return err
						}
					}
					return nil
				}()
			}()
		}
		swept := 0
		for i := 0; i < 10; i++ {
			n, err := be.Sweep(testCtx)
			if err != nil {
				t.Fatal(err)
			}
			swept += n
		}
		for g := 0; g < 4; g++ {
			if err := <-done; err != nil {
				t.Error(err)
			}
		}
		if n, err := be.Sweep(testCtx); err != nil {
			t.Fatal(err)
		} else {
			swept += n
		}
		if swept != 20 {
			t.Errorf("sweeps collected %d blobs, want exactly the 20 expired", swept)
		}
		infos, err := be.List(testCtx, "b", "")
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, info := range infos {
			if strings.HasPrefix(info.Key, "old/") {
				t.Errorf("expired blob %s survived sweep", info.Key)
			}
			total += info.Size
		}
		if len(infos) != 100 {
			t.Errorf("surviving blobs = %d, want 100", len(infos))
		}
		if used, _ := be.Used(testCtx); used != total {
			t.Errorf("Used = %d, sum of listed sizes = %d", used, total)
		}
	})

	t.Run("TouchAtomicUnderConcurrentWrites", func(t *testing.T) {
		// Touch must read-and-refresh in one critical section: racing it
		// against overwrites of the same key must never resurrect stale
		// metadata (e.g. the pre-overwrite size) or lose the overwrite.
		be, _ := s.New(t)
		defer be.Close()
		put(t, be, "b", "k", bytes.Repeat([]byte("a"), 10), time.Hour)
		done := make(chan error, 2)
		go func() {
			done <- func() error {
				for i := 0; i < 100; i++ {
					size := 10 + i%7
					w, err := be.Create(testCtx, "b", "k", blobstore.PutOptions{TTL: time.Hour})
					if err != nil {
						return err
					}
					if _, err := w.Write(bytes.Repeat([]byte("b"), size)); err != nil {
						w.Abort()
						return err
					}
					if err := w.Close(); err != nil {
						return err
					}
				}
				return nil
			}()
		}()
		go func() {
			done <- func() error {
				for i := 0; i < 100; i++ {
					if err := be.Touch(testCtx, "b", "k"); err != nil {
						return err
					}
				}
				return nil
			}()
		}()
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil {
				t.Error(err)
			}
		}
		st, err := be.Stat(testCtx, "b", "k")
		if err != nil {
			t.Fatal(err)
		}
		if st.Size != 10+99%7 {
			t.Errorf("final Size = %d, want the last overwrite's %d", st.Size, 10+99%7)
		}
		if used, _ := be.Used(testCtx); used != st.Size {
			t.Errorf("Used = %d, want %d (single blob)", used, st.Size)
		}
	})
}
