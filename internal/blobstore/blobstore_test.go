package blobstore_test

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rai/internal/blobstore"
	"rai/internal/blobstore/conformance"
	"rai/internal/clock"
)

// The conformance suite is the real test body; each backend (and the
// mount table wrapping one) must pass it identically.

func memoryFactory(t *testing.T, opts ...blobstore.Option) (blobstore.Backend, *clock.Virtual) {
	t.Helper()
	vc := conformance.NewVirtual()
	return blobstore.NewMemory(append(opts, blobstore.WithClock(vc))...), vc
}

func TestMemoryConformance(t *testing.T) {
	conformance.Suite{New: memoryFactory}.Run(t)
}

func TestDiskConformance(t *testing.T) {
	conformance.Suite{
		New: func(t *testing.T, opts ...blobstore.Option) (blobstore.Backend, *clock.Virtual) {
			t.Helper()
			vc := conformance.NewVirtual()
			d, err := blobstore.NewDisk(t.TempDir(), append(opts, blobstore.WithClock(vc))...)
			if err != nil {
				t.Fatal(err)
			}
			return d, vc
		},
		CheckClean: func(t *testing.T, be blobstore.Backend) {
			t.Helper()
			root := be.(*blobstore.Disk).Root()
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() && strings.HasPrefix(d.Name(), "%tmp-") {
					t.Errorf("stray temp file %s", path)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		},
	}.Run(t)
}

func TestTableConformance(t *testing.T) {
	// A table with a mount still has to behave like a plain backend for
	// buckets the suite touches (all routed to the default here).
	conformance.Suite{
		New: func(t *testing.T, opts ...blobstore.Option) (blobstore.Backend, *clock.Virtual) {
			t.Helper()
			vc := conformance.NewVirtual()
			withClock := append(opts, blobstore.WithClock(vc))
			tab := blobstore.NewTable(blobstore.NewMemory(withClock...))
			if err := tab.Mount("mounted-", blobstore.NewMemory(withClock...)); err != nil {
				t.Fatal(err)
			}
			return tab, vc
		},
	}.Run(t)
}

func TestDiskReloadIndexesWithoutData(t *testing.T) {
	dir := t.TempDir()
	d, err := blobstore.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.Create(context.Background(), "b", "team/archive", blobstore.PutOptions{TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, "payload bytes")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want := w.Info()
	d.Close()

	d2, err := blobstore.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.Stat(context.Background(), "b", "team/archive")
	if err != nil {
		t.Fatal(err)
	}
	if got.ETag != want.ETag || got.Size != want.Size || got.TTL != time.Hour {
		t.Errorf("reloaded info = %+v, want %+v", got, want)
	}
	rc, _, err := d2.Open(context.Background(), "b", "team/archive")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	data, _ := io.ReadAll(rc)
	if string(data) != "payload bytes" {
		t.Errorf("reloaded content = %q", data)
	}
}

func TestDiskReloadCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	os.MkdirAll(filepath.Join(dir, "b"), 0o755)
	os.WriteFile(filepath.Join(dir, "b", "%tmp-12345"), []byte("torn write"), 0o600)
	d, err := blobstore.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := os.Stat(filepath.Join(dir, "b", "%tmp-12345")); !errors.Is(err, os.ErrNotExist) {
		t.Error("crashed writer's temp file survived reload")
	}
	if used, _ := d.Used(context.Background()); used != 0 {
		t.Errorf("Used = %d, temp file counted", used)
	}
}

func TestDiskRejectsMissingOrCorruptMeta(t *testing.T) {
	dir := t.TempDir()
	os.MkdirAll(filepath.Join(dir, "b"), 0o755)
	os.WriteFile(filepath.Join(dir, "b", "obj"), []byte("data"), 0o600)
	if _, err := blobstore.NewDisk(dir); err == nil {
		t.Fatal("blob without metadata accepted")
	}
	os.WriteFile(filepath.Join(dir, "b", "obj.meta"), []byte("{not json"), 0o600)
	if _, err := blobstore.NewDisk(dir); err == nil {
		t.Fatal("corrupt metadata accepted")
	}
}

func TestDiskAdoptMigratesFlatFile(t *testing.T) {
	dir := t.TempDir()
	legacy := filepath.Join(dir, "rai.journal")
	os.WriteFile(legacy, []byte("line1\nline2\n"), 0o600)
	d, err := blobstore.NewDisk(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	info, err := d.Adopt(context.Background(), "journal", "rai.journal", legacy)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 12 {
		t.Errorf("adopted size = %d", info.Size)
	}
	if _, err := os.Stat(legacy); !errors.Is(err, os.ErrNotExist) {
		t.Error("legacy file still present after adoption")
	}
	rc, _, err := d.Open(context.Background(), "journal", "rai.journal")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	data, _ := io.ReadAll(rc)
	if string(data) != "line1\nline2\n" {
		t.Errorf("adopted content = %q", data)
	}
	// The adopted blob survives a reload like any native one.
	d.Close()
	d2, err := blobstore.NewDisk(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := d2.Stat(context.Background(), "journal", "rai.journal"); err != nil {
		t.Errorf("adopted blob lost on reload: %v", err)
	}
}

func TestMountRoutingLongestPrefixWins(t *testing.T) {
	def := blobstore.NewMemory()
	cold := blobstore.NewMemory()
	colder := blobstore.NewMemory()
	tab := blobstore.NewTable(def)
	if err := tab.Mount("cold-", cold); err != nil {
		t.Fatal(err)
	}
	if err := tab.Mount("cold-deep-", colder); err != nil {
		t.Fatal(err)
	}
	if err := tab.Mount("cold-", cold); !errors.Is(err, blobstore.ErrExists) {
		t.Errorf("duplicate mount = %v, want ErrExists", err)
	}

	ctx := context.Background()
	writeTo := func(bucket string) {
		w, err := tab.Create(ctx, bucket, "k", blobstore.PutOptions{})
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(w, bucket)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeTo("hot")
	writeTo("cold-a")
	writeTo("cold-deep-b")

	// Each blob landed on exactly the backend its prefix routes to.
	for _, tc := range []struct {
		be     blobstore.Backend
		bucket string
	}{{def, "hot"}, {cold, "cold-a"}, {colder, "cold-deep-b"}} {
		if _, err := tc.be.Stat(ctx, tc.bucket, "k"); err != nil {
			t.Errorf("bucket %q missing from its routed backend: %v", tc.bucket, err)
		}
	}
	if _, err := cold.Stat(ctx, "cold-deep-b", "k"); !errors.Is(err, blobstore.ErrNoBucket) {
		t.Error("longest-prefix mount did not win over shorter one")
	}

	// Reads route the same way, and the union view sees everything.
	rc, _, err := tab.Open(ctx, "cold-deep-b", "k")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if string(data) != "cold-deep-b" {
		t.Errorf("routed read = %q", data)
	}
	names, err := tab.Buckets(ctx)
	if err != nil || len(names) != 3 {
		t.Errorf("union Buckets = %v, %v", names, err)
	}
	used, err := tab.Used(ctx)
	if err != nil || used != int64(len("hot")+len("cold-a")+len("cold-deep-b")) {
		t.Errorf("summed Used = %d, %v", used, err)
	}
}

func TestMountRoutingMixedBackends(t *testing.T) {
	mem := blobstore.NewMemory()
	disk, err := blobstore.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tab := blobstore.NewTable(mem)
	if err := tab.Mount("durable-", disk); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w, err := tab.Create(ctx, "durable-uploads", "team/a.tar.bz2", blobstore.PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, "archive")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The bytes are on disk, not in the memory backend.
	if _, err := os.Stat(filepath.Join(disk.Root(), "durable-uploads")); err != nil {
		t.Errorf("disk mount did not persist: %v", err)
	}
	if _, err := mem.Stat(ctx, "durable-uploads", "team/a.tar.bz2"); !errors.Is(err, blobstore.ErrNoBucket) {
		t.Error("default backend received routed write")
	}
	// Capability negotiation: the intersection loses disk-only
	// atomic-rename, per-bucket lookup keeps it.
	if tab.Capabilities().Has(blobstore.CapAtomicRename) {
		t.Error("intersection kept a capability the memory default lacks")
	}
	if !tab.CapabilitiesFor("durable-uploads").Has(blobstore.CapAtomicRename) {
		t.Error("per-bucket capabilities lost the disk mount's atomic rename")
	}
}

// capMask hides capabilities to exercise degradation paths.
type capMask struct {
	blobstore.Backend
	caps blobstore.Capability
}

func (c capMask) Capabilities() blobstore.Capability { return c.caps }

func TestTableDegradesWithoutCapability(t *testing.T) {
	mem := blobstore.NewMemory()
	tab := blobstore.NewTable(capMask{Backend: mem, caps: blobstore.CapStream})
	ctx := context.Background()
	if _, err := tab.Watch(ctx, "b"); !errors.Is(err, blobstore.ErrNoCapability) {
		t.Errorf("Watch without CapWatch = %v", err)
	}
	if _, err := tab.Append(ctx, "b", "k"); !errors.Is(err, blobstore.ErrNoCapability) {
		t.Errorf("Append without CapAppend = %v", err)
	}
}

func TestWatchSlowSubscriberDropsNotBlocks(t *testing.T) {
	mem := blobstore.NewMemory(blobstore.WithWatchBuffer(2))
	ctx := context.Background()
	sub, err := mem.Watch(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 5; i++ {
		w, _ := mem.Create(ctx, "b", "k", blobstore.PutOptions{})
		io.WriteString(w, "v")
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sub.Dropped(); got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
	// The two buffered events are still delivered, in order.
	first := <-sub.C()
	second := <-sub.C()
	if first.Seq >= second.Seq {
		t.Errorf("buffered events out of order: %d then %d", first.Seq, second.Seq)
	}
}

func TestBackendCloseEndsSubscriptions(t *testing.T) {
	mem := blobstore.NewMemory()
	sub, err := mem.Watch(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	mem.Close()
	if _, ok := <-sub.C(); ok {
		t.Error("subscription channel still open after backend Close")
	}
	if _, err := mem.Stat(context.Background(), "b", "k"); !errors.Is(err, blobstore.ErrClosed) {
		t.Errorf("Stat after Close = %v, want ErrClosed", err)
	}
}

func TestCapabilityString(t *testing.T) {
	caps := blobstore.CapStream | blobstore.CapWatch
	if got := caps.String(); got != "stream,watch" {
		t.Errorf("String = %q", got)
	}
	if got := blobstore.Capability(0).String(); got != "none" {
		t.Errorf("zero String = %q", got)
	}
}
