package blobstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// entry is one blob in the metadata index. data carries the payload for
// the memory backend and is nil for disk; committed slices are
// immutable (copy-on-write), so readers may alias them without a lock.
type entry struct {
	info Info
	data []byte
}

// index is the metadata plane shared by the memory and disk backends:
// bucket/key maps, byte accounting against an optional capacity,
// last-use TTL bookkeeping, and the watch hub. The data plane differs
// per backend (heap buffers vs files); everything else lives here once,
// which is what lets objstore and docstore delete their duplicated
// persistence code.
type index struct {
	// mu also orders watch emission: hub.emit is called while it is
	// held, so subscribers observe events in operation order.
	mu      sync.Mutex
	cfg     config
	buckets map[string]map[string]*entry
	used    int64
	closed  bool
	hub     hub
	// drop releases an entry's durable data (disk unlinks files); called
	// with mu held whenever an entry leaves the index via remove, sweep,
	// or lazy expiry.
	drop func(bucket, key string)
}

func newIndex(cfg config) *index {
	return &index{cfg: cfg, buckets: map[string]map[string]*entry{}}
}

func (x *index) now() time.Time { return x.cfg.clk.Now() }

func (x *index) ttlOrDefault(d time.Duration) time.Duration {
	if d == 0 {
		return x.cfg.defTTL
	}
	return d
}

func checkBucket(bucket string) error {
	if !ValidBucket(bucket) {
		return fmt.Errorf("%w: bucket %q", ErrBadName, bucket)
	}
	return nil
}

func checkNames(bucket, key string) error {
	if !ValidBucket(bucket) || !ValidKey(key) {
		return fmt.Errorf("%w: %q/%q", ErrBadName, bucket, key)
	}
	return nil
}

func (x *index) makeBucket(bucket string) error {
	if err := checkBucket(bucket); err != nil {
		return err
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return ErrClosed
	}
	if _, ok := x.buckets[bucket]; ok {
		return fmt.Errorf("%w: %q", ErrExists, bucket)
	}
	x.buckets[bucket] = map[string]*entry{}
	return nil
}

func (x *index) bucketNames() []string {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]string, 0, len(x.buckets))
	for b := range x.buckets {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// lookupLocked finds a live entry, lazily collecting it if expired.
func (x *index) lookupLocked(bucket, key string) (*entry, error) {
	bk, ok := x.buckets[bucket]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBucket, bucket)
	}
	e, ok := bk[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q/%q", ErrNotFound, bucket, key)
	}
	if x.expiredLocked(e) {
		x.removeEntryLocked(bucket, key, e)
		return nil, fmt.Errorf("%w: %q/%q (expired)", ErrNotFound, bucket, key)
	}
	return e, nil
}

func (x *index) expiredLocked(e *entry) bool {
	return e.info.TTL > 0 && x.now().After(e.info.LastUsed.Add(e.info.TTL))
}

// removeEntryLocked drops an entry from the index, releases its durable
// data, and emits the delete event.
func (x *index) removeEntryLocked(bucket, key string, e *entry) {
	delete(x.buckets[bucket], key)
	x.used -= e.info.Size
	if x.drop != nil {
		x.drop(bucket, key)
	}
	x.hub.emit(OpDelete, bucket, key, e.info.Size)
}

// open returns the entry (for the memory data plane) and a metadata
// copy, refreshing last-use.
func (x *index) open(bucket, key string) (*entry, Info, error) {
	if err := checkNames(bucket, key); err != nil {
		return nil, Info{}, err
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return nil, Info{}, ErrClosed
	}
	e, err := x.lookupLocked(bucket, key)
	if err != nil {
		return nil, Info{}, err
	}
	e.info.LastUsed = x.now()
	return e, e.info, nil
}

func (x *index) stat(bucket, key string) (Info, error) {
	if err := checkNames(bucket, key); err != nil {
		return Info{}, err
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return Info{}, ErrClosed
	}
	e, err := x.lookupLocked(bucket, key)
	if err != nil {
		return Info{}, err
	}
	return e.info, nil
}

func (x *index) touch(bucket, key string) error {
	_, err := x.touchInfo(bucket, key)
	return err
}

// touchInfo refreshes last-use and returns the updated metadata in the
// same critical section, so callers that persist the refresh (the disk
// sidecar write) see exactly the state they produced — a separate
// touch-then-stat pair would leave a window for a concurrent writer or
// expiry to change the entry between the two lock acquisitions.
func (x *index) touchInfo(bucket, key string) (Info, error) {
	if err := checkNames(bucket, key); err != nil {
		return Info{}, err
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return Info{}, ErrClosed
	}
	e, err := x.lookupLocked(bucket, key)
	if err != nil {
		return Info{}, err
	}
	e.info.LastUsed = x.now()
	return e.info, nil
}

func (x *index) list(bucket, prefix string) ([]Info, error) {
	if err := checkBucket(bucket); err != nil {
		return nil, err
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return nil, ErrClosed
	}
	bk, ok := x.buckets[bucket]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBucket, bucket)
	}
	var out []Info
	for key, e := range bk {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		if x.expiredLocked(e) {
			x.removeEntryLocked(bucket, key, e)
			continue
		}
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

func (x *index) remove(bucket, key string) error {
	if err := checkNames(bucket, key); err != nil {
		return err
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return ErrClosed
	}
	bk, ok := x.buckets[bucket]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoBucket, bucket)
	}
	e, ok := bk[key]
	if !ok {
		return fmt.Errorf("%w: %q/%q", ErrNotFound, bucket, key)
	}
	x.removeEntryLocked(bucket, key, e)
	return nil
}

func (x *index) totalUsed() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.used
}

func (x *index) sweep() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return 0
	}
	n := 0
	for bucket, bk := range x.buckets {
		for key, e := range bk {
			if x.expiredLocked(e) {
				x.removeEntryLocked(bucket, key, e)
				n++
			}
		}
	}
	return n
}

// prevSize reports the size an existing blob currently occupies; a
// streaming writer uses it to check quota incrementally as bytes
// arrive (the replacement frees the old copy at commit).
func (x *index) prevSize(bucket, key string) int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	if bk, ok := x.buckets[bucket]; ok {
		if e, ok := bk[key]; ok {
			return e.info.Size
		}
	}
	return 0
}

// overQuota reports whether replacing a blob of prev bytes with n bytes
// would exceed capacity. Advisory during streaming; commit re-checks
// authoritatively under the lock.
func (x *index) overQuota(prev, n int64) bool {
	if x.cfg.capacity <= 0 {
		return false
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.used-prev+n > x.cfg.capacity
}

// commit makes a finished write visible: creates the bucket if needed,
// enforces capacity, replaces any previous entry, and emits the event.
// data is the memory payload (nil for disk). Returns the committed
// info.
func (x *index) commit(info Info, data []byte) (Info, error) {
	return x.commitWith(info, data, nil)
}

// commitWith is commit with a persistence step (the disk rename +
// sidecar write) run under the index lock, after the quota check and
// before the entry becomes visible — so the index never advertises a
// blob whose files are not in place, and a failed rename costs nothing
// but the temp file.
func (x *index) commitWith(info Info, data []byte, persist func() error) (Info, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return Info{}, ErrClosed
	}
	bk, ok := x.buckets[info.Bucket]
	if !ok {
		bk = map[string]*entry{}
		x.buckets[info.Bucket] = bk
	}
	var prev int64
	op := OpCreate
	if old, ok := bk[info.Key]; ok {
		prev = old.info.Size
		op = OpUpdate
	}
	if x.cfg.capacity > 0 && x.used-prev+info.Size > x.cfg.capacity {
		return Info{}, fmt.Errorf("%w: %d bytes requested", ErrQuota, info.Size)
	}
	if persist != nil {
		if err := persist(); err != nil {
			return Info{}, err
		}
	}
	x.used += info.Size - prev
	bk[info.Key] = &entry{info: info, data: data}
	x.hub.emit(op, info.Bucket, info.Key, info.Size)
	return info, nil
}

// appendCommit records an append: the blob grew by delta bytes and its
// hash is no longer known. Creates the entry when the append targeted a
// missing key. Appends are quota-exempt (journals must not lose tail
// writes to a full cache), so only accounting is updated. The updated
// metadata is returned from inside the critical section for callers
// that persist it (same atomicity argument as touchInfo).
func (x *index) appendCommit(bucket, key string, newSize int64, ttl time.Duration) Info {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return Info{}
	}
	bk, ok := x.buckets[bucket]
	if !ok {
		bk = map[string]*entry{}
		x.buckets[bucket] = bk
	}
	now := x.now()
	op := OpUpdate
	e, ok := bk[key]
	if !ok {
		op = OpCreate
		e = &entry{info: Info{Bucket: bucket, Key: key, Modified: now, TTL: x.ttlOrDefault(ttl)}}
		bk[key] = e
	}
	x.used += newSize - e.info.Size
	e.info.Size = newSize
	e.info.ETag = ""
	e.info.Modified = now
	e.info.LastUsed = now
	e.data = nil
	x.hub.emit(op, bucket, key, newSize)
	return e.info
}

// appendData is the memory backend's append: splices extra onto the
// current payload as a fresh slice (copy-on-write preserved for open
// readers) and updates accounting. Quota-exempt, like appendCommit.
func (x *index) appendData(bucket, key string, extra []byte) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return
	}
	bk, ok := x.buckets[bucket]
	if !ok {
		bk = map[string]*entry{}
		x.buckets[bucket] = bk
	}
	now := x.now()
	op := OpUpdate
	e, ok := bk[key]
	if !ok {
		op = OpCreate
		e = &entry{info: Info{Bucket: bucket, Key: key, Modified: now, TTL: x.cfg.defTTL}}
		bk[key] = e
	}
	joined := make([]byte, 0, len(e.data)+len(extra))
	joined = append(append(joined, e.data...), extra...)
	x.used += int64(len(joined)) - e.info.Size
	e.data = joined
	e.info.Size = int64(len(joined))
	e.info.ETag = ""
	e.info.Modified = now
	e.info.LastUsed = now
	x.hub.emit(op, bucket, key, e.info.Size)
}

func (x *index) close() {
	x.mu.Lock()
	x.closed = true
	x.mu.Unlock()
	x.hub.closeAll()
}
