package blobstore

import (
	"context"
	"sync"
	"sync/atomic"
)

// defaultWatchBuffer is the per-subscription event buffer. Events are
// delivered asynchronously; a subscriber that falls further behind than
// this loses the oldest undelivered events (counted, never blocking the
// store's write path).
const defaultWatchBuffer = 256

// Op classifies a watch event.
type Op uint8

const (
	// OpCreate: a blob that did not exist became visible.
	OpCreate Op = iota + 1
	// OpUpdate: an existing blob was overwritten or appended to.
	OpUpdate
	// OpDelete: a blob was removed (explicitly, by sweep, or by lazy
	// TTL expiry).
	OpDelete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Event is one storage mutation. Seq is a per-backend monotonically
// increasing sequence number assigned in operation order, so a
// subscriber can detect gaps after drops.
type Event struct {
	Seq    uint64
	Op     Op
	Bucket string
	Key    string
	Size   int64
}

// Subscription is a watch stream. Receive events from C; Close (or the
// subscribing context's cancellation) ends the stream and closes C.
type Subscription struct {
	h       *hub
	bucket  string
	ch      chan Event
	dropped atomic.Uint64
	// stopAfter detaches the context.AfterFunc cleanup when the
	// subscription is closed explicitly.
	stopAfter func() bool
}

// C returns the event channel. It is closed when the subscription ends.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped reports how many events were discarded because the subscriber
// fell behind the buffer.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close ends the subscription and closes C. Safe to call more than
// once and concurrently with event delivery.
func (s *Subscription) Close() error {
	if s.stopAfter != nil {
		s.stopAfter()
	}
	s.h.unsubscribe(s)
	return nil
}

// hub fans events out to subscriptions. emit is called with the owning
// index's mutex held, which is what guarantees delivery order matches
// operation order; the hub's own lock only protects the subscriber set
// and never calls back into the index.
type hub struct {
	mu     sync.Mutex
	seq    uint64
	subs   map[*Subscription]struct{}
	closed bool
}

func (h *hub) subscribe(ctx context.Context, bucket string, buf int) *Subscription {
	if buf <= 0 {
		buf = defaultWatchBuffer
	}
	s := &Subscription{h: h, bucket: bucket, ch: make(chan Event, buf)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(s.ch)
		return s
	}
	if h.subs == nil {
		h.subs = map[*Subscription]struct{}{}
	}
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	if ctx != nil && ctx.Done() != nil {
		// The callback goes straight to unsubscribe rather than s.Close so
		// it never races with this assignment.
		s.stopAfter = context.AfterFunc(ctx, func() { h.unsubscribe(s) })
	}
	return s
}

func (h *hub) unsubscribe(s *Subscription) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; !ok {
		return
	}
	delete(h.subs, s)
	close(s.ch)
}

// emit assigns the next sequence number and delivers to matching
// subscribers without blocking: a full buffer drops the event for that
// subscriber only.
func (h *hub) emit(op Op, bucket, key string, size int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev := Event{Seq: h.seq, Op: op, Bucket: bucket, Key: key, Size: size}
	for s := range h.subs {
		if s.bucket != "" && s.bucket != bucket {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
		}
	}
}

// closeAll ends every subscription (backend Close).
func (h *hub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		close(s.ch)
	}
}
