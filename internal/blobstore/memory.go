package blobstore

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"time"
)

// Memory is the heap-backed backend. Committed payloads are immutable:
// Open hands out readers that alias the committed slice (no defensive
// copy) and an overwrite commits a fresh slice rather than mutating the
// old one, so readers opened before the overwrite keep seeing the
// content they opened — copy-on-write without ever copying on read.
type Memory struct {
	idx *index
}

// NewMemory creates an empty in-memory backend.
func NewMemory(opts ...Option) *Memory {
	return &Memory{idx: newIndex(newConfig(opts))}
}

// Capabilities implements Backend.
func (m *Memory) Capabilities() Capability { return CapStream | CapWatch | CapAppend }

// MakeBucket implements Backend.
func (m *Memory) MakeBucket(ctx context.Context, bucket string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return m.idx.makeBucket(bucket)
}

// Buckets implements Backend.
func (m *Memory) Buckets(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.idx.bucketNames(), nil
}

// Create implements Backend.
func (m *Memory) Create(ctx context.Context, bucket, key string, opts PutOptions) (Writer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := checkNames(bucket, key); err != nil {
		return nil, err
	}
	return &memWriter{
		idx: m.idx, bucket: bucket, key: key,
		ttl:  m.idx.ttlOrDefault(opts.TTL),
		prev: m.idx.prevSize(bucket, key),
		hash: sha256.New(),
	}, nil
}

// Open implements Backend. The reader aliases the committed buffer;
// because commits replace rather than mutate it, the reader stays
// consistent even if the blob is overwritten or removed mid-read.
func (m *Memory) Open(ctx context.Context, bucket, key string) (io.ReadCloser, Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, Info{}, err
	}
	e, info, err := m.idx.open(bucket, key)
	if err != nil {
		return nil, Info{}, err
	}
	return io.NopCloser(bytes.NewReader(e.data)), info, nil
}

// Stat implements Backend.
func (m *Memory) Stat(ctx context.Context, bucket, key string) (Info, error) {
	if err := ctx.Err(); err != nil {
		return Info{}, err
	}
	return m.idx.stat(bucket, key)
}

// Touch implements Backend.
func (m *Memory) Touch(ctx context.Context, bucket, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return m.idx.touch(bucket, key)
}

// List implements Backend.
func (m *Memory) List(ctx context.Context, bucket, prefix string) ([]Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.idx.list(bucket, prefix)
}

// Remove implements Backend.
func (m *Memory) Remove(ctx context.Context, bucket, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return m.idx.remove(bucket, key)
}

// Used implements Backend.
func (m *Memory) Used(ctx context.Context) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return m.idx.totalUsed(), nil
}

// Sweep implements Backend.
func (m *Memory) Sweep(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return m.idx.sweep(), nil
}

// Watch implements Backend.
func (m *Memory) Watch(ctx context.Context, bucket string) (*Subscription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if bucket != "" {
		if err := checkBucket(bucket); err != nil {
			return nil, err
		}
	}
	return m.idx.hub.subscribe(ctx, bucket, m.idx.cfg.watchBuf), nil
}

// Append implements Appender: the new bytes are concatenated into a
// fresh slice at close, preserving copy-on-write for open readers.
func (m *Memory) Append(ctx context.Context, bucket, key string) (io.WriteCloser, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := checkNames(bucket, key); err != nil {
		return nil, err
	}
	return &memAppender{idx: m.idx, bucket: bucket, key: key}, nil
}

// Close implements Backend.
func (m *Memory) Close() error {
	m.idx.close()
	return nil
}

// memWriter accumulates the payload and commits it as an immutable
// slice. Quota is checked incrementally so an oversized stream fails
// fast instead of ballooning the heap, then authoritatively at commit.
type memWriter struct {
	idx    *index
	bucket string
	key    string
	ttl    time.Duration
	prev   int64
	buf    bytes.Buffer
	hash   hash.Hash
	info   Info
	done   bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.done {
		return 0, ErrClosed
	}
	if w.idx.overQuota(w.prev, int64(w.buf.Len()+len(p))) {
		return 0, fmt.Errorf("%w: %d bytes streamed", ErrQuota, w.buf.Len()+len(p))
	}
	w.hash.Write(p)
	return w.buf.Write(p)
}

func (w *memWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	data := append([]byte(nil), w.buf.Bytes()...)
	now := w.idx.now()
	info := Info{
		Bucket: w.bucket, Key: w.key, Size: int64(len(data)),
		ETag:     hex.EncodeToString(w.hash.Sum(nil)),
		Modified: now, LastUsed: now, TTL: w.ttl,
	}
	committed, err := w.idx.commit(info, data)
	if err != nil {
		return err
	}
	w.info = committed
	return nil
}

func (w *memWriter) Abort() error {
	w.done = true
	w.buf.Reset()
	return nil
}

func (w *memWriter) Info() Info { return w.info }

// memAppender buffers appended bytes and splices them onto the current
// payload at close.
type memAppender struct {
	idx    *index
	bucket string
	key    string
	buf    bytes.Buffer
	done   bool
}

func (a *memAppender) Write(p []byte) (int, error) {
	if a.done {
		return 0, ErrClosed
	}
	return a.buf.Write(p)
}

func (a *memAppender) Close() error {
	if a.done {
		return nil
	}
	a.done = true
	a.idx.appendData(a.bucket, a.key, a.buf.Bytes())
	return nil
}
