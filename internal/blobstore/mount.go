package blobstore

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Table is a mount table: it routes each bucket to a backend by
// longest-prefix match on the bucket name, with a default backend for
// everything unmatched. It implements Backend itself, so callers
// (objstore's Store, docstore's journal) are indifferent to whether
// they talk to one engine or a routed set — e.g. durable uploads on
// disk with scratch build output in memory:
//
//	t := blobstore.NewTable(disk)
//	t.Mount("rai-scratch", mem)
type Table struct {
	mu     sync.RWMutex
	def    Backend
	mounts []tableMount // sorted by descending prefix length
}

type tableMount struct {
	prefix string
	be     Backend
}

// NewTable creates a table with def as the default backend.
func NewTable(def Backend) *Table {
	return &Table{def: def}
}

// Mount routes buckets whose name starts with prefix to be. A longer
// prefix wins over a shorter one; duplicate prefixes are an error.
func (t *Table) Mount(prefix string, be Backend) error {
	if prefix == "" || be == nil {
		return fmt.Errorf("%w: empty mount prefix or nil backend", ErrBadName)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, m := range t.mounts {
		if m.prefix == prefix {
			return fmt.Errorf("%w: mount prefix %q", ErrExists, prefix)
		}
	}
	t.mounts = append(t.mounts, tableMount{prefix: prefix, be: be})
	sort.SliceStable(t.mounts, func(i, j int) bool {
		return len(t.mounts[i].prefix) > len(t.mounts[j].prefix)
	})
	return nil
}

// Resolve returns the backend serving bucket.
func (t *Table) Resolve(bucket string) Backend {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.resolveLocked(bucket)
}

func (t *Table) resolveLocked(bucket string) Backend {
	for _, m := range t.mounts {
		if len(bucket) >= len(m.prefix) && bucket[:len(m.prefix)] == m.prefix {
			return m.be
		}
	}
	return t.def
}

// backends returns the distinct backends in mount order, default last.
func (t *Table) backends() []Backend {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := map[Backend]bool{}
	var out []Backend
	for _, m := range t.mounts {
		if !seen[m.be] {
			seen[m.be] = true
			out = append(out, m.be)
		}
	}
	if !seen[t.def] {
		out = append(out, t.def)
	}
	return out
}

// Capabilities implements Backend: the intersection over all mounted
// backends, because a caller choosing a path by capability does not yet
// know which bucket (hence backend) a request will hit. Per-bucket
// capabilities are available from CapabilitiesFor.
func (t *Table) Capabilities() Capability {
	caps := ^Capability(0)
	for _, be := range t.backends() {
		caps &= be.Capabilities()
	}
	return caps
}

// CapabilitiesFor reports the capabilities of the backend serving
// bucket, for callers that can negotiate per bucket.
func (t *Table) CapabilitiesFor(bucket string) Capability {
	return t.Resolve(bucket).Capabilities()
}

// MakeBucket implements Backend.
func (t *Table) MakeBucket(ctx context.Context, bucket string) error {
	return t.Resolve(bucket).MakeBucket(ctx, bucket)
}

// Buckets implements Backend: the sorted union across backends.
func (t *Table) Buckets(ctx context.Context) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	for _, be := range t.backends() {
		names, err := be.Buckets(ctx)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// Create implements Backend.
func (t *Table) Create(ctx context.Context, bucket, key string, opts PutOptions) (Writer, error) {
	return t.Resolve(bucket).Create(ctx, bucket, key, opts)
}

// Open implements Backend.
func (t *Table) Open(ctx context.Context, bucket, key string) (io.ReadCloser, Info, error) {
	return t.Resolve(bucket).Open(ctx, bucket, key)
}

// Stat implements Backend.
func (t *Table) Stat(ctx context.Context, bucket, key string) (Info, error) {
	return t.Resolve(bucket).Stat(ctx, bucket, key)
}

// Touch implements Backend.
func (t *Table) Touch(ctx context.Context, bucket, key string) error {
	return t.Resolve(bucket).Touch(ctx, bucket, key)
}

// List implements Backend.
func (t *Table) List(ctx context.Context, bucket, prefix string) ([]Info, error) {
	return t.Resolve(bucket).List(ctx, bucket, prefix)
}

// Remove implements Backend.
func (t *Table) Remove(ctx context.Context, bucket, key string) error {
	return t.Resolve(bucket).Remove(ctx, bucket, key)
}

// Used implements Backend: the sum across backends.
func (t *Table) Used(ctx context.Context) (int64, error) {
	var total int64
	for _, be := range t.backends() {
		n, err := be.Used(ctx)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Sweep implements Backend: sweeps every backend.
func (t *Table) Sweep(ctx context.Context) (int, error) {
	total := 0
	for _, be := range t.backends() {
		n, err := be.Sweep(ctx)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// Watch implements Backend. A bucket-scoped watch goes to the backend
// serving that bucket; a global watch ("") goes to the default backend
// (cross-backend merged watches would need re-sequencing and no caller
// needs them yet).
func (t *Table) Watch(ctx context.Context, bucket string) (*Subscription, error) {
	be := t.def
	if bucket != "" {
		be = t.Resolve(bucket)
	}
	if !be.Capabilities().Has(CapWatch) {
		return nil, fmt.Errorf("%w: watch on %q", ErrNoCapability, bucket)
	}
	return be.Watch(ctx, bucket)
}

// Append implements Appender, delegating when the resolved backend
// supports it.
func (t *Table) Append(ctx context.Context, bucket, key string) (io.WriteCloser, error) {
	be := t.Resolve(bucket)
	a, ok := be.(Appender)
	if !ok || !be.Capabilities().Has(CapAppend) {
		return nil, fmt.Errorf("%w: append on %q", ErrNoCapability, bucket)
	}
	return a.Append(ctx, bucket, key)
}

// Close implements Backend: closes every distinct backend, returning
// the first error.
func (t *Table) Close() error {
	var first error
	for _, be := range t.backends() {
		if err := be.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
