package blobstore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Disk is the local-filesystem backend: the durability S3 gave the
// paper's deployment (§VII: 100 GB of student uploads survive
// restarts). Unlike the old objstore write-through, payloads are NOT
// mirrored in memory — the constructor scans only the metadata
// sidecars, Open streams straight off the file, and Create streams to
// a temp file committed by an atomic rename, so daemon memory stays
// flat no matter how large the archives get.
//
// Layout under the root directory (unchanged from the old objstore
// layout, so existing data directories load as-is):
//
//	<root>/<bucket>/<key-with-slashes-escaped>        blob bytes
//	<root>/<bucket>/<key-with-slashes-escaped>.meta   Info JSON
//
// Keys may contain '/', escaped as "%2F" so the per-bucket layout stays
// flat (no traversal surface). In-flight temp files carry the "%tmp-"
// prefix, which no escaped key can start with ('%' escapes to "%25");
// leftovers from a crash are collected at the next constructor scan.
type Disk struct {
	idx  *index
	root string
}

const tmpPrefix = "%tmp-"

// NewDisk opens (or initializes) a disk backend rooted at root. Blobs
// left by a previous run are indexed from their .meta sidecars; a data
// file with a missing or corrupt sidecar is an error — surfacing the
// damage beats silently serving a blob with unknown TTL and hash.
func NewDisk(root string, opts ...Option) (*Disk, error) {
	d := &Disk{idx: newIndex(newConfig(opts)), root: root}
	d.idx.drop = d.removeFiles
	if err := d.load(); err != nil {
		return nil, fmt.Errorf("blobstore: loading %s: %w", root, err)
	}
	return d, nil
}

// Root returns the backend's data directory.
func (d *Disk) Root() string { return d.root }

// escapeKey flattens an object key into a single path segment.
func escapeKey(key string) string {
	key = strings.ReplaceAll(key, "%", "%25")
	return strings.ReplaceAll(key, "/", "%2F")
}

func unescapeKey(name string) string {
	name = strings.ReplaceAll(name, "%2F", "/")
	return strings.ReplaceAll(name, "%25", "%")
}

func (d *Disk) dataPath(bucket, key string) string {
	return filepath.Join(d.root, bucket, escapeKey(key))
}

func (d *Disk) metaPath(bucket, key string) string {
	return d.dataPath(bucket, key) + ".meta"
}

// load scans the root for buckets and metadata. Payload bytes are left
// on disk; only Info enters the index.
func (d *Disk) load() error {
	entries, err := os.ReadDir(d.root)
	if os.IsNotExist(err) {
		return os.MkdirAll(d.root, 0o755)
	}
	if err != nil {
		return err
	}
	for _, bucketEnt := range entries {
		if !bucketEnt.IsDir() {
			continue
		}
		bucket := bucketEnt.Name()
		if !ValidBucket(bucket) {
			continue
		}
		bucketDir := filepath.Join(d.root, bucket)
		files, err := os.ReadDir(bucketDir)
		if err != nil {
			return err
		}
		bk := map[string]*entry{}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || strings.HasSuffix(name, ".meta") {
				continue
			}
			if strings.HasPrefix(name, tmpPrefix) {
				// A writer died mid-stream; the partial file is garbage.
				_ = os.Remove(filepath.Join(bucketDir, name))
				continue
			}
			var info Info
			metaRaw, err := os.ReadFile(filepath.Join(bucketDir, name) + ".meta")
			if err != nil {
				return fmt.Errorf("blob %s/%s has no metadata: %w", bucket, name, err)
			}
			if err := json.Unmarshal(metaRaw, &info); err != nil {
				return fmt.Errorf("corrupt metadata for %s/%s: %w", bucket, name, err)
			}
			st, err := f.Info()
			if err != nil {
				return err
			}
			key := unescapeKey(name)
			info.Bucket, info.Key = bucket, key
			if st.Size() != info.Size {
				// The file is authoritative (e.g. a crash between an append
				// and its meta rewrite); the recorded hash no longer holds.
				info.Size = st.Size()
				info.ETag = ""
			}
			bk[key] = &entry{info: info}
			d.idx.used += info.Size
		}
		d.idx.buckets[bucket] = bk
	}
	return nil
}

// removeFiles is the index drop hook (called with the index lock held).
func (d *Disk) removeFiles(bucket, key string) {
	_ = os.Remove(d.dataPath(bucket, key))
	_ = os.Remove(d.metaPath(bucket, key))
}

// writeMeta atomically replaces a blob's metadata sidecar (temp file in
// the same bucket dir, then rename).
func (d *Disk) writeMeta(info Info) error {
	raw, err := json.Marshal(info)
	if err != nil {
		return err
	}
	bucketDir := filepath.Join(d.root, info.Bucket)
	tmp, err := os.CreateTemp(bucketDir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), d.metaPath(info.Bucket, info.Key)); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Capabilities implements Backend.
func (d *Disk) Capabilities() Capability {
	return CapStream | CapAtomicRename | CapWatch | CapAppend
}

// MakeBucket implements Backend.
func (d *Disk) MakeBucket(ctx context.Context, bucket string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := d.idx.makeBucket(bucket); err != nil {
		return err
	}
	return os.MkdirAll(filepath.Join(d.root, bucket), 0o755)
}

// Buckets implements Backend.
func (d *Disk) Buckets(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return d.idx.bucketNames(), nil
}

// Create implements Backend: bytes stream to a "%tmp-" file in the
// bucket directory and an atomic rename publishes them at Close, so a
// crashed or aborted writer never leaves a torn blob visible.
func (d *Disk) Create(ctx context.Context, bucket, key string, opts PutOptions) (Writer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := checkNames(bucket, key); err != nil {
		return nil, err
	}
	bucketDir := filepath.Join(d.root, bucket)
	if err := os.MkdirAll(bucketDir, 0o755); err != nil {
		return nil, err
	}
	tmp, err := os.CreateTemp(bucketDir, tmpPrefix+"*")
	if err != nil {
		return nil, err
	}
	return &diskWriter{
		d: d, bucket: bucket, key: key,
		ttl:  d.idx.ttlOrDefault(opts.TTL),
		prev: d.idx.prevSize(bucket, key),
		f:    tmp, hash: sha256.New(),
	}, nil
}

// Open implements Backend: the reader is the file itself. The refreshed
// last-use time is persisted to the sidecar best-effort so TTL-from-
// last-use survives restarts. A blob removed mid-read keeps streaming:
// the unlinked file stays readable through the open descriptor (the
// disk flavor of the memory backend's copy-on-write guarantee).
func (d *Disk) Open(ctx context.Context, bucket, key string) (io.ReadCloser, Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, Info{}, err
	}
	_, info, err := d.idx.open(bucket, key)
	if err != nil {
		return nil, Info{}, err
	}
	f, err := os.Open(d.dataPath(bucket, key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, Info{}, fmt.Errorf("%w: %q/%q (file vanished)", ErrNotFound, bucket, key)
		}
		return nil, Info{}, err
	}
	_ = d.writeMeta(info) // best-effort LastUsed persistence
	return f, info, nil
}

// Stat implements Backend.
func (d *Disk) Stat(ctx context.Context, bucket, key string) (Info, error) {
	if err := ctx.Err(); err != nil {
		return Info{}, err
	}
	return d.idx.stat(bucket, key)
}

// Touch implements Backend. The refresh and the metadata read happen in
// one index critical section (touchInfo), so the persisted sidecar is
// exactly the state this touch produced even when writers race it.
func (d *Disk) Touch(ctx context.Context, bucket, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	info, err := d.idx.touchInfo(bucket, key)
	if err != nil {
		return err
	}
	_ = d.writeMeta(info) // best-effort LastUsed persistence
	return nil
}

// List implements Backend.
func (d *Disk) List(ctx context.Context, bucket, prefix string) ([]Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return d.idx.list(bucket, prefix)
}

// Remove implements Backend.
func (d *Disk) Remove(ctx context.Context, bucket, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return d.idx.remove(bucket, key)
}

// Used implements Backend.
func (d *Disk) Used(ctx context.Context) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return d.idx.totalUsed(), nil
}

// Sweep implements Backend.
func (d *Disk) Sweep(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return d.idx.sweep(), nil
}

// Watch implements Backend.
func (d *Disk) Watch(ctx context.Context, bucket string) (*Subscription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if bucket != "" {
		if err := checkBucket(bucket); err != nil {
			return nil, err
		}
	}
	return d.idx.hub.subscribe(ctx, bucket, d.idx.cfg.watchBuf), nil
}

// Append implements Appender: O_APPEND on the data file, size and
// sidecar reconciled at Close. Appends are quota-exempt (journal tail
// writes must not fail on a full cache) and leave ETag unknown.
func (d *Disk) Append(ctx context.Context, bucket, key string) (io.WriteCloser, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := checkNames(bucket, key); err != nil {
		return nil, err
	}
	bucketDir := filepath.Join(d.root, bucket)
	if err := os.MkdirAll(bucketDir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(d.dataPath(bucket, key), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o600)
	if err != nil {
		return nil, err
	}
	return &diskAppender{d: d, bucket: bucket, key: key, f: f}, nil
}

// Adopt ingests an existing file (outside the root) as bucket/key via
// rename — the migration path for pre-blobstore flat files such as the
// old docstore journal. The source must live on the same filesystem.
func (d *Disk) Adopt(ctx context.Context, bucket, key, srcPath string) (Info, error) {
	if err := ctx.Err(); err != nil {
		return Info{}, err
	}
	if err := checkNames(bucket, key); err != nil {
		return Info{}, err
	}
	st, err := os.Stat(srcPath)
	if err != nil {
		return Info{}, err
	}
	if err := os.MkdirAll(filepath.Join(d.root, bucket), 0o755); err != nil {
		return Info{}, err
	}
	now := d.idx.now()
	info := Info{
		Bucket: bucket, Key: key, Size: st.Size(),
		Modified: now, LastUsed: now, TTL: d.idx.ttlOrDefault(0),
	}
	return d.idx.commitWith(info, nil, func() error {
		if err := os.Rename(srcPath, d.dataPath(bucket, key)); err != nil {
			return err
		}
		return d.writeMeta(info)
	})
}

// Close implements Backend.
func (d *Disk) Close() error {
	d.idx.close()
	return nil
}

// diskWriter streams to the temp file, hashing as it goes, and commits
// (rename + sidecar + index insert) atomically with the quota check.
type diskWriter struct {
	d       *Disk
	bucket  string
	key     string
	ttl     time.Duration
	prev    int64
	f       *os.File
	hash    hash.Hash
	written int64
	info    Info
	done    bool
}

func (w *diskWriter) Write(p []byte) (int, error) {
	if w.done {
		return 0, ErrClosed
	}
	if w.d.idx.overQuota(w.prev, w.written+int64(len(p))) {
		return 0, fmt.Errorf("%w: %d bytes streamed", ErrQuota, w.written+int64(len(p)))
	}
	n, err := w.f.Write(p)
	w.hash.Write(p[:n])
	w.written += int64(n)
	return n, err
}

func (w *diskWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	if err := w.f.Close(); err != nil {
		_ = os.Remove(w.f.Name())
		return err
	}
	now := w.d.idx.now()
	info := Info{
		Bucket: w.bucket, Key: w.key, Size: w.written,
		ETag:     hex.EncodeToString(w.hash.Sum(nil)),
		Modified: now, LastUsed: now, TTL: w.ttl,
	}
	committed, err := w.d.idx.commitWith(info, nil, func() error {
		if err := os.Rename(w.f.Name(), w.d.dataPath(w.bucket, w.key)); err != nil {
			return err
		}
		return w.d.writeMeta(info)
	})
	if err != nil {
		_ = os.Remove(w.f.Name())
		return err
	}
	w.info = committed
	return nil
}

func (w *diskWriter) Abort() error {
	if w.done {
		return nil
	}
	w.done = true
	_ = w.f.Close()
	return os.Remove(w.f.Name())
}

func (w *diskWriter) Info() Info { return w.info }

// diskAppender wraps the O_APPEND file and reconciles index + sidecar
// when closed.
type diskAppender struct {
	d      *Disk
	bucket string
	key    string
	f      *os.File
	done   bool
}

func (a *diskAppender) Write(p []byte) (int, error) {
	if a.done {
		return 0, ErrClosed
	}
	return a.f.Write(p)
}

func (a *diskAppender) Close() error {
	if a.done {
		return nil
	}
	a.done = true
	st, statErr := a.f.Stat()
	if err := a.f.Close(); err != nil {
		return err
	}
	if statErr != nil {
		return statErr
	}
	info := a.d.idx.appendCommit(a.bucket, a.key, st.Size(), 0)
	if info.Bucket != "" {
		_ = a.d.writeMeta(info)
	}
	return nil
}
