package bench

import (
	"context"
	"time"

	"rai/internal/clock"
	"rai/internal/collector"
	"rai/internal/docstore"
	"rai/internal/telemetry"
)

// PhaseAttribution is the per-phase latency decomposition pulled from
// the collector's span store after the load finishes.
type PhaseAttribution struct {
	// Hists holds one HDR histogram per phase name ("upload", "enqueue",
	// "queue", "download", "cache", "build", "run", "total").
	Hists map[string]*telemetry.HDRHistogram
	// Traced/Missing count jobs whose span tree was (not) found and
	// complete by the deadline.
	Traced  int
	Missing int
	// Coverage is mean(sum of phases / total) over traced jobs: how much
	// of the trace-side end-to-end time the phases explain.
	Coverage float64
}

// phaseKey maps the collector's phase names onto report keys.
func phaseKey(name string) string {
	if name == "queue delay" {
		return "queue"
	}
	return name
}

// AttributePhases resolves each job's span tree from the collector's
// store and folds its phase durations into per-phase histograms. The
// collector persists asynchronously, so jobs whose traces are missing
// or incomplete are retried until timeout; leftovers count as Missing.
func AttributePhases(ctx context.Context, clk clock.Clock, db docstore.Store, jobIDs []string, timeout time.Duration) *PhaseAttribution {
	if clk == nil {
		clk = clock.Real{}
	}
	att := &PhaseAttribution{Hists: map[string]*telemetry.HDRHistogram{}}
	pending := append([]string(nil), jobIDs...)
	deadline := clk.Now().Add(timeout)
	var coverageSum float64
	for len(pending) > 0 {
		var retry []string
		for _, jobID := range pending {
			spans, err := collector.TraceByJob(db, jobID)
			if err != nil {
				retry = append(retry, jobID)
				continue
			}
			phases := collector.Phases(spans)
			total, phaseSum := foldPhases(att.Hists, phases)
			if total <= 0 {
				// Root span not persisted yet; the trace is still in flight.
				retry = append(retry, jobID)
				continue
			}
			att.Traced++
			coverageSum += phaseSum / total
		}
		pending = retry
		if len(pending) == 0 || !clk.Now().Before(deadline) || ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
		case <-clk.After(100 * time.Millisecond):
		}
	}
	att.Missing = len(pending)
	if att.Traced > 0 {
		att.Coverage = coverageSum / float64(att.Traced)
	}
	return att
}

// foldPhases records one job's phases, returning the total seconds and
// the sum of the non-total phase seconds. Nothing is recorded when the
// trace lacks a total (the job root span), so a retried job is not
// double counted.
func foldPhases(hists map[string]*telemetry.HDRHistogram, phases []collector.Phase) (total, phaseSum float64) {
	for _, p := range phases {
		if p.Name == "total" {
			total = p.Duration.Seconds()
		}
	}
	if total <= 0 {
		return 0, 0
	}
	for _, p := range phases {
		key := phaseKey(p.Name)
		h := hists[key]
		if h == nil {
			h = telemetry.NewHDRHistogram()
			hists[key] = h
		}
		h.Observe(p.Duration.Seconds())
		if key != "total" {
			phaseSum += p.Duration.Seconds()
		}
	}
	return total, phaseSum
}

// PhasePercentiles condenses the attribution for the report.
func (a *PhaseAttribution) PhasePercentiles() map[string]Percentiles {
	out := map[string]Percentiles{}
	for name, h := range a.Hists {
		out[name] = PercentilesOf(h.Snapshot())
	}
	return out
}
