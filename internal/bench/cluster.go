package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"rai/internal/auth"
	"rai/internal/clock"
)

// daemonBinaries are the commands a cluster boots, in dependency order.
var daemonBinaries = []string{"raibroker", "raifs", "raidb", "raiworker", "raiadmin"}

// ClusterConfig describes the loopback deployment a benchmark boots.
type ClusterConfig struct {
	// Bin maps command name to binary path (from BuildBinaries or -bin).
	Bin map[string]string
	// Dir is the run's scratch directory (ready files, logs, keys.json).
	Dir string
	// Workers and WorkerConcurrency shape the execution fleet.
	Workers           int
	WorkerConcurrency int
	// Seed and FullImages configure the workers' course dataset; small
	// image counts keep real-clock job execution in the milliseconds.
	Seed       uint64
	FullImages int
	// RateLimit is the per-user submission spacing enforced by workers.
	// The bench drives each student in a closed loop, so this must stay
	// far below the think time (the paper's 30 s default would serialize
	// the whole run).
	RateLimit time.Duration
	// Pprof mounts /debug/pprof on every daemon's metrics address so the
	// harness can capture profiles mid-load.
	Pprof bool
	// ReadyTimeout bounds each daemon's boot (default 30 s).
	ReadyTimeout time.Duration
	// TraceSample, when in (0,1), is passed to every worker as the
	// head-sampling fallback rate for orphan traces (the clients' own
	// verdicts ride the job envelopes regardless).
	TraceSample float64
	// TailLinger/TailKeep configure the collector's tail retention
	// (linger 0 = off, persist everything immediately).
	TailLinger time.Duration
	TailKeep   float64
	// Retain turns on the collector's TTL sweep over persisted traces
	// and events (0 = keep forever).
	Retain time.Duration
	// SLOScrape points the collector's SLO engine at every daemon's
	// metrics endpoint, exporting rai_slo_* gauges on the collector.
	SLOScrape   bool
	SLOInterval time.Duration
}

// Cluster is a running loopback deployment.
type Cluster struct {
	BrokerAddr string
	FSURL      string
	DBURL      string
	// MetricsURLs maps daemon instance name to its /metrics URL.
	MetricsURLs map[string]string
	KeysPath    string

	procs []*Proc
	clk   clock.Clock
}

// BuildBinaries compiles the daemon commands into outDir with the
// local go toolchain and returns name → path. moduleRoot is the
// directory holding go.mod; progress goes to logTo.
func BuildBinaries(ctx context.Context, moduleRoot, outDir string, logTo io.Writer) (map[string]string, error) {
	bins := map[string]string{}
	for _, name := range daemonBinaries {
		out, err := BuildBinary(ctx, moduleRoot, outDir, name, logTo)
		if err != nil {
			return nil, err
		}
		bins[name] = out
	}
	return bins, nil
}

// BuildBinary compiles one daemon command into outDir and returns its
// path.
func BuildBinary(ctx context.Context, moduleRoot, outDir, name string, logTo io.Writer) (string, error) {
	out := filepath.Join(outDir, name)
	fmt.Fprintf(logTo, "building %s\n", name)
	cmd := exec.CommandContext(ctx, "go", "build", "-o", out, "./cmd/"+name)
	cmd.Dir = moduleRoot
	if b, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("bench: go build %s: %v\n%s", name, err, b)
	}
	return out, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("bench: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// StartCluster boots broker → storage → collector → workers over
// loopback, every listener on ":0", and waits for each daemon's ready
// file. creds become keys.json (the workers' auth registry and the
// load generator's identities). On error every started child is
// stopped.
func StartCluster(ctx context.Context, clk clock.Clock, cfg ClusterConfig, creds []auth.Credentials) (*Cluster, error) {
	if clk == nil {
		clk = clock.Real{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.WorkerConcurrency <= 0 {
		cfg.WorkerConcurrency = 1
	}
	if cfg.FullImages <= 0 {
		cfg.FullImages = 12
	}
	if cfg.RateLimit <= 0 {
		cfg.RateLimit = time.Millisecond
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 30 * time.Second
	}
	for _, name := range daemonBinaries {
		if cfg.Bin[name] == "" {
			return nil, fmt.Errorf("bench: no binary for %s", name)
		}
	}
	c := &Cluster{MetricsURLs: map[string]string{}, clk: clk}
	ok := false
	defer func() {
		if !ok {
			c.Stop()
		}
	}()

	keysPath := filepath.Join(cfg.Dir, "keys.json")
	keysData, err := json.Marshal(creds)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if err := os.WriteFile(keysPath, keysData, 0o600); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	c.KeysPath = keysPath

	pprofArgs := func(base []string) []string {
		if cfg.Pprof {
			return append(base, "-pprof")
		}
		return base
	}
	start := func(name string, args []string) (*Proc, error) {
		p, err := startProc(name, cfg.Bin[cmdOf(name)], args, cfg.Dir)
		if err != nil {
			return nil, err
		}
		c.procs = append(c.procs, p)
		return p, nil
	}
	ready := func(p *Proc, file string) (addr, metrics string, err error) {
		info, err := awaitReady(ctx, clk, p, filepath.Join(cfg.Dir, file), cfg.ReadyTimeout)
		if err != nil {
			return "", "", err
		}
		if info.MetricsAddr != "" {
			c.MetricsURLs[p.Name] = "http://" + info.MetricsAddr + "/metrics"
		}
		return info.Addr, info.MetricsAddr, nil
	}

	p, err := start("raibroker", pprofArgs([]string{
		"-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
		"-ready-file", filepath.Join(cfg.Dir, "raibroker.ready")}))
	if err != nil {
		return nil, err
	}
	if c.BrokerAddr, _, err = ready(p, "raibroker.ready"); err != nil {
		return nil, err
	}

	p, err = start("raifs", pprofArgs([]string{
		"-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
		"-broker", c.BrokerAddr,
		"-ready-file", filepath.Join(cfg.Dir, "raifs.ready")}))
	if err != nil {
		return nil, err
	}
	fsAddr, _, err := ready(p, "raifs.ready")
	if err != nil {
		return nil, err
	}
	c.FSURL = "http://" + fsAddr

	p, err = start("raidb", pprofArgs([]string{
		"-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
		"-broker", c.BrokerAddr,
		"-ready-file", filepath.Join(cfg.Dir, "raidb.ready")}))
	if err != nil {
		return nil, err
	}
	dbAddr, _, err := ready(p, "raidb.ready")
	if err != nil {
		return nil, err
	}
	c.DBURL = "http://" + dbAddr

	// Workers boot before the collector so its -slo-scrape flag can list
	// their metrics endpoints; telemetry published in the gap sits in the
	// broker's topic backlog until the collector subscribes.
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("raiworker-%d", i+1)
		readyFile := name + ".ready"
		workerArgs := []string{
			"-broker", c.BrokerAddr, "-fs", c.FSURL, "-db", c.DBURL,
			"-keys", keysPath, "-id", name,
			"-concurrency", fmt.Sprint(cfg.WorkerConcurrency),
			"-rate-limit", cfg.RateLimit.String(),
			"-seed", fmt.Sprint(cfg.Seed),
			"-full-images", fmt.Sprint(cfg.FullImages),
			"-metrics-addr", "127.0.0.1:0",
			"-ready-file", filepath.Join(cfg.Dir, readyFile)}
		if cfg.TraceSample > 0 && cfg.TraceSample < 1 {
			workerArgs = append(workerArgs, "-trace-sample", fmt.Sprint(cfg.TraceSample))
		}
		p, err := start(name, pprofArgs(workerArgs))
		if err != nil {
			return nil, err
		}
		if _, _, err = ready(p, readyFile); err != nil {
			return nil, err
		}
	}

	collectArgs := []string{"collect",
		"-broker", c.BrokerAddr, "-db", c.DBURL,
		"-metrics-addr", "127.0.0.1:0",
		"-ready-file", filepath.Join(cfg.Dir, "collector.ready")}
	if cfg.TailLinger > 0 {
		collectArgs = append(collectArgs,
			"-tail-linger", cfg.TailLinger.String(),
			"-tail-keep", fmt.Sprint(cfg.TailKeep))
	}
	if cfg.Retain > 0 {
		collectArgs = append(collectArgs, "-retain", cfg.Retain.String())
	}
	if cfg.SLOScrape {
		urls := ""
		for _, u := range c.MetricsURLs {
			if urls != "" {
				urls += ","
			}
			urls += u
		}
		interval := cfg.SLOInterval
		if interval <= 0 {
			interval = time.Second
		}
		collectArgs = append(collectArgs, "-slo-scrape", urls, "-slo-interval", interval.String())
	}
	p, err = start("collector", collectArgs)
	if err != nil {
		return nil, err
	}
	if _, _, err = ready(p, "collector.ready"); err != nil {
		return nil, err
	}
	ok = true
	return c, nil
}

// cmdOf maps an instance name (raiworker-2, collector) to its binary.
func cmdOf(name string) string {
	switch {
	case name == "collector":
		return "raiadmin"
	case len(name) > len("raiworker") && name[:len("raiworker")] == "raiworker":
		return "raiworker"
	default:
		return name
	}
}

// Procs exposes the managed children (for crash checks and pprof
// target selection).
func (c *Cluster) Procs() []*Proc { return c.procs }

// Stop shuts the cluster down in reverse boot order: workers drain
// in-flight jobs before the broker goes away.
func (c *Cluster) Stop() {
	for i := len(c.procs) - 1; i >= 0; i-- {
		c.procs[i].Stop(c.clk, 10*time.Second)
	}
}
