package bench

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"rai/internal/clock"
	"rai/internal/telemetry"
)

// Scraper samples every daemon's /metrics endpoint on an interval
// while the load runs, building the per-daemon health trajectory
// (RSS, heap, goroutines, GC cycles) and capturing the final
// drop/retry counters.
type Scraper struct {
	interval time.Duration
	clk      clock.Clock
	targets  map[string]string // service -> metrics URL
	client   *http.Client

	mu    sync.Mutex
	stats map[string]*DaemonStats

	cancel context.CancelFunc
	done   chan struct{}
}

// StartScraper begins sampling targets (service name → metrics URL)
// every interval until StopScraper is called.
func StartScraper(ctx context.Context, clk clock.Clock, targets map[string]string, interval time.Duration) *Scraper {
	if clk == nil {
		clk = clock.Real{}
	}
	if interval <= 0 {
		interval = time.Second
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Scraper{
		interval: interval,
		clk:      clk,
		targets:  targets,
		client:   &http.Client{Timeout: 5 * time.Second},
		stats:    map[string]*DaemonStats{},
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	for service := range targets {
		s.stats[service] = &DaemonStats{Service: service}
	}
	go s.loop(sctx)
	return s
}

func (s *Scraper) loop(ctx context.Context) {
	defer close(s.done)
	started := s.clk.Now()
	for {
		s.sampleAll(ctx, s.clk.Now().Sub(started))
		select {
		case <-ctx.Done():
			return
		case <-s.clk.After(s.interval):
		}
	}
}

func (s *Scraper) sampleAll(ctx context.Context, offset time.Duration) {
	for service, url := range s.targets {
		snap, err := s.scrape(ctx, url)
		s.mu.Lock()
		st := s.stats[service]
		if err != nil {
			st.ScrapeErrors++
			s.mu.Unlock()
			continue
		}
		sample := DaemonSample{OffsetS: offset.Seconds()}
		sample.ResidentBytes, _ = snap.Value("rai_process_resident_bytes")
		sample.HeapBytes, _ = snap.Value("rai_process_heap_bytes")
		sample.Goroutines, _ = snap.Value("rai_process_goroutines")
		sample.GCCycles, _ = snap.Value("rai_process_gc_cycles_total")
		st.Samples = append(st.Samples, sample)
		st.FinalResident = sample.ResidentBytes
		// Drops and retries are labeled families; sum across label sets.
		st.DroppedTotal = sumSamples(snap, "rai_telemetry_dropped_total")
		st.RetriesTotal = sumSamples(snap, "rai_rpc_retries_total")
		s.mu.Unlock()
	}
}

func (s *Scraper) scrape(ctx context.Context, url string) (*telemetry.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("bench: scraping %s: status %s", url, resp.Status)
	}
	return telemetry.ParseText(resp.Body)
}

// sumSamples totals every series of one metric family.
func sumSamples(snap *telemetry.Snapshot, name string) float64 {
	var total float64
	for _, s := range snap.Samples {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// StopScraper halts sampling and returns the per-daemon trajectories,
// ordered by service name.
func (s *Scraper) StopScraper() []DaemonStats {
	s.cancel()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DaemonStats, 0, len(s.stats))
	for _, st := range s.stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}
