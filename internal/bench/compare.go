package bench

import (
	"fmt"
	"strings"
)

// Thresholds bound how much a new run may regress against a baseline
// before `raibench compare` fails. Latency limits are multiplicative
// with an absolute floor: a metric breaches when
//
//	new > old*(1+MaxLatencyGrowth) + LatencyFloorS
//
// The floor keeps microsecond-scale baselines from failing on
// scheduling noise; the ratio keeps second-scale baselines honest.
type Thresholds struct {
	// MaxThroughputDrop is the allowed fractional throughput loss
	// (0.5 = new may be half the baseline).
	MaxThroughputDrop float64 `json:"max_throughput_drop"`
	// MaxLatencyGrowth is the allowed fractional latency growth
	// (1.0 = new may be twice the baseline).
	MaxLatencyGrowth float64 `json:"max_latency_growth"`
	// LatencyFloorS is absolute slack added to every latency limit.
	LatencyFloorS float64 `json:"latency_floor_s"`
}

// DefaultThresholds are deliberately generous: the CI smoke run shares
// a machine with the race-enabled test suite, so only order-of-
// magnitude regressions should fail the build.
func DefaultThresholds() Thresholds {
	return Thresholds{MaxThroughputDrop: 0.6, MaxLatencyGrowth: 3.0, LatencyFloorS: 2.0}
}

// Breach is one threshold violation.
type Breach struct {
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Limit  float64 `json:"limit"`
}

func (b Breach) String() string {
	if strings.HasPrefix(b.Metric, "throughput") {
		return fmt.Sprintf("REGRESSION %-28s %.3f -> %.3f jobs/s (limit %.3f)", b.Metric, b.Old, b.New, b.Limit)
	}
	return fmt.Sprintf("REGRESSION %-28s %s -> %s (limit %s)", b.Metric, fmtSec(b.Old), fmtSec(b.New), fmtSec(b.Limit))
}

// Compare diffs a new run against a baseline and returns every
// threshold breach (empty = pass). It checks throughput, the
// end-to-end p50/p99/p999, and each phase's p99. Phases present in only
// one report are skipped — a new phase is information, not a
// regression.
func Compare(old, new *Report, th Thresholds) ([]Breach, error) {
	if old.Schema != new.Schema {
		return nil, fmt.Errorf("bench: comparing schema %d against %d", old.Schema, new.Schema)
	}
	var breaches []Breach
	if old.Throughput > 0 {
		limit := old.Throughput * (1 - th.MaxThroughputDrop)
		if new.Throughput < limit {
			breaches = append(breaches, Breach{Metric: "throughput_jobs_per_s", Old: old.Throughput, New: new.Throughput, Limit: limit})
		}
	}
	latency := func(metric string, oldV, newV float64) {
		if oldV <= 0 {
			return
		}
		limit := oldV*(1+th.MaxLatencyGrowth) + th.LatencyFloorS
		if newV > limit {
			breaches = append(breaches, Breach{Metric: metric, Old: oldV, New: newV, Limit: limit})
		}
	}
	latency("latency.p50", old.Latency.P50, new.Latency.P50)
	latency("latency.p99", old.Latency.P99, new.Latency.P99)
	latency("latency.p999", old.Latency.P999, new.Latency.P999)
	for _, name := range old.SortedPhaseNames() {
		oldP, ok1 := old.Phases[name]
		newP, ok2 := new.Phases[name]
		if !ok1 || !ok2 {
			continue
		}
		latency("phase."+name+".p99", oldP.P99, newP.P99)
	}
	return breaches, nil
}
