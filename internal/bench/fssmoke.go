package bench

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"time"

	"rai/internal/clock"
	"rai/internal/objstore"
	"rai/internal/telemetry"
)

// The fs-smoke check is the streaming storage layer's canary: it boots
// a real raifs on the disk backend, pushes a synthetic project archive
// through the streamed PUT/GET paths, doubles the archive, and asserts
// the daemon's resident set stays flat. A regression that reintroduces
// whole-object buffering (an io.ReadAll on the request path, a []byte
// staging area in a backend) shows up as RSS tracking the archive size
// and fails the run.

// FSSmokeConfig configures one smoke run.
type FSSmokeConfig struct {
	// Bin is the raifs binary path.
	Bin string
	// Dir is the scratch directory (object root, ready file, log).
	Dir string
	// BaseBytes is the first archive's size; the second upload doubles
	// it. Default 32 MiB.
	BaseBytes int64
	// GrowthAllowance is the RSS growth tolerated between the 1× and 2×
	// uploads. Default BaseBytes/2: real streaming stays within noise,
	// whole-object buffering overshoots by at least BaseBytes.
	GrowthAllowance int64
	// ReadyTimeout bounds the daemon's boot (default 30 s).
	ReadyTimeout time.Duration
}

// FSSmokeResult reports the observed trajectory.
type FSSmokeResult struct {
	BaseBytes   int64   `json:"base_bytes"`
	DoubleBytes int64   `json:"double_bytes"`
	RSSAfter1x  float64 `json:"rss_after_1x_bytes"`
	RSSAfter2x  float64 `json:"rss_after_2x_bytes"`
	Growth      float64 `json:"growth_bytes"`
	Allowance   int64   `json:"allowance_bytes"`
	Flat        bool    `json:"flat"`
}

func (r *FSSmokeResult) String() string {
	verdict := "FLAT"
	if !r.Flat {
		verdict = "GREW"
	}
	return fmt.Sprintf("fs-smoke: rss %.1f MiB after %d MiB upload, %.1f MiB after %d MiB upload (Δ %.1f MiB, allowance %d MiB): %s",
		r.RSSAfter1x/(1<<20), r.BaseBytes>>20, r.RSSAfter2x/(1<<20), r.DoubleBytes>>20,
		r.Growth/(1<<20), r.Allowance>>20, verdict)
}

// FSSmoke runs the check. It returns the measured result even when the
// flat-memory assertion fails (Flat reports the verdict); the error is
// reserved for harness problems (boot, upload, scrape).
func FSSmoke(ctx context.Context, clk clock.Clock, cfg FSSmokeConfig, logTo io.Writer) (*FSSmokeResult, error) {
	if clk == nil {
		clk = clock.Real{}
	}
	if cfg.BaseBytes <= 0 {
		cfg.BaseBytes = 32 << 20
	}
	if cfg.GrowthAllowance <= 0 {
		cfg.GrowthAllowance = cfg.BaseBytes / 2
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 30 * time.Second
	}
	readyPath := filepath.Join(cfg.Dir, "raifs.ready")
	p, err := startProc("raifs", cfg.Bin, []string{
		"-listen", "127.0.0.1:0",
		"-store-backend", "disk",
		"-store-root", filepath.Join(cfg.Dir, "objects"),
		"-metrics-addr", "127.0.0.1:0",
		"-ready-file", readyPath,
	}, cfg.Dir)
	if err != nil {
		return nil, err
	}
	defer p.Stop(clk, 5*time.Second)
	info, err := awaitReady(ctx, clk, p, readyPath, cfg.ReadyTimeout)
	if err != nil {
		return nil, err
	}
	metricsURL := "http://" + info.MetricsAddr + "/metrics"
	client := objstore.NewClient("http://" + info.Addr)

	res := &FSSmokeResult{BaseBytes: cfg.BaseBytes, DoubleBytes: 2 * cfg.BaseBytes, Allowance: cfg.GrowthAllowance}
	roundTrip := func(key string, size int64) error {
		if err := client.PutReader(ctx, "bench", key, &patternReader{size: size}, size, 0); err != nil {
			return fmt.Errorf("bench: uploading %s: %w", key, err)
		}
		rc, _, err := client.GetReader(ctx, "bench", key)
		if err != nil {
			return fmt.Errorf("bench: downloading %s: %w", key, err)
		}
		n, err := io.Copy(io.Discard, rc)
		rc.Close()
		if err != nil {
			return fmt.Errorf("bench: streaming %s: %w", key, err)
		}
		if n != size {
			return fmt.Errorf("bench: %s round-trip: got %d bytes, want %d", key, n, size)
		}
		return nil
	}

	fmt.Fprintf(logTo, "fs-smoke: round-tripping %d MiB archive\n", cfg.BaseBytes>>20)
	if err := roundTrip("archive-1x", cfg.BaseBytes); err != nil {
		return nil, err
	}
	if res.RSSAfter1x, err = scrapeRSS(ctx, metricsURL); err != nil {
		return nil, err
	}
	fmt.Fprintf(logTo, "fs-smoke: round-tripping %d MiB archive\n", res.DoubleBytes>>20)
	if err := roundTrip("archive-2x", res.DoubleBytes); err != nil {
		return nil, err
	}
	if res.RSSAfter2x, err = scrapeRSS(ctx, metricsURL); err != nil {
		return nil, err
	}
	res.Growth = res.RSSAfter2x - res.RSSAfter1x
	res.Flat = res.Growth <= float64(cfg.GrowthAllowance)
	return res, nil
}

// scrapeRSS pulls rai_process_resident_bytes from a /metrics endpoint.
func scrapeRSS(ctx context.Context, url string) (float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("bench: scraping %s: status %s", url, resp.Status)
	}
	snap, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return 0, err
	}
	rss, ok := snap.Value("rai_process_resident_bytes")
	if !ok {
		return 0, fmt.Errorf("bench: %s exposes no rai_process_resident_bytes", url)
	}
	return rss, nil
}

// patternReader yields size bytes of a cheap deterministic pattern
// without holding them; Seek support lets the upload client rewind for
// retries.
type patternReader struct {
	size, off int64
}

func (p *patternReader) Read(b []byte) (int, error) {
	if p.off >= p.size {
		return 0, io.EOF
	}
	n := len(b)
	if rem := p.size - p.off; int64(n) > rem {
		n = int(rem)
	}
	for i := 0; i < n; i++ {
		b[i] = byte((p.off + int64(i)) * 31)
	}
	p.off += int64(n)
	return n, nil
}

func (p *patternReader) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		p.off = offset
	case io.SeekCurrent:
		p.off += offset
	case io.SeekEnd:
		p.off = p.size + offset
	default:
		return 0, fmt.Errorf("bench: bad whence %d", whence)
	}
	if p.off < 0 {
		return 0, fmt.Errorf("bench: negative offset")
	}
	return p.off, nil
}
