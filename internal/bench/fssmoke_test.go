package bench

import (
	"bytes"
	"context"
	"io"
	"testing"

	"rai/internal/clock"
)

func TestPatternReaderSeekAndDeterminism(t *testing.T) {
	p := &patternReader{size: 1 << 16}
	first, err := io.ReadAll(p)
	if err != nil || len(first) != 1<<16 {
		t.Fatalf("read: %d bytes, %v", len(first), err)
	}
	if _, err := p.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	second, _ := io.ReadAll(p)
	if !bytes.Equal(first, second) {
		t.Fatal("pattern not deterministic across a rewind")
	}
	if off, _ := p.Seek(-16, io.SeekEnd); off != 1<<16-16 {
		t.Fatalf("SeekEnd: off = %d", off)
	}
	tail, _ := io.ReadAll(p)
	if !bytes.Equal(tail, first[len(first)-16:]) {
		t.Fatal("tail after SeekEnd diverges from the straight read")
	}
}

// TestFSSmokeEndToEnd builds raifs and runs the canary with a small
// archive; beyond the flat-memory verdict it proves the disk backend
// round-trips streamed bytes under a real daemon.
func TestFSSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real raifs subprocess")
	}
	dir := t.TempDir()
	moduleRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bin, err := BuildBinary(ctx, moduleRoot, dir, "raifs", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FSSmoke(ctx, clock.Real{}, FSSmokeConfig{
		Bin: bin, Dir: dir, BaseBytes: 4 << 20,
		// A tiny archive sits inside allocator noise; the assertion that
		// matters at this scale is that growth is nowhere near the
		// archive size (buffering would add >= 8 MiB on the 2x pass).
		GrowthAllowance: 8 << 20,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flat {
		t.Fatalf("RSS grew with the archive: %s", res)
	}
	if res.RSSAfter1x <= 0 || res.RSSAfter2x <= 0 {
		t.Fatalf("RSS not measured: %+v", res)
	}
}
