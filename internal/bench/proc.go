package bench

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"rai/internal/clock"
	"rai/internal/readyfile"
)

// Proc is one managed daemon subprocess. Its stdout/stderr stream to a
// per-daemon log file in the run directory so a failed run leaves a
// post-mortem trail.
type Proc struct {
	Name    string
	LogPath string
	cmd     *exec.Cmd
	logFile *os.File
	done    chan struct{}
	waitErr error
}

// startProc launches bin with args, logging to <logDir>/<name>.log.
// The child gets its own process group so a harness signal does not
// propagate to it implicitly.
func startProc(name, bin string, args []string, logDir string) (*Proc, error) {
	logPath := filepath.Join(logDir, name+".log")
	f, err := os.Create(logPath)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = f
	cmd.Stderr = f
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("bench: starting %s: %w", name, err)
	}
	p := &Proc{Name: name, LogPath: logPath, cmd: cmd, logFile: f, done: make(chan struct{})}
	go func() {
		p.waitErr = cmd.Wait()
		_ = f.Close()
		close(p.done)
	}()
	return p, nil
}

// Exited is closed once the child has exited.
func (p *Proc) Exited() <-chan struct{} { return p.done }

// WaitErr reports the child's exit error; valid after Exited closes.
func (p *Proc) WaitErr() error {
	<-p.done
	return p.waitErr
}

// Stop asks the child to shut down cleanly (SIGTERM, so daemons drain
// in-flight work) and escalates to SIGKILL after grace.
func (p *Proc) Stop(clk clock.Clock, grace time.Duration) {
	if clk == nil {
		clk = clock.Real{}
	}
	select {
	case <-p.done:
		return
	default:
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
	case <-clk.After(grace):
		_ = p.cmd.Process.Kill()
		<-p.done
	}
}

// awaitReady waits for the child's ready file, failing fast if the
// child exits first (with a pointer at its log).
func awaitReady(ctx context.Context, clk clock.Clock, p *Proc, path string, timeout time.Duration) (readyfile.Info, error) {
	waitCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	info, err := readyfile.Await(waitCtx, clk, path, 0, p.done)
	if err != nil {
		return info, fmt.Errorf("bench: %s not ready: %w (see %s)", p.Name, err, p.LogPath)
	}
	return info, nil
}
