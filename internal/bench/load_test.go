package bench

import (
	"testing"
	"time"

	"rai/internal/auth"
)

// TestBuildPlans checks the course-model derivation: every student
// gets a non-empty script, thinks clamp into the configured window,
// and specs are re-stamped with the student's own identity so worker
// rate limiting sees distinct users.
func TestBuildPlans(t *testing.T) {
	cfg := LoadConfig{
		Students: 4,
		Seed:     408,
		ThinkMin: 10 * time.Millisecond,
		ThinkMax: 250 * time.Millisecond,
	}
	creds := make([]auth.Credentials, cfg.Students)
	for i := range creds {
		creds[i] = auth.NewCredentials("s" + string(rune('a'+i)))
	}
	plans := BuildPlans(cfg, creds)
	if len(plans) != cfg.Students {
		t.Fatalf("plans = %d, want %d", len(plans), cfg.Students)
	}
	for i, p := range plans {
		if len(p.specs) == 0 || len(p.thinks) != len(p.specs) {
			t.Fatalf("student %d: %d specs, %d thinks", i, len(p.specs), len(p.thinks))
		}
		if p.creds != creds[i] {
			t.Fatalf("student %d has wrong creds", i)
		}
		var minSeen, maxSeen = p.thinks[0], p.thinks[0]
		for _, th := range p.thinks {
			if th < cfg.ThinkMin || th > cfg.ThinkMax {
				t.Fatalf("student %d think %v outside [%v, %v]", i, th, cfg.ThinkMin, cfg.ThinkMax)
			}
			if th < minSeen {
				minSeen = th
			}
			if th > maxSeen {
				maxSeen = th
			}
		}
		if minSeen == maxSeen && len(p.thinks) > 10 {
			t.Errorf("student %d: all %d thinks identical (%v) — course gaps not used", i, len(p.thinks), minSeen)
		}
		for _, s := range p.specs {
			if s.Team != creds[i].UserName {
				t.Fatalf("student %d spec carries team %q, want %q", i, s.Team, creds[i].UserName)
			}
		}
	}
	// Deterministic: same seed, same plans.
	again := BuildPlans(cfg, creds)
	for i := range plans {
		if len(again[i].specs) != len(plans[i].specs) {
			t.Fatalf("plans not deterministic for student %d", i)
		}
		for j := range plans[i].thinks {
			if again[i].thinks[j] != plans[i].thinks[j] {
				t.Fatalf("think %d/%d differs across generations", i, j)
			}
		}
	}
}
