package bench

import (
	"context"
	"math"
	"testing"
	"time"

	"rai/internal/clock"
	"rai/internal/docstore"
)

// putSpan persists one span document shaped the way the collector
// writes them (only the fields attribution reads).
func putSpan(t *testing.T, db *docstore.DB, traceID, jobID, name string, start time.Time, d time.Duration) {
	t.Helper()
	doc := docstore.M{
		"trace_id":  traceID,
		"span_id":   traceID + "/" + name,
		"parent_id": "",
		"name":      name,
		"service":   "test",
		"start":     start.UTC().Format(time.RFC3339Nano),
		"end":       start.Add(d).UTC().Format(time.RFC3339Nano),
		"start_s":   float64(start.Unix()),
	}
	if jobID != "" {
		doc["job_id"] = jobID
	}
	if _, err := db.Insert("traces", doc); err != nil {
		t.Fatal(err)
	}
}

// putJobTrace persists a complete submission trace: a 1 s job root
// whose phases explain 890 ms of it (coverage 0.89).
func putJobTrace(t *testing.T, db *docstore.DB, traceID, jobID string, t0 time.Time) {
	t.Helper()
	putSpan(t, db, traceID, jobID, "job", t0, time.Second)
	putSpan(t, db, traceID, "", "upload", t0, 100*time.Millisecond)
	putSpan(t, db, traceID, "", "enqueue", t0.Add(100*time.Millisecond), 50*time.Millisecond)
	putSpan(t, db, traceID, "", "dequeue", t0.Add(250*time.Millisecond), 10*time.Millisecond) // queue delay = 100ms
	putSpan(t, db, traceID, "", "download", t0.Add(260*time.Millisecond), 40*time.Millisecond)
	putSpan(t, db, traceID, "", "build", t0.Add(300*time.Millisecond), 200*time.Millisecond)
	putSpan(t, db, traceID, "", "run", t0.Add(500*time.Millisecond), 400*time.Millisecond)
}

// TestAttributePhasesSampledSubset is the shape a head-sampled bench
// run produces: spans exist only for the kept jobs, and attribution is
// asked about exactly those. Every kept trace must resolve with the
// full decomposition; nothing counts as missing.
func TestAttributePhasesSampledSubset(t *testing.T) {
	db := docstore.New()
	t0 := time.Date(2017, 5, 1, 12, 0, 0, 0, time.UTC)
	putJobTrace(t, db, "tr-1", "job-1", t0)
	putJobTrace(t, db, "tr-2", "job-2", t0.Add(2*time.Second))
	// job-3 and job-4 were sampled out: no spans, and not asked about.

	att := AttributePhases(context.Background(), clock.NewVirtual(t0), db, []string{"job-1", "job-2"}, 0)
	if att.Traced != 2 || att.Missing != 0 {
		t.Fatalf("traced/missing = %d/%d, want 2/0", att.Traced, att.Missing)
	}
	if math.Abs(att.Coverage-0.89) > 0.005 {
		t.Errorf("coverage = %.3f, want ~0.89", att.Coverage)
	}
	for _, name := range []string{"upload", "enqueue", "queue", "download", "build", "run", "total"} {
		h := att.Hists[name]
		if h == nil {
			t.Fatalf("phase %q missing from attribution", name)
		}
		if got := h.Snapshot().Count; got != 2 {
			t.Errorf("phase %q observed %d jobs, want 2", name, got)
		}
	}
	if p := att.PhasePercentiles()["queue"]; math.Abs(p.Mean-0.1) > 0.01 {
		t.Errorf("queue delay mean = %.3fs, want ~0.1s", p.Mean)
	}
}

// TestAttributePhasesMissingTracesHonest: jobs with no persisted spans
// must be reported as missing, with zero coverage and no phase
// histograms — never fabricated numbers.
func TestAttributePhasesMissingTracesHonest(t *testing.T) {
	db := docstore.New()
	t0 := time.Date(2017, 5, 1, 12, 0, 0, 0, time.UTC)
	att := AttributePhases(context.Background(), clock.NewVirtual(t0), db, []string{"gone-1", "gone-2"}, 0)
	if att.Traced != 0 || att.Missing != 2 {
		t.Fatalf("traced/missing = %d/%d, want 0/2", att.Traced, att.Missing)
	}
	if att.Coverage != 0 {
		t.Errorf("coverage = %v for zero traced jobs, want 0", att.Coverage)
	}
	if len(att.Hists) != 0 {
		t.Errorf("fabricated %d phase histograms from missing traces", len(att.Hists))
	}
}

// TestAttributePhasesPartialTraceNoFabrication: a trace whose child
// spans arrived but whose job root has not been persisted yet carries
// no total — it must stay missing and contribute nothing, not be
// attributed from the partial data.
func TestAttributePhasesPartialTraceNoFabrication(t *testing.T) {
	db := docstore.New()
	t0 := time.Date(2017, 5, 1, 12, 0, 0, 0, time.UTC)
	// The upload span carries the job_id attr here so TraceByJob can
	// resolve the trace even though the root is absent.
	putSpan(t, db, "tr-part", "job-part", "upload", t0, 100*time.Millisecond)
	putSpan(t, db, "tr-part", "", "build", t0.Add(time.Second), 200*time.Millisecond)

	att := AttributePhases(context.Background(), clock.NewVirtual(t0), db, []string{"job-part"}, 0)
	if att.Traced != 0 || att.Missing != 1 {
		t.Fatalf("traced/missing = %d/%d, want 0/1", att.Traced, att.Missing)
	}
	if len(att.Hists) != 0 {
		t.Errorf("recorded phases from a rootless trace: %v", att.Hists)
	}
}

// TestAttributePhasesRetriesUntilPersisted: the collector persists
// asynchronously, so attribution polls. A trace that lands after the
// first pass must still resolve before the deadline.
func TestAttributePhasesRetriesUntilPersisted(t *testing.T) {
	db := docstore.New()
	t0 := time.Date(2017, 5, 1, 12, 0, 0, 0, time.UTC)
	clk := clock.NewVirtual(t0)
	done := make(chan *PhaseAttribution, 1)
	go func() {
		done <- AttributePhases(context.Background(), clk, db, []string{"job-late"}, 10*time.Second)
	}()
	// Wait for the first pass to miss and park on the retry timer, then
	// persist the trace and release the timer.
	for i := 0; clk.PendingTimers() == 0; i++ {
		if i > 5000 {
			t.Fatal("attribution never armed its retry timer")
		}
		time.Sleep(time.Millisecond)
	}
	putJobTrace(t, db, "tr-late", "job-late", t0)
	clk.Advance(100 * time.Millisecond)
	att := <-done
	if att.Traced != 1 || att.Missing != 0 {
		t.Fatalf("traced/missing = %d/%d, want 1/0 after retry", att.Traced, att.Missing)
	}
}
