package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rai/internal/auth"
	"rai/internal/clock"
	"rai/internal/core"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/sim"
	"rai/internal/telemetry"
	"rai/internal/workload"
)

// LoadConfig shapes the closed-loop load: M students, each cycling
// submit → wait-for-End → download-build → think until the duration
// elapses.
type LoadConfig struct {
	Students int
	Duration time.Duration
	Seed     uint64
	// ThinkMin/ThinkMax clamp the course model's inter-submission gaps
	// after compression to benchmark scale.
	ThinkMin time.Duration
	ThinkMax time.Duration
	// LogWait bounds one submission's wait for its End message.
	LogWait time.Duration
	// DownloadBuild fetches the /build artifact after a success, closing
	// the loop the way real students do.
	DownloadBuild bool
	// SampleRate is the head-sampling rate applied at each submission's
	// trace root (0 or >= 1 keeps every trace). All students share one
	// sampler so the kept fraction is measured across the whole run.
	SampleRate float64
}

// studentPlan is one student's scripted behaviour, derived from the
// workload course model: the project specs they would submit, in
// order, and the think time before each next submission.
type studentPlan struct {
	creds  auth.Credentials
	specs  []project.Spec
	thinks []time.Duration
}

// LoadResult is what the drive measured.
type LoadResult struct {
	// Latency is the merged client-observed submit-to-End distribution
	// (per-student histograms merged via HDR snapshots).
	Latency *telemetry.HDRSnapshot
	Counts  JobCounts
	JobIDs  []string
	// SampledJobIDs are the jobs whose traces survived head sampling —
	// the only ones phase attribution can hope to resolve.
	SampledJobIDs []string
	Elapsed       time.Duration
}

// BuildPlans derives one scripted behaviour per student from the
// course model: student i plays team (i mod teams) of a generated
// Fall-2016-shaped course, with that team's submission specs and its
// inter-submission gaps compressed so the median think lands mid-range
// between min and max.
func BuildPlans(cfg LoadConfig, creds []auth.Credentials) []studentPlan {
	course := workload.Generate(workload.Config{
		Seed:              cfg.Seed,
		Teams:             cfg.Students,
		Students:          cfg.Students,
		Start:             workload.Fall2016().Start,
		Deadline:          workload.Fall2016().Deadline,
		TargetSubmissions: cfg.Students * 400,
	})
	byTeam := map[string][]workload.Submission{}
	for _, s := range course.Submissions {
		byTeam[s.Team] = append(byTeam[s.Team], s)
	}
	// Compression factor: map the median course gap onto the middle of
	// the configured think range.
	var gaps []time.Duration
	for _, subs := range byTeam {
		for i := 1; i < len(subs); i++ {
			gaps = append(gaps, subs[i].Time.Sub(subs[i-1].Time))
		}
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	scale := 1.0
	if len(gaps) > 0 {
		median := gaps[len(gaps)/2]
		target := (cfg.ThinkMin + cfg.ThinkMax) / 2
		if median > 0 && target > 0 {
			scale = float64(target) / float64(median)
		}
	}
	clampThink := func(d time.Duration) time.Duration {
		scaled := time.Duration(float64(d) * scale)
		if scaled < cfg.ThinkMin {
			return cfg.ThinkMin
		}
		if scaled > cfg.ThinkMax {
			return cfg.ThinkMax
		}
		return scaled
	}
	plans := make([]studentPlan, cfg.Students)
	for i := range plans {
		plans[i].creds = creds[i]
		team := course.Teams[i%len(course.Teams)]
		subs := byTeam[team.Name]
		for j, s := range subs {
			spec := s.Spec
			// The load generator plays every student as themselves so the
			// workers' per-user rate limiter sees distinct users.
			spec.Team = creds[i].UserName
			plans[i].specs = append(plans[i].specs, spec)
			think := cfg.ThinkMin
			if j+1 < len(subs) {
				think = clampThink(subs[j+1].Time.Sub(subs[j].Time))
			}
			plans[i].thinks = append(plans[i].thinks, think)
		}
		if len(plans[i].specs) == 0 {
			// Degenerate course (tiny target): fall back to one default run.
			plans[i].specs = []project.Spec{{Team: creds[i].UserName}}
			plans[i].thinks = []time.Duration{cfg.ThinkMin}
		}
	}
	return plans
}

// RunLoad drives every student against the cluster until the duration
// elapses, recording client-observed latency per student and merging
// the distributions at the end. logTo receives progress lines.
func RunLoad(ctx context.Context, clk clock.Clock, c *Cluster, cfg LoadConfig, plans []studentPlan, logTo io.Writer) (*LoadResult, error) {
	if clk == nil {
		clk = clock.Real{}
	}
	if cfg.LogWait <= 0 {
		cfg.LogWait = 2 * time.Minute
	}
	loadCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		counts     JobCounts
		jobMu      sync.Mutex
		jobIDs     []string
		sampledIDs []string
		hists      = make([]*telemetry.HDRHistogram, len(plans))
		errMu      sync.Mutex
		loadErr    error
		wg         sync.WaitGroup
	)
	// One sampler across all students: each verdict is decided once at
	// the job's trace root and propagated, and the run-wide kept
	// fraction is what the honesty assertions check.
	var sampler *telemetry.Sampler
	if cfg.SampleRate > 0 && cfg.SampleRate < 1 {
		sampler = telemetry.NewSampler(cfg.SampleRate)
	}
	setErr := func(err error) {
		errMu.Lock()
		if loadErr == nil {
			loadErr = err
		}
		errMu.Unlock()
	}
	for i := range hists {
		hists[i] = telemetry.NewHDRHistogram()
	}
	started := clk.Now()
	deadline := started.Add(cfg.Duration)

	for i := range plans {
		wg.Add(1)
		go func(i int, plan studentPlan) {
			defer wg.Done()
			queue, err := core.NewRemoteQueue(loadCtx, c.BrokerAddr)
			if err != nil {
				setErr(fmt.Errorf("bench: student %d: %w", i, err))
				return
			}
			defer queue.Close()
			// Each student ships its client-side spans (job root, upload,
			// enqueue) to the collector over its own broker connection —
			// without them the phase decomposition has no trace total.
			exp := telemetry.NewExporter(loadCtx, "rai", core.ShipTelemetry(queue))
			defer exp.Close()
			client := &core.Client{
				Creds:   plan.creds,
				Queue:   queue,
				Objects: objstore.NewClient(c.FSURL),
				Stdout:  io.Discard,
				Clock:   clk,
				LogWait: cfg.LogWait,
				Sampler: sampler,
				Tracer: telemetry.NewTracer(4096,
					telemetry.WithSpanSink(sampler.SpanSink(exp.ExportSpan)),
					telemetry.WithTracerInstance(telemetry.NewInstanceID(plan.creds.UserName))),
			}
			defer exp.Flush()
			for turn := 0; clk.Now().Before(deadline) && loadCtx.Err() == nil; turn++ {
				spec := plan.specs[turn%len(plan.specs)]
				archive, err := sim.PackProject(spec)
				if err != nil {
					setErr(fmt.Errorf("bench: packing project: %w", err))
					return
				}
				t0 := clk.Now()
				atomic.AddUint64(&counts.Submitted, 1)
				res, err := client.SubmitContext(loadCtx, core.KindRun, nil, archive)
				hists[i].ObserveDuration(clk.Now().Sub(t0))
				if res != nil && res.JobID != "" {
					jobMu.Lock()
					jobIDs = append(jobIDs, res.JobID)
					if res.Sampled {
						sampledIDs = append(sampledIDs, res.JobID)
						atomic.AddUint64(&counts.Sampled, 1)
					}
					jobMu.Unlock()
				}
				switch {
				case err != nil && loadCtx.Err() != nil:
					return // shutdown race, not a measurement
				case err != nil:
					atomic.AddUint64(&counts.Errors, 1)
				case res.Status == core.StatusSucceeded:
					atomic.AddUint64(&counts.Succeeded, 1)
					if cfg.DownloadBuild {
						if _, err := client.DownloadBuildContext(loadCtx, res); err == nil {
							atomic.AddUint64(&counts.Downloads, 1)
						}
					}
				default:
					atomic.AddUint64(&counts.Failed, 1)
				}
				think := plan.thinks[turn%len(plan.thinks)]
				select {
				case <-loadCtx.Done():
					return
				case <-clk.After(think):
				}
			}
		}(i, plans[i])
	}
	wg.Wait()
	elapsed := clk.Now().Sub(started)
	errMu.Lock()
	err := loadErr
	errMu.Unlock()
	if err != nil {
		return nil, err
	}

	merged := telemetry.NewHDRHistogram().Snapshot()
	for _, h := range hists {
		if err := merged.Merge(h.Snapshot()); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(logTo, "load done: %d submitted, %d succeeded, %d failed, %d errors in %s\n",
		counts.Submitted, counts.Succeeded, counts.Failed, counts.Errors, elapsed.Round(time.Millisecond))
	if sampler != nil {
		fmt.Fprintf(logTo, "sampling: %d of %d job traces kept (rate %.2f)\n",
			counts.Sampled, len(jobIDs), cfg.SampleRate)
	}
	return &LoadResult{Latency: merged, Counts: counts, JobIDs: jobIDs, SampledJobIDs: sampledIDs, Elapsed: elapsed}, nil
}
