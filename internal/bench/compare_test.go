package bench

import (
	"path/filepath"
	"testing"

	"rai/internal/telemetry"
)

// baseReport is a plausible baseline for threshold tests.
func baseReport() *Report {
	return &Report{
		Schema:     Schema,
		Throughput: 10,
		Latency:    Percentiles{P50: 0.05, P99: 0.15, P999: 0.2, Count: 100},
		Phases: map[string]Percentiles{
			"upload": {P99: 0.01},
			"run":    {P99: 0.1},
			"total":  {P99: 0.15},
		},
	}
}

func TestCompareNoRegression(t *testing.T) {
	old, cur := baseReport(), baseReport()
	breaches, err := Compare(old, cur, Thresholds{MaxThroughputDrop: 0.5, MaxLatencyGrowth: 1.0, LatencyFloorS: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(breaches) != 0 {
		t.Fatalf("identical reports breached: %v", breaches)
	}
}

func TestCompareInjectedRegression(t *testing.T) {
	old, cur := baseReport(), baseReport()
	cur.Throughput = 2                      // 80% drop vs 50% allowed
	cur.Latency.P99 = 1.0                   // ~6.7x vs 2x allowed
	cur.Phases["run"] = Percentiles{P99: 5} // 50x
	breaches, err := Compare(old, cur, Thresholds{MaxThroughputDrop: 0.5, MaxLatencyGrowth: 1.0, LatencyFloorS: 0})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, b := range breaches {
		got[b.Metric] = true
	}
	for _, want := range []string{"throughput_jobs_per_s", "latency.p99", "phase.run.p99"} {
		if !got[want] {
			t.Errorf("expected breach on %s, got %v", want, breaches)
		}
	}
	if got["latency.p50"] {
		t.Errorf("p50 did not regress but breached: %v", breaches)
	}
}

// TestCompareLatencyFloor: microsecond-scale baselines must not fail on
// absolute noise that is far below the floor, even at huge ratios.
func TestCompareLatencyFloor(t *testing.T) {
	old, cur := baseReport(), baseReport()
	old.Latency.P99, cur.Latency.P99 = 0.0001, 0.05 // 500x growth but +49.9ms absolute
	breaches, err := Compare(old, cur, Thresholds{MaxLatencyGrowth: 1.0, LatencyFloorS: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range breaches {
		if b.Metric == "latency.p99" {
			t.Fatalf("floor did not absorb noise: %v", b)
		}
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	old, cur := baseReport(), baseReport()
	cur.Schema = Schema + 1
	if _, err := Compare(old, cur, DefaultThresholds()); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}

// TestComparePhaseOnlyInOne: a phase present in only one report is
// information, not a regression.
func TestComparePhaseOnlyInOne(t *testing.T) {
	old, cur := baseReport(), baseReport()
	cur.Phases["queue"] = Percentiles{P99: 100}
	delete(cur.Phases, "upload")
	breaches, err := Compare(old, cur, Thresholds{MaxLatencyGrowth: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(breaches) != 0 {
		t.Fatalf("asymmetric phases breached: %v", breaches)
	}
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	r := baseReport()
	r.Stamp = telemetry.NewStamp("raibench", "test")
	r.Jobs = JobCounts{Submitted: 100, Succeeded: 95, Failed: 5}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput != r.Throughput || got.Jobs != r.Jobs || got.Latency != r.Latency {
		t.Fatalf("round trip mangled report: %+v vs %+v", got, r)
	}
	if got.Phases["run"].P99 != r.Phases["run"].P99 {
		t.Fatalf("phases lost in round trip")
	}
	// A future-schema file is refused, not misread.
	r.Schema = Schema + 10
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil {
		t.Fatal("wrong-schema report loaded")
	}
}

func TestPercentilesOf(t *testing.T) {
	h := telemetry.NewHDRHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 0.001) // 1ms .. 1s uniform
	}
	p := PercentilesOf(h.Snapshot())
	if p.Count != 1000 {
		t.Fatalf("count = %d", p.Count)
	}
	// ~3.1% structural relative error.
	checks := []struct{ got, want float64 }{
		{p.P50, 0.5}, {p.P90, 0.9}, {p.P99, 0.99}, {p.P999, 0.999}, {p.Max, 1.0},
	}
	for _, c := range checks {
		if c.got < c.want*0.95 || c.got > c.want*1.05 {
			t.Errorf("percentile %v outside 5%% of %v", c.got, c.want)
		}
	}
	if zero := PercentilesOf(nil); zero != (Percentiles{}) {
		t.Fatalf("nil snapshot gave %+v", zero)
	}
}

func TestSortedPhaseNames(t *testing.T) {
	r := baseReport()
	r.Phases["zz_custom"] = Percentiles{}
	names := r.SortedPhaseNames()
	want := []string{"upload", "run", "total", "zz_custom"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}
