// Package bench is the course-scale macro-benchmark harness: it boots
// the real daemons as subprocesses over loopback, drives simulated
// students through the submit → poll → download-build loop with the
// workload package's course model, scrapes every daemon's /metrics
// while the load runs, attributes each submission's latency to its
// pipeline phases from the collector's span store, and emits a
// schema-versioned report that `raibench compare` diffs across PRs —
// the tracked perf trajectory the ROADMAP's scale items measure
// themselves against.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"rai/internal/telemetry"
)

// Schema identifies the BENCH_*.json layout. Bump on incompatible
// changes; compare refuses to diff mismatched schemas.
const Schema = 1

// Percentiles condenses an HDR snapshot into the fields the trajectory
// tracks. All latencies are seconds.
type Percentiles struct {
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	Count uint64  `json:"count"`
}

// PercentilesOf summarizes a snapshot; a nil or empty snapshot yields
// the zero value.
func PercentilesOf(s *telemetry.HDRSnapshot) Percentiles {
	if s == nil || s.Count == 0 {
		return Percentiles{}
	}
	return Percentiles{
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Mean:  s.Mean(),
		Max:   s.Max,
		Count: s.Count,
	}
}

// RunConfig records how the measurement was taken, so a trajectory
// entry is reproducible and two entries are comparable.
type RunConfig struct {
	Students          int     `json:"students"`
	Workers           int     `json:"workers"`
	WorkerConcurrency int     `json:"worker_concurrency"`
	DurationS         float64 `json:"duration_s"`
	Seed              uint64  `json:"seed"`
	FullImages        int     `json:"full_images"`
	ThinkMinS         float64 `json:"think_min_s"`
	ThinkMaxS         float64 `json:"think_max_s"`
	ScrapeIntervalS   float64 `json:"scrape_interval_s"`
	// TraceSampleRate is the head-sampling rate the load ran at (0 when
	// every trace was kept — the pre-sampling layout).
	TraceSampleRate float64 `json:"trace_sample_rate,omitempty"`
	// TailLingerS is the collector's tail-retention linger window (0 =
	// tail retention off).
	TailLingerS float64 `json:"tail_linger_s,omitempty"`
}

// JobCounts are the load generator's outcome counters.
type JobCounts struct {
	Submitted uint64 `json:"submitted"`
	Succeeded uint64 `json:"succeeded"`
	Failed    uint64 `json:"failed"`
	Errors    uint64 `json:"errors"`
	Downloads uint64 `json:"downloads"`
	// Sampled counts jobs whose traces survived head sampling (absent
	// when the run kept everything).
	Sampled uint64 `json:"sampled,omitempty"`
}

// DaemonSample is one /metrics scrape of one daemon.
type DaemonSample struct {
	OffsetS       float64 `json:"offset_s"`
	ResidentBytes float64 `json:"resident_bytes"`
	HeapBytes     float64 `json:"heap_bytes"`
	Goroutines    float64 `json:"goroutines"`
	GCCycles      float64 `json:"gc_cycles"`
}

// DaemonStats is a daemon's health trajectory over the run plus its
// final drop/retry counters.
type DaemonStats struct {
	Service       string         `json:"service"`
	Samples       []DaemonSample `json:"samples"`
	DroppedTotal  float64        `json:"dropped_total"`
	RetriesTotal  float64        `json:"retries_total"`
	ScrapeErrors  int            `json:"scrape_errors"`
	FinalResident float64        `json:"final_resident_bytes"`
}

// Report is the BENCH_*.json document.
type Report struct {
	Schema     int             `json:"schema"`
	Stamp      telemetry.Stamp `json:"stamp"`
	Config     RunConfig       `json:"config"`
	Jobs       JobCounts       `json:"jobs"`
	Throughput float64         `json:"throughput_jobs_per_s"`
	// Latency is the client-observed submit-to-End distribution.
	Latency Percentiles `json:"latency"`
	// Phases decomposes traced submissions: upload, enqueue, queue,
	// download, build, run, and the trace-side total.
	Phases map[string]Percentiles `json:"phases"`
	// PhaseCoverage is mean(sum of phases / total) over attributed jobs:
	// how much of the end-to-end time the decomposition explains. The
	// acceptance bar is that this stays near 1 (small gaps are worker
	// bookkeeping between spans).
	PhaseCoverage float64 `json:"phase_coverage"`
	// TracedJobs / MissingTraces report attribution reach.
	TracedJobs    int           `json:"traced_jobs"`
	MissingTraces int           `json:"missing_traces"`
	Daemons       []DaemonStats `json:"daemons"`
	// Resubmit holds the delta-transfer measurements when the run used
	// -resubmit mode (nil otherwise).
	Resubmit *ResubmitReport `json:"resubmit,omitempty"`
	Notes    map[string]any  `json:"notes,omitempty"`
}

// PhaseNames is the canonical phase order for rendering.
var PhaseNames = []string{"upload", "enqueue", "queue", "download", "cache", "build", "run", "total"}

// WriteFile marshals the report with stable formatting.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads and schema-checks a BENCH_*.json file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: %s has schema %d, this build reads schema %d", path, r.Schema, Schema)
	}
	return &r, nil
}

// Format renders the human-readable run summary raibench prints.
func (r *Report) Format() string {
	out := fmt.Sprintf("%s\n", r.Stamp)
	out += fmt.Sprintf("load: %d students, %d workers × %d, %s\n",
		r.Config.Students, r.Config.Workers, r.Config.WorkerConcurrency,
		time.Duration(r.Config.DurationS*float64(time.Second)).Round(time.Millisecond))
	out += fmt.Sprintf("jobs: %d submitted, %d succeeded, %d failed, %d errors — %.2f jobs/s\n",
		r.Jobs.Submitted, r.Jobs.Succeeded, r.Jobs.Failed, r.Jobs.Errors, r.Throughput)
	if r.Config.TraceSampleRate > 0 && r.Config.TraceSampleRate < 1 {
		out += fmt.Sprintf("sampling: rate %.2f, %d job traces kept\n",
			r.Config.TraceSampleRate, r.Jobs.Sampled)
	}
	out += fmt.Sprintf("latency: p50 %s  p90 %s  p99 %s  p999 %s  max %s\n",
		fmtSec(r.Latency.P50), fmtSec(r.Latency.P90), fmtSec(r.Latency.P99),
		fmtSec(r.Latency.P999), fmtSec(r.Latency.Max))
	if len(r.Phases) > 0 {
		out += fmt.Sprintf("phases (%d traced, %d missing, coverage %.1f%%):\n",
			r.TracedJobs, r.MissingTraces, 100*r.PhaseCoverage)
		for _, name := range PhaseNames {
			p, ok := r.Phases[name]
			if !ok {
				continue
			}
			out += fmt.Sprintf("  %-9s p50 %-10s p99 %-10s mean %s\n",
				name, fmtSec(p.P50), fmtSec(p.P99), fmtSec(p.Mean))
		}
	}
	for _, d := range r.Daemons {
		last := DaemonSample{}
		if len(d.Samples) > 0 {
			last = d.Samples[len(d.Samples)-1]
		}
		out += fmt.Sprintf("  %-12s rss %s  heap %s  goroutines %.0f  gc %.0f  dropped %.0f  retries %.0f\n",
			d.Service, fmtBytes(last.ResidentBytes), fmtBytes(last.HeapBytes),
			last.Goroutines, last.GCCycles, d.DroppedTotal, d.RetriesTotal)
	}
	return out
}

// SortedPhaseNames returns the report's phase keys in canonical order,
// unknown names appended alphabetically.
func (r *Report) SortedPhaseNames() []string {
	known := map[string]bool{}
	var out []string
	for _, n := range PhaseNames {
		known[n] = true
		if _, ok := r.Phases[n]; ok {
			out = append(out, n)
		}
	}
	var extra []string
	for n := range r.Phases {
		if !known[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}
