package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"rai/internal/auth"
	"rai/internal/cas"
	"rai/internal/clock"
	"rai/internal/core"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/telemetry"
	"rai/internal/vfs"
)

// Resubmit mode (DESIGN.md §16): instead of cycling the course model's
// project specs, every student keeps ONE project and iterates on it the
// way real students do — submit, get feedback, edit a few lines, submit
// again. Turn 0 is the cold upload, turn 1 resubmits the identical tree
// (the "oops, forgot to save" case the warm build cache answers), and
// every later turn edits a small fraction of one file. The interesting
// numbers are bytes-on-the-wire per submission class and the cache hit
// rate, which is what ResubmitStats records.

// ResubmitStats aggregates the delta-transfer measurements of one run.
type ResubmitStats struct {
	mu sync.Mutex
	// Per-class wire bytes (manifest + uploaded chunks) and counts.
	ColdBytes, UnchangedBytes, EditedBytes int64
	ColdCount, UnchangedCount, EditedCount int
	TreeBytes                              int64 // sum of full tree sizes across submissions
	CacheHits, CacheableMisses             int   // over unchanged resubmissions only
}

func (s *ResubmitStats) record(turnKind string, t *core.TransferStats, cached bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.TreeBytes += t.TotalBytes
	switch turnKind {
	case "cold":
		s.ColdBytes += t.SentBytes
		s.ColdCount++
	case "unchanged":
		s.UnchangedBytes += t.SentBytes
		s.UnchangedCount++
		if cached {
			s.CacheHits++
		} else {
			s.CacheableMisses++
		}
	default:
		s.EditedBytes += t.SentBytes
		s.EditedCount++
	}
}

// ResubmitReport is the JSON section a resubmit run adds to the bench
// report.
type ResubmitReport struct {
	Submissions        int     `json:"submissions"`
	ColdBytesMean      float64 `json:"cold_bytes_mean"`
	UnchangedBytesMean float64 `json:"unchanged_bytes_mean"`
	EditedBytesMean    float64 `json:"edited_bytes_mean"`
	TreeBytesMean      float64 `json:"tree_bytes_mean"`
	// UnchangedReduction is 1 − unchanged/cold mean wire bytes: the
	// fraction of the upload the delta protocol removed for an identical
	// tree. The acceptance bar is ≥ 0.9.
	UnchangedReduction float64 `json:"unchanged_reduction"`
	// EditedReduction is the same ratio for small-edit resubmissions.
	EditedReduction float64 `json:"edited_reduction"`
	CacheHits       int     `json:"cache_hits"`
	// CacheHitRate is hits over unchanged resubmissions (the only class
	// eligible to hit).
	CacheHitRate   float64 `json:"cache_hit_rate"`
	WireBytesTotal int64   `json:"wire_bytes_total"`
}

// Report renders the aggregate into its JSON form.
func (s *ResubmitStats) Report() *ResubmitReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	mean := func(sum int64, n int) float64 {
		if n == 0 {
			return 0
		}
		return float64(sum) / float64(n)
	}
	r := &ResubmitReport{
		Submissions:        s.ColdCount + s.UnchangedCount + s.EditedCount,
		ColdBytesMean:      mean(s.ColdBytes, s.ColdCount),
		UnchangedBytesMean: mean(s.UnchangedBytes, s.UnchangedCount),
		EditedBytesMean:    mean(s.EditedBytes, s.EditedCount),
		TreeBytesMean:      mean(s.TreeBytes, s.ColdCount+s.UnchangedCount+s.EditedCount),
		CacheHits:          s.CacheHits,
		WireBytesTotal:     s.ColdBytes + s.UnchangedBytes + s.EditedBytes,
	}
	if r.ColdBytesMean > 0 {
		r.UnchangedReduction = 1 - r.UnchangedBytesMean/r.ColdBytesMean
		r.EditedReduction = 1 - r.EditedBytesMean/r.ColdBytesMean
	}
	if s.UnchangedCount > 0 {
		r.CacheHitRate = float64(s.CacheHits) / float64(s.UnchangedCount)
	}
	return r
}

// Check asserts the run's acceptance bars: an unchanged tree must
// transfer ≥ 90% fewer bytes than the cold upload, and its resubmission
// must hit the warm build cache.
func (r *ResubmitReport) Check() error {
	if r.ColdBytesMean == 0 || r.UnchangedBytesMean == 0 {
		return fmt.Errorf("resubmit: run too short — no unchanged resubmission completed (cold %d, unchanged mean %.0f)",
			int(r.ColdBytesMean), r.UnchangedBytesMean)
	}
	if r.UnchangedReduction < 0.9 {
		return fmt.Errorf("resubmit: unchanged-tree transfer reduction %.1f%% < 90%%", 100*r.UnchangedReduction)
	}
	if r.CacheHits == 0 {
		return fmt.Errorf("resubmit: no build cache hits across %d unchanged resubmissions", r.Submissions)
	}
	return nil
}

// resubmitProject renders one student's working tree: the project spec
// plus a multi-chunk weights header, so the delta ratios measure chunk
// reuse rather than manifest overhead.
func resubmitProject(creds auth.Credentials) (*vfs.FS, error) {
	fs := vfs.New()
	if err := project.WriteTo(fs, "/p", project.Spec{Team: creds.UserName}); err != nil {
		return nil, err
	}
	var w bytes.Buffer
	for i := 0; w.Len() < 8*cas.AvgChunk; i++ {
		fmt.Fprintf(&w, "static const float w%06d = %d.%06de-3f; // %s\n", i, i%97, i*i%999983, creds.UserName)
	}
	if err := fs.WriteFile("/p/src/weights.h", w.Bytes()); err != nil {
		return nil, err
	}
	return fs, nil
}

// editOneLine rewrites a single line of the weights header in place —
// the "small fraction of one file" edit between iterations.
func editOneLine(fs *vfs.FS, turn int) error {
	data, err := fs.ReadFile("/p/src/weights.h")
	if err != nil {
		return err
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) > 1 {
		i := (turn * 37) % (len(lines) - 1)
		lines[i] = []byte(fmt.Sprintf("static const float tuned_%d = %d.0f; // edited turn %d", i, turn, turn))
	}
	return fs.WriteFile("/p/src/weights.h", bytes.Join(lines, []byte("\n")))
}

// RunResubmitLoad drives every student through the iterate-on-one-
// project loop until the duration elapses. Students use the delta
// protocol exclusively; a fallback to full upload is an error, since
// the cluster under test is supposed to support it.
func RunResubmitLoad(ctx context.Context, clk clock.Clock, c *Cluster, cfg LoadConfig, creds []auth.Credentials, logTo io.Writer) (*LoadResult, *ResubmitStats, error) {
	if clk == nil {
		clk = clock.Real{}
	}
	if cfg.LogWait <= 0 {
		cfg.LogWait = 2 * time.Minute
	}
	loadCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		counts  JobCounts
		jobMu   sync.Mutex
		jobIDs  []string
		stats   ResubmitStats
		hists   = make([]*telemetry.HDRHistogram, len(creds))
		errMu   sync.Mutex
		loadErr error
		wg      sync.WaitGroup
	)
	setErr := func(err error) {
		errMu.Lock()
		if loadErr == nil {
			loadErr = err
		}
		errMu.Unlock()
	}
	for i := range hists {
		hists[i] = telemetry.NewHDRHistogram()
	}
	started := clk.Now()
	deadline := started.Add(cfg.Duration)

	for i := range creds {
		wg.Add(1)
		go func(i int, cred auth.Credentials) {
			defer wg.Done()
			queue, err := core.NewRemoteQueue(loadCtx, c.BrokerAddr)
			if err != nil {
				setErr(fmt.Errorf("bench: student %d: %w", i, err))
				return
			}
			defer queue.Close()
			exp := telemetry.NewExporter(loadCtx, "rai", core.ShipTelemetry(queue))
			defer exp.Close()
			client := &core.Client{
				Creds:   cred,
				Queue:   queue,
				Objects: objstore.NewClient(c.FSURL),
				Stdout:  io.Discard,
				Clock:   clk,
				LogWait: cfg.LogWait,
				Tracer: telemetry.NewTracer(4096,
					telemetry.WithSpanSink(exp.ExportSpan),
					telemetry.WithTracerInstance(telemetry.NewInstanceID(cred.UserName))),
			}
			defer exp.Flush()
			fs, err := resubmitProject(cred)
			if err != nil {
				setErr(fmt.Errorf("bench: rendering project: %w", err))
				return
			}
			for turn := 0; clk.Now().Before(deadline) && loadCtx.Err() == nil; turn++ {
				turnKind := "cold"
				switch {
				case turn == 1:
					turnKind = "unchanged"
				case turn >= 2:
					turnKind = "edited"
					if err := editOneLine(fs, turn); err != nil {
						setErr(fmt.Errorf("bench: editing tree: %w", err))
						return
					}
				}
				m, src, err := cas.BuildVFS(fs, "/p")
				if err != nil {
					setErr(fmt.Errorf("bench: hashing tree: %w", err))
					return
				}
				t0 := clk.Now()
				atomic.AddUint64(&counts.Submitted, 1)
				res, err := client.SubmitManifestContext(loadCtx, core.KindRun, nil, m, src)
				hists[i].ObserveDuration(clk.Now().Sub(t0))
				if res != nil && res.JobID != "" {
					jobMu.Lock()
					jobIDs = append(jobIDs, res.JobID)
					jobMu.Unlock()
				}
				switch {
				case err != nil && loadCtx.Err() != nil:
					return // shutdown race, not a measurement
				case err != nil:
					atomic.AddUint64(&counts.Errors, 1)
				case res.Status == core.StatusSucceeded:
					atomic.AddUint64(&counts.Succeeded, 1)
					if res.Transfer != nil {
						stats.record(turnKind, res.Transfer, res.CachedBuild)
					}
					if cfg.DownloadBuild {
						if _, err := client.DownloadBuildContext(loadCtx, res); err == nil {
							atomic.AddUint64(&counts.Downloads, 1)
						}
					}
				default:
					atomic.AddUint64(&counts.Failed, 1)
				}
				select {
				case <-loadCtx.Done():
					return
				case <-clk.After(cfg.ThinkMin):
				}
			}
		}(i, creds[i])
	}
	wg.Wait()
	elapsed := clk.Now().Sub(started)
	errMu.Lock()
	err := loadErr
	errMu.Unlock()
	if err != nil {
		return nil, nil, err
	}

	merged := telemetry.NewHDRHistogram().Snapshot()
	for _, h := range hists {
		if err := merged.Merge(h.Snapshot()); err != nil {
			return nil, nil, err
		}
	}
	r := stats.Report()
	fmt.Fprintf(logTo, "resubmit load done: %d submitted, %d succeeded in %s\n",
		counts.Submitted, counts.Succeeded, elapsed.Round(time.Millisecond))
	fmt.Fprintf(logTo, "resubmit wire bytes: cold %.0f, unchanged %.0f (%.1f%% reduction), edited %.0f (%.1f%%); cache hits %d (rate %.2f)\n",
		r.ColdBytesMean, r.UnchangedBytesMean, 100*r.UnchangedReduction,
		r.EditedBytesMean, 100*r.EditedReduction, r.CacheHits, r.CacheHitRate)
	return &LoadResult{Latency: merged, Counts: counts, JobIDs: jobIDs, SampledJobIDs: jobIDs, Elapsed: elapsed}, &stats, nil
}
