// Package brokerd exposes an internal/broker engine over TCP so RAI
// clients and workers on different machines can exchange messages, the
// way the paper's deployment ran a shared queue service between student
// laptops and AWS workers.
//
// The wire protocol is deliberately simple: each frame is a 4-byte
// big-endian length followed by a JSON object. Requests carry a client
// sequence number that the matching reply echoes, so one connection can
// pipeline publishes while a subscription streams messages.
package brokerd

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Op codes used on the wire.
const (
	OpPub   = "PUB"   // client -> server: publish Body to Topic
	OpSub   = "SUB"   // client -> server: subscribe Topic/Channel
	OpAck   = "ACK"   // client -> server: acknowledge MsgID
	OpReq   = "REQ"   // client -> server: requeue MsgID
	OpPing  = "PING"  // client -> server: liveness check
	OpOK    = "OK"    // server -> client: success reply to Seq
	OpErr   = "ERR"   // server -> client: failure reply to Seq
	OpMsg   = "MSG"   // server -> client: delivered message
	OpClose = "CLOSE" // client -> server: close subscription
	OpStats = "STATS" // client -> server: queue statistics snapshot
)

// Frame is the single wire message shape for both directions.
type Frame struct {
	Op      string `json:"op"`
	Seq     uint64 `json:"seq,omitempty"`
	Topic   string `json:"topic,omitempty"`
	Channel string `json:"channel,omitempty"`
	// MaxInFlight applies to SUB.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MsgID identifies the message for ACK/REQ and deliveries.
	MsgID    uint64    `json:"msg_id,omitempty"`
	Body     []byte    `json:"body,omitempty"`
	Attempts int       `json:"attempts,omitempty"`
	Time     time.Time `json:"time"`
	Error    string    `json:"error,omitempty"`
	// Stats carries the broker snapshot in OpStats replies (the queue
	// depth signal provisioning watches, paper §VII).
	Stats []TopicStats `json:"stats,omitempty"`
}

// TopicStats mirrors broker.TopicStats on the wire.
type TopicStats struct {
	Topic    string         `json:"topic"`
	Backlog  int            `json:"backlog"`
	Channels []ChannelStats `json:"channels,omitempty"`
}

// ChannelStats mirrors broker.ChannelStats on the wire.
type ChannelStats struct {
	Channel     string `json:"channel"`
	Depth       int    `json:"depth"`
	InFlight    int    `json:"in_flight"`
	Subscribers int    `json:"subscribers"`
}

// maxFrameSize bounds a single frame (a project archive travels through
// the object store, not the queue, so frames stay small; 16 MiB is ample
// and caps memory per connection).
const maxFrameSize = 16 << 20

// WriteFrame encodes f with a length prefix.
func WriteFrame(w io.Writer, f *Frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if len(payload) > maxFrameSize {
		return fmt.Errorf("brokerd: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame decodes one length-prefixed frame.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("brokerd: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return nil, fmt.Errorf("brokerd: bad frame: %w", err)
	}
	return &f, nil
}
