// Package brokerd exposes an internal/broker engine over TCP so RAI
// clients and workers on different machines can exchange messages, the
// way the paper's deployment ran a shared queue service between student
// laptops and AWS workers.
//
// The wire protocol is deliberately simple: each frame is a 4-byte
// big-endian length followed by a payload. Requests carry a client
// sequence number that the matching reply echoes, so one connection can
// pipeline publishes while a subscription streams messages.
//
// Two payload encodings exist. Every connection starts in the legacy
// JSON encoding (a JSON object per frame). A client that also speaks
// the compact binary encoding opens with a HELLO frame; a
// binary-capable server replies OK carrying the agreed version and both
// directions switch (DESIGN.md §11). Servers never initiate the
// upgrade, so pre-HELLO clients interoperate unchanged, and a client
// whose HELLO is refused (ERR from an old server) stays on JSON.
package brokerd

import (
	"io"
	"time"
)

// Op codes used on the wire.
const (
	OpPub   = "PUB"   // client -> server: publish Body to Topic
	OpSub   = "SUB"   // client -> server: subscribe Topic/Channel
	OpAck   = "ACK"   // client -> server: acknowledge MsgID
	OpReq   = "REQ"   // client -> server: requeue MsgID
	OpPing  = "PING"  // client -> server: liveness check
	OpOK    = "OK"    // server -> client: success reply to Seq
	OpErr   = "ERR"   // server -> client: failure reply to Seq
	OpMsg   = "MSG"   // server -> client: delivered message
	OpClose = "CLOSE" // client -> server: close subscription
	OpStats = "STATS" // client -> server: queue statistics snapshot
	OpHello = "HELLO" // client -> server: negotiate the wire encoding
)

// Protocol versions carried in HELLO/OK frames.
const (
	// ProtocolJSON is the original encoding: JSON object payloads
	// (message bodies base64-inflated by encoding/json).
	ProtocolJSON = 1
	// ProtocolBinary is the compact encoding: fixed-width header, raw
	// body bytes, no per-frame reflection.
	ProtocolBinary = 2
)

// Frame is the single wire message shape for both directions.
type Frame struct {
	Op      string `json:"op"`
	Seq     uint64 `json:"seq,omitempty"`
	Topic   string `json:"topic,omitempty"`
	Channel string `json:"channel,omitempty"`
	// MaxInFlight applies to SUB.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MsgID identifies the message for ACK/REQ and deliveries.
	MsgID    uint64    `json:"msg_id,omitempty"`
	Body     []byte    `json:"body,omitempty"`
	Attempts int       `json:"attempts,omitempty"`
	Time     time.Time `json:"time"`
	Error    string    `json:"error,omitempty"`
	// Version carries the protocol version in HELLO requests and their
	// OK replies.
	Version int `json:"version,omitempty"`
	// Stats carries the broker snapshot in OpStats replies (the queue
	// depth signal provisioning watches, paper §VII).
	Stats []TopicStats `json:"stats,omitempty"`
}

// TopicStats mirrors broker.TopicStats on the wire.
type TopicStats struct {
	Topic    string         `json:"topic"`
	Backlog  int            `json:"backlog"`
	Channels []ChannelStats `json:"channels,omitempty"`
}

// ChannelStats mirrors broker.ChannelStats on the wire.
type ChannelStats struct {
	Channel     string `json:"channel"`
	Depth       int    `json:"depth"`
	InFlight    int    `json:"in_flight"`
	Subscribers int    `json:"subscribers"`
}

// maxFrameSize bounds a single frame (a project archive travels through
// the object store, not the queue, so frames stay small; 16 MiB is ample
// and caps memory per connection).
const maxFrameSize = 16 << 20

// WriteFrame encodes f in the legacy JSON encoding with a length
// prefix. Kept for wire compatibility (and the tests that speak the
// old protocol by hand); connections negotiate codecs via HELLO.
func WriteFrame(w io.Writer, f *Frame) error {
	return JSONCodec.Encode(w, f)
}

// ReadFrame decodes one length-prefixed legacy JSON frame.
func ReadFrame(r io.Reader) (*Frame, error) {
	return JSONCodec.Decode(r)
}

