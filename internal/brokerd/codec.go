package brokerd

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Codec is one payload encoding of the length-prefixed frame stream.
// Implementations must be safe for concurrent use (they hold no state;
// all connection state lives in frameReader/frameWriter).
type Codec interface {
	// Encode writes f as one length-prefixed frame.
	Encode(w io.Writer, f *Frame) error
	// Decode reads one length-prefixed frame.
	Decode(r io.Reader) (*Frame, error)
}

// JSONCodec is the legacy encoding: a JSON object per frame. Bodies
// are base64-inflated by encoding/json and every field name is spelled
// out, but any pre-HELLO client can speak it.
var JSONCodec Codec = jsonCodec{}

// BinaryCodec is the negotiated fast encoding: one op byte, fixed-width
// ids, and the body as raw bytes — no reflection, no base64. The rare
// STATS snapshot rides as an embedded JSON blob.
var BinaryCodec Codec = binaryCodec{}

// encPool recycles encode staging buffers so steady-state publishing
// allocates nothing for framing.
var encPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// putEncBuf returns a staging buffer to the pool unless it has grown
// past the point where keeping it would pin large message bodies.
func putEncBuf(b *bytes.Buffer) {
	if b.Cap() <= 64<<10 {
		b.Reset()
		encPool.Put(b)
	}
}

// readPayload reads one length-prefixed payload, enforcing the frame
// size limit. Shared by both codecs.
func readPayload(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("brokerd: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

type jsonCodec struct{}

func (jsonCodec) Encode(w io.Writer, f *Frame) error {
	buf := encPool.Get().(*bytes.Buffer)
	defer putEncBuf(buf)
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := json.NewEncoder(buf).Encode(f); err != nil {
		return err
	}
	p := buf.Bytes()
	n := len(p) - 4
	if n > maxFrameSize {
		return fmt.Errorf("brokerd: frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(p[:4], uint32(n))
	_, err := w.Write(p)
	return err
}

func (jsonCodec) Decode(r io.Reader) (*Frame, error) {
	payload, err := readPayload(r)
	if err != nil {
		return nil, err
	}
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return nil, fmt.Errorf("brokerd: bad frame: %w", err)
	}
	return &f, nil
}

// Binary frame layout (after the shared 4-byte big-endian length):
//
//	[0]     op code
//	[1:9]   seq        (uint64 BE)
//	[9:17]  msg id     (uint64 BE)
//	[17:21] attempts   (int32 BE)
//	[21:29] time       (int64 BE unix nanoseconds; see flagHasTime)
//	[29:33] max in flight (int32 BE)
//	[33]    flags
//	then three length-prefixed strings (uint32 BE + bytes):
//	topic, channel, error
//	then the stats blob (uint32 BE + JSON bytes, length 0 = none)
//	then the body: every remaining byte, raw.
const (
	binHeaderLen = 34
	flagHasTime  = 1 << 0 // distinguishes the zero time.Time from the epoch
)

// Binary op codes. Values are wire format — append only.
var opToCode = map[string]byte{
	OpPub: 1, OpSub: 2, OpAck: 3, OpReq: 4, OpPing: 5,
	OpOK: 6, OpErr: 7, OpMsg: 8, OpClose: 9, OpStats: 10, OpHello: 11,
}

var codeToOp = func() map[byte]string {
	m := make(map[byte]string, len(opToCode))
	for op, c := range opToCode {
		m[c] = op
	}
	return m
}()

type binaryCodec struct{}

func (binaryCodec) Encode(w io.Writer, f *Frame) error {
	code, ok := opToCode[f.Op]
	if !ok {
		return fmt.Errorf("brokerd: binary codec: unknown op %q", f.Op)
	}
	var statsJSON []byte
	if len(f.Stats) > 0 {
		var err error
		if statsJSON, err = json.Marshal(f.Stats); err != nil {
			return err
		}
	}
	n := binHeaderLen + 4 + len(f.Topic) + 4 + len(f.Channel) + 4 + len(f.Error) + 4 + len(statsJSON) + len(f.Body)
	if n > maxFrameSize {
		return fmt.Errorf("brokerd: frame of %d bytes exceeds limit", n)
	}
	buf := encPool.Get().(*bytes.Buffer)
	defer putEncBuf(buf)
	buf.Grow(4 + n)

	var hdr [4 + binHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[4] = code
	binary.BigEndian.PutUint64(hdr[5:13], f.Seq)
	binary.BigEndian.PutUint64(hdr[13:21], f.MsgID)
	binary.BigEndian.PutUint32(hdr[21:25], uint32(int32(f.Attempts)))
	var flags byte
	if !f.Time.IsZero() {
		flags |= flagHasTime
		binary.BigEndian.PutUint64(hdr[25:33], uint64(f.Time.UnixNano()))
	}
	binary.BigEndian.PutUint32(hdr[33:37], uint32(int32(f.MaxInFlight)))
	hdr[37] = flags
	buf.Write(hdr[:])
	writeBytes := func(s []byte) {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(s)))
		buf.Write(l[:])
		buf.Write(s)
	}
	writeBytes([]byte(f.Topic))
	writeBytes([]byte(f.Channel))
	writeBytes([]byte(f.Error))
	writeBytes(statsJSON)
	buf.Write(f.Body)
	_, err := w.Write(buf.Bytes())
	return err
}

func (binaryCodec) Decode(r io.Reader) (*Frame, error) {
	payload, err := readPayload(r)
	if err != nil {
		return nil, err
	}
	if len(payload) < binHeaderLen {
		return nil, fmt.Errorf("brokerd: binary frame truncated at %d bytes", len(payload))
	}
	op, ok := codeToOp[payload[0]]
	if !ok {
		return nil, fmt.Errorf("brokerd: binary codec: unknown op code %d", payload[0])
	}
	f := &Frame{
		Op:          op,
		Seq:         binary.BigEndian.Uint64(payload[1:9]),
		MsgID:       binary.BigEndian.Uint64(payload[9:17]),
		Attempts:    int(int32(binary.BigEndian.Uint32(payload[17:21]))),
		MaxInFlight: int(int32(binary.BigEndian.Uint32(payload[29:33]))),
	}
	if payload[33]&flagHasTime != 0 {
		f.Time = time.Unix(0, int64(binary.BigEndian.Uint64(payload[21:29]))).UTC()
	}
	rest := payload[binHeaderLen:]
	next := func() ([]byte, error) {
		if len(rest) < 4 {
			return nil, fmt.Errorf("brokerd: binary frame truncated in field length")
		}
		l := binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint64(l) > uint64(len(rest)) {
			return nil, fmt.Errorf("brokerd: binary frame field of %d bytes overruns frame", l)
		}
		s := rest[:l]
		rest = rest[l:]
		return s, nil
	}
	topic, err := next()
	if err != nil {
		return nil, err
	}
	channel, err := next()
	if err != nil {
		return nil, err
	}
	errStr, err := next()
	if err != nil {
		return nil, err
	}
	statsJSON, err := next()
	if err != nil {
		return nil, err
	}
	f.Topic, f.Channel, f.Error = string(topic), string(channel), string(errStr)
	if len(statsJSON) > 0 {
		if err := json.Unmarshal(statsJSON, &f.Stats); err != nil {
			return nil, fmt.Errorf("brokerd: bad stats blob: %w", err)
		}
	}
	if len(rest) > 0 {
		f.Body = rest // aliases the per-frame payload allocation; no copy
	}
	return f, nil
}

// frameReader reads frames for one connection. It is used by a single
// goroutine (the connection's read loop), which is also the only place
// the codec is switched after a HELLO exchange, so no locking.
type frameReader struct {
	br    *bufio.Reader
	codec Codec
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(r, 32<<10), codec: JSONCodec}
}

func (fr *frameReader) read() (*Frame, error) { return fr.codec.Decode(fr.br) }

// frameWriter serializes frame writes onto one connection through a
// buffered writer with flush coalescing: a writer that can see another
// goroutine waiting for the lock leaves its frame buffered and lets the
// last writer out issue one flush (one syscall) for the whole burst.
// Writers that expect an immediate follow-up frame (a delivery pump
// with more messages already queued) can also defer the flush
// explicitly. A sticky error poisons the writer, mirroring a dead
// connection.
type frameWriter struct {
	waiters atomic.Int32

	mu    sync.Mutex
	bw    *bufio.Writer
	codec Codec
	err   error
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{bw: bufio.NewWriterSize(w, 32<<10), codec: JSONCodec}
}

// write encodes f and flushes unless another writer is already waiting
// to append to the buffer (it will flush instead).
func (fw *frameWriter) write(f *Frame) error { return fw.writeHint(f, false) }

// writeHint is write with a caller-supplied coalescing hint: more=true
// promises the caller will write another frame immediately, so the
// flush is left to that write.
func (fw *frameWriter) writeHint(f *Frame, more bool) error {
	fw.waiters.Add(1)
	fw.mu.Lock()
	fw.waiters.Add(-1)
	defer fw.mu.Unlock()
	if fw.err != nil {
		return fw.err
	}
	err := fw.codec.Encode(fw.bw, f)
	if err == nil && !more && fw.waiters.Load() == 0 {
		err = fw.bw.Flush()
	}
	if err != nil {
		fw.err = err
	}
	return err
}

// setCodec switches the encoding outside any write — used by the
// client after the HELLO reply, before concurrent writers can exist.
func (fw *frameWriter) setCodec(c Codec) {
	fw.mu.Lock()
	fw.codec = c
	fw.mu.Unlock()
}

// writeSwitch writes f, flushes unconditionally, and switches the
// encoding — the HELLO handshake's atomic codec cut-over: every byte
// before f is in the old encoding, every byte after in the new.
func (fw *frameWriter) writeSwitch(f *Frame, next Codec) error {
	fw.waiters.Add(1)
	fw.mu.Lock()
	fw.waiters.Add(-1)
	defer fw.mu.Unlock()
	if fw.err != nil {
		return fw.err
	}
	err := fw.codec.Encode(fw.bw, f)
	if err == nil {
		err = fw.bw.Flush()
	}
	if err != nil {
		fw.err = err
		return err
	}
	fw.codec = next
	return nil
}
