package brokerd

import (
	"context"
	"testing"

	"rai/internal/broker"
	"rai/internal/telemetry"
)

func TestServerTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := broker.New(broker.WithTelemetry(reg))
	defer b.Close()
	srv, err := NewServer(b, "127.0.0.1:0", WithTelemetry(reg), WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialContext(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// A completed round trip guarantees serveConn is running.
	if err := c.Ping(bg); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Value("rai_brokerd_connections"); v != 1 {
		t.Errorf("connections = %v, want 1", v)
	}
	if _, err := c.Publish(bg, "rai", []byte("job")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	if v, _ := reg.Value("rai_brokerd_ops_total", telemetry.L("op", OpPub)); v != 1 {
		t.Errorf("ops{PUB} = %v, want 1", v)
	}
	if v, _ := reg.Value("rai_brokerd_ops_total", telemetry.L("op", OpPing)); v != 1 {
		t.Errorf("ops{PING} = %v, want 1", v)
	}
	// The engine-level counter moves through the wire path too.
	if v, _ := reg.Value("rai_broker_publish_total", telemetry.L("topic", "rai")); v != 1 {
		t.Errorf("broker publish_total = %v, want 1", v)
	}
}
