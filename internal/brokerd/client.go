package brokerd

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a TCP connection to a brokerd server. One client may publish
// freely and hold at most one subscription, mirroring the server side.
// Client is safe for concurrent use.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan *Frame
	msgs    chan *Delivery
	closed  bool
	readErr error
	done    chan struct{}
}

// Delivery is a message received from a subscription.
type Delivery struct {
	MsgID    uint64
	Topic    string
	Body     []byte
	Attempts int
	Time     time.Time
}

// ErrClientClosed is returned after Close.
var ErrClientClosed = errors.New("brokerd: client closed")

// Dial connects to a brokerd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		pending: map[uint64]chan *Frame{},
		msgs:    make(chan *Delivery, 1024),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		f, err := ReadFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for _, ch := range c.pending {
				close(ch)
			}
			c.pending = map[uint64]chan *Frame{}
			c.mu.Unlock()
			close(c.msgs)
			return
		}
		switch f.Op {
		case OpMsg:
			c.msgs <- &Delivery{MsgID: f.MsgID, Topic: f.Topic, Body: f.Body, Attempts: f.Attempts, Time: f.Time}
		case OpOK, OpErr:
			c.mu.Lock()
			ch, ok := c.pending[f.Seq]
			if ok {
				delete(c.pending, f.Seq)
			}
			c.mu.Unlock()
			if ok {
				ch <- f
			}
		}
	}
}

// call sends a request frame and waits for its reply.
func (c *Client) call(f *Frame) (*Frame, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.nextSeq++
	f.Seq = c.nextSeq
	ch := make(chan *Frame, 1)
	c.pending[f.Seq] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := WriteFrame(c.conn, f)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, f.Seq)
		c.mu.Unlock()
		return nil, err
	}
	reply, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("brokerd: connection lost awaiting reply")
	}
	if reply.Op == OpErr {
		return nil, errors.New(reply.Error)
	}
	return reply, nil
}

// Publish sends body to topic and returns the broker-assigned message ID.
func (c *Client) Publish(topic string, body []byte) (uint64, error) {
	reply, err := c.call(&Frame{Op: OpPub, Topic: topic, Body: body})
	if err != nil {
		return 0, err
	}
	return reply.MsgID, nil
}

// Subscribe attaches this connection to topic/channel. Deliveries arrive
// on C(); the channel closes when the connection drops or Close is
// called.
func (c *Client) Subscribe(topic, channel string, maxInFlight int) error {
	_, err := c.call(&Frame{Op: OpSub, Topic: topic, Channel: channel, MaxInFlight: maxInFlight})
	return err
}

// C returns the delivery stream for the connection's subscription.
func (c *Client) C() <-chan *Delivery { return c.msgs }

// Ack acknowledges a delivery.
func (c *Client) Ack(d *Delivery) error {
	_, err := c.call(&Frame{Op: OpAck, MsgID: d.MsgID})
	return err
}

// Requeue returns a delivery to the queue for redelivery.
func (c *Client) Requeue(d *Delivery) error {
	_, err := c.call(&Frame{Op: OpReq, MsgID: d.MsgID})
	return err
}

// Ping checks server liveness.
func (c *Client) Ping() error {
	_, err := c.call(&Frame{Op: OpPing})
	return err
}

// Stats fetches the broker's queue snapshot — the depth signal the
// elastic provisioner consumes.
func (c *Client) Stats() ([]TopicStats, error) {
	reply, err := c.call(&Frame{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return reply.Stats, nil
}

// CloseSubscription detaches the subscription without dropping the
// connection (unacknowledged messages are requeued server-side).
func (c *Client) CloseSubscription() error {
	_, err := c.call(&Frame{Op: OpClose})
	return err
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
