package brokerd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a TCP connection to a brokerd server. One client may publish
// freely and hold at most one subscription, mirroring the server side.
// Client is safe for concurrent use.
type Client struct {
	conn net.Conn
	fw   *frameWriter
	fr   *frameReader
	ver  int // negotiated protocol version (immutable after dial)

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan *Frame
	msgs    chan *Delivery
	closed  bool
	readErr error
	done    chan struct{}
}

// Delivery is a message received from a subscription.
type Delivery struct {
	MsgID    uint64
	Topic    string
	Body     []byte
	Attempts int
	Time     time.Time
}

// ErrClientClosed is returned after Close.
var ErrClientClosed = errors.New("brokerd: client closed")

// ServerError is an application-level error reply from the broker — the
// request made it across the wire and the broker refused it. Retrying
// the same request will not help, unlike a transport failure.
type ServerError struct{ Msg string }

// Error implements error.
func (e *ServerError) Error() string { return e.Msg }

// DefaultDialTimeout bounds DialContext when neither the context nor a
// WithDialTimeout option imposes a tighter deadline.
const DefaultDialTimeout = 10 * time.Second

// DialOption customizes DialContext.
type DialOption func(*dialConfig)

type dialConfig struct {
	timeout  time.Duration
	jsonOnly bool
}

// WithDialTimeout caps how long the TCP dial may take. The context's own
// deadline still applies; the effective bound is whichever is sooner.
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithJSONCodec pins the connection to the legacy JSON encoding,
// skipping the HELLO negotiation entirely — exactly what a pre-binary
// client on the wire looks like. Useful for interop tests and for
// talking through middleboxes that inspect the JSON protocol.
func WithJSONCodec() DialOption {
	return func(c *dialConfig) { c.jsonOnly = true }
}

// DialContext connects to a brokerd server, honoring ctx for
// cancellation and deadline. Unless WithJSONCodec is given, it offers
// the binary encoding via a HELLO frame and uses it when the server
// agrees; an ERR reply (an old, JSON-only server) quietly keeps the
// connection on JSON.
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{timeout: DefaultDialTimeout}
	for _, o := range opts {
		o(&cfg)
	}
	d := net.Dialer{Timeout: cfg.timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		fw:      newFrameWriter(conn),
		fr:      newFrameReader(conn),
		ver:     ProtocolJSON,
		pending: map[uint64]chan *Frame{},
		msgs:    make(chan *Delivery, 1024),
		done:    make(chan struct{}),
	}
	if !cfg.jsonOnly {
		if err := c.hello(ctx, cfg.timeout); err != nil {
			_ = conn.Close()
			return nil, err
		}
	}
	go c.readLoop()
	return c, nil
}

// hello negotiates the wire encoding before the read loop starts, so
// the exchange can use the connection directly. The handshake is
// bounded by the sooner of ctx's deadline and the dial timeout: a
// server that accepts but never replies gets its connection closed by
// the watchdog, failing the pending read.
func (c *Client) hello(ctx context.Context, timeout time.Duration) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	stop := context.AfterFunc(ctx, func() { _ = c.conn.Close() })
	defer stop()
	if err := c.fw.write(&Frame{Op: OpHello, Version: ProtocolBinary}); err != nil {
		return err
	}
	reply, err := c.fr.read()
	if err != nil {
		return err
	}
	switch {
	case reply.Op == OpOK && reply.Version >= ProtocolBinary:
		// The server switched right after its OK; mirror it.
		c.fw.setCodec(BinaryCodec)
		c.fr.codec = BinaryCodec
		c.ver = ProtocolBinary
	case reply.Op == OpOK, reply.Op == OpErr:
		// OK with an old version, or an old server rejecting HELLO as an
		// unknown op: stay on JSON.
	default:
		return fmt.Errorf("brokerd: unexpected %s reply to HELLO", reply.Op)
	}
	return nil
}

// ProtocolVersion reports the negotiated wire encoding (ProtocolJSON or
// ProtocolBinary).
func (c *Client) ProtocolVersion() int { return c.ver }

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		f, err := c.fr.read()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for _, ch := range c.pending {
				close(ch)
			}
			c.pending = map[uint64]chan *Frame{}
			c.mu.Unlock()
			close(c.msgs)
			return
		}
		switch f.Op {
		case OpMsg:
			c.msgs <- &Delivery{MsgID: f.MsgID, Topic: f.Topic, Body: f.Body, Attempts: f.Attempts, Time: f.Time}
		case OpOK, OpErr:
			c.mu.Lock()
			ch, ok := c.pending[f.Seq]
			if ok {
				delete(c.pending, f.Seq)
			}
			c.mu.Unlock()
			if ok {
				ch <- f
			}
		}
	}
}

// call sends a request frame and waits for its reply. A done ctx
// abandons the wait (the reply, if it ever lands, is discarded by the
// pending-map cleanup) — it does not tear down the connection.
func (c *Client) call(ctx context.Context, f *Frame) (*Frame, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.nextSeq++
	f.Seq = c.nextSeq
	ch := make(chan *Frame, 1)
	c.pending[f.Seq] = ch
	c.mu.Unlock()

	if err := c.fw.write(f); err != nil {
		c.mu.Lock()
		delete(c.pending, f.Seq)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("brokerd: connection lost awaiting reply")
		}
		if reply.Op == OpErr {
			return nil, &ServerError{Msg: reply.Error}
		}
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, f.Seq)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Publish sends body to topic and returns the broker-assigned message ID.
func (c *Client) Publish(ctx context.Context, topic string, body []byte) (uint64, error) {
	reply, err := c.call(ctx, &Frame{Op: OpPub, Topic: topic, Body: body})
	if err != nil {
		return 0, err
	}
	return reply.MsgID, nil
}

// Subscribe attaches this connection to topic/channel. Deliveries arrive
// on C(); the channel closes when the connection drops or Close is
// called.
func (c *Client) Subscribe(ctx context.Context, topic, channel string, maxInFlight int) error {
	_, err := c.call(ctx, &Frame{Op: OpSub, Topic: topic, Channel: channel, MaxInFlight: maxInFlight})
	return err
}

// C returns the delivery stream for the connection's subscription.
func (c *Client) C() <-chan *Delivery { return c.msgs }

// Ack acknowledges a delivery.
func (c *Client) Ack(ctx context.Context, d *Delivery) error {
	_, err := c.call(ctx, &Frame{Op: OpAck, MsgID: d.MsgID})
	return err
}

// Requeue returns a delivery to the queue for redelivery.
func (c *Client) Requeue(ctx context.Context, d *Delivery) error {
	_, err := c.call(ctx, &Frame{Op: OpReq, MsgID: d.MsgID})
	return err
}

// Ping checks server liveness.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.call(ctx, &Frame{Op: OpPing})
	return err
}

// Stats fetches the broker's queue snapshot — the depth signal the
// elastic provisioner consumes.
func (c *Client) Stats(ctx context.Context) ([]TopicStats, error) {
	reply, err := c.call(ctx, &Frame{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return reply.Stats, nil
}

// CloseSubscription detaches the subscription without dropping the
// connection (unacknowledged messages are requeued server-side).
func (c *Client) CloseSubscription(ctx context.Context) error {
	_, err := c.call(ctx, &Frame{Op: OpClose})
	return err
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
