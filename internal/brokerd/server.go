package brokerd

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"rai/internal/broker"
	"rai/internal/telemetry"
)

// Server serves a broker engine over TCP.
type Server struct {
	b      *broker.Broker
	ln     net.Listener
	logf   func(format string, args ...any)
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	connGauge *telemetry.Gauge
	ops       map[string]*telemetry.Counter
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLogf sets the server's log function (default: log.Printf).
func WithLogf(f func(string, ...any)) ServerOption { return func(s *Server) { s.logf = f } }

// WithTelemetry instruments the wire layer on reg: a live connection
// gauge and per-op request counters. The broker engine itself is
// instrumented separately via broker.WithTelemetry.
func WithTelemetry(reg *telemetry.Registry) ServerOption {
	return func(s *Server) {
		s.connGauge = reg.Gauge("rai_brokerd_connections", "open client connections")
		s.ops = map[string]*telemetry.Counter{}
		for _, op := range []string{OpPing, OpPub, OpSub, OpAck, OpReq, OpStats, OpClose, OpHello} {
			s.ops[op] = reg.Counter("rai_brokerd_ops_total", "wire operations served", telemetry.L("op", op))
		}
	}
}

// NewServer starts serving b on addr (e.g. "127.0.0.1:0") and returns
// once the listener is bound.
func NewServer(b *broker.Broker, addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{b: b, ln: ln, logf: log.Printf, conns: map[net.Conn]struct{}{}}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and drops all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn handles one client connection: a read loop executing
// commands, plus (once subscribed) a pump goroutine streaming
// deliveries. Each connection starts in the JSON encoding; a HELLO
// exchange switches both directions to the binary codec.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.connGauge.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
		s.connGauge.Add(-1)
	}()

	fr := newFrameReader(conn)
	fw := newFrameWriter(conn)
	reply := func(seq uint64, err error, msgID uint64) {
		if err != nil {
			_ = fw.write(&Frame{Op: OpErr, Seq: seq, Error: err.Error()})
			return
		}
		_ = fw.write(&Frame{Op: OpOK, Seq: seq, MsgID: msgID})
	}

	var (
		sub      *broker.Subscription
		inFlight sync.Map // msgID -> *broker.Message
		pumpDone chan struct{}
	)
	defer func() {
		if sub != nil {
			sub.Close()
			<-pumpDone
		}
	}()

	for {
		f, err := fr.read()
		if err != nil {
			return // disconnect (EOF or broken frame)
		}
		if s.ops != nil {
			s.ops[f.Op].Inc() // nil map entry (unknown op) is a no-op
		}
		switch f.Op {
		case OpHello:
			if f.Version >= ProtocolBinary {
				// The OK still travels in the old encoding; everything after
				// it — in both directions — is binary.
				if err := fw.writeSwitch(&Frame{Op: OpOK, Seq: f.Seq, Version: ProtocolBinary}, BinaryCodec); err != nil {
					return
				}
				fr.codec = BinaryCodec
				continue
			}
			_ = fw.write(&Frame{Op: OpOK, Seq: f.Seq, Version: ProtocolJSON})
		case OpPing:
			reply(f.Seq, nil, 0)
		case OpPub:
			id, err := s.b.Publish(f.Topic, f.Body)
			reply(f.Seq, err, id)
		case OpSub:
			if sub != nil {
				reply(f.Seq, errors.New("brokerd: connection already subscribed"), 0)
				continue
			}
			newSub, err := s.b.Subscribe(f.Topic, f.Channel, f.MaxInFlight)
			if err != nil {
				reply(f.Seq, err, 0)
				continue
			}
			sub = newSub
			pumpDone = make(chan struct{})
			go func() {
				defer close(pumpDone)
				for m := range sub.C() {
					inFlight.Store(m.ID, m)
					// A burst of queued deliveries coalesces into one flush:
					// while more messages are already waiting, keep appending
					// to the write buffer.
					if err := fw.writeHint(&Frame{
						Op: OpMsg, MsgID: m.ID, Topic: m.Topic(),
						Body: m.Body, Attempts: m.Attempts, Time: m.Timestamp,
					}, len(sub.C()) > 0); err != nil {
						return
					}
				}
			}()
			reply(f.Seq, nil, 0)
		case OpAck, OpReq:
			if sub == nil {
				reply(f.Seq, errors.New("brokerd: not subscribed"), 0)
				continue
			}
			v, ok := inFlight.LoadAndDelete(f.MsgID)
			if !ok {
				reply(f.Seq, fmt.Errorf("brokerd: message %d not in flight", f.MsgID), 0)
				continue
			}
			m := v.(*broker.Message)
			if f.Op == OpAck {
				reply(f.Seq, sub.Ack(m), 0)
			} else {
				reply(f.Seq, sub.Requeue(m), 0)
			}
		case OpStats:
			snap := s.b.Stats()
			stats := make([]TopicStats, 0, len(snap))
			for _, ts := range snap {
				out := TopicStats{Topic: ts.Topic, Backlog: ts.Backlog}
				for _, cs := range ts.Channels {
					out.Channels = append(out.Channels, ChannelStats{
						Channel: cs.Channel, Depth: cs.Depth,
						InFlight: cs.InFlight, Subscribers: cs.Subscribers,
					})
				}
				stats = append(stats, out)
			}
			_ = fw.write(&Frame{Op: OpOK, Seq: f.Seq, Stats: stats})
		case OpClose:
			if sub != nil {
				sub.Close()
				<-pumpDone
				sub = nil
			}
			reply(f.Seq, nil, 0)
		default:
			reply(f.Seq, fmt.Errorf("brokerd: unknown op %q", f.Op), 0)
		}
	}
}
