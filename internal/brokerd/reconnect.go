package brokerd

import (
	"context"
	"errors"
	"sync"
	"time"

	"rai/internal/clock"
	"rai/internal/netx"
)

// ReconnClient wraps the wire client with transparent redial: every
// operation runs under a netx retry policy, a dropped connection is
// replaced on the next call, and an active subscription is replayed on
// the fresh connection so the consumer's delivery stream survives a
// broker restart. Because the broker requeues unacknowledged messages
// when a subscriber connection dies, the stream is at-least-once: an
// Ack for a message delivered on a connection that has since died is a
// no-op (the broker already owns the message again).
//
// ReconnClient is safe for concurrent use.
type ReconnClient struct {
	addr     string
	policy   netx.Policy
	metrics  *netx.Metrics
	dialOpts []DialOption

	// ctx is the subscription lifetime, created on Subscribe from the
	// caller's context (values kept, cancellation stripped — the pump
	// must outlive the Subscribe call) and done on Close. nil until the
	// client subscribes.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	cur    *Client
	ever   bool // a connection has been established at least once
	closed bool

	// Subscription replay state. One subscription per client, mirroring
	// the wire protocol.
	subTopic   string
	subChannel string
	subMaxIF   int
	subbed     bool
	owners     map[uint64]*Client // msgID -> connection that delivered it
	msgs       chan *Delivery
	pumpDone   chan struct{}
	msgsOnce   sync.Once
}

// ReconnOption configures a ReconnClient.
type ReconnOption func(*ReconnClient)

// WithPolicy sets the retry policy applied to every operation. The
// policy's Retryable is composed with brokerd's own classification
// (ServerError replies never retry).
func WithPolicy(p netx.Policy) ReconnOption {
	return func(r *ReconnClient) { r.policy = p }
}

// WithMetrics counts retries, reconnects, and blown deadlines.
func WithMetrics(m *netx.Metrics) ReconnOption {
	return func(r *ReconnClient) { r.metrics = m }
}

// WithDialOptions forwards options to every (re)dial.
func WithDialOptions(opts ...DialOption) ReconnOption {
	return func(r *ReconnClient) { r.dialOpts = opts }
}

// NewReconnClient returns a reconnecting client for the broker at addr.
// No connection is made until the first operation.
func NewReconnClient(addr string, opts ...ReconnOption) *ReconnClient {
	r := &ReconnClient{
		addr:   addr,
		owners: map[uint64]*Client{},
		msgs:   make(chan *Delivery, 1024),
	}
	for _, o := range opts {
		o(r)
	}
	r.policy.Metrics = r.metrics
	inner := r.policy.Retryable
	r.policy.Retryable = func(err error) bool {
		var se *ServerError
		if errors.As(err, &se) {
			return false
		}
		if inner != nil {
			return inner(err)
		}
		return netx.DefaultRetryable(err)
	}
	return r
}

// conn returns the live connection, dialing one if necessary. Dialing
// is a single attempt — callers run under netx.Do, which owns retries.
func (r *ReconnClient) conn(ctx context.Context) (*Client, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c := r.cur; c != nil {
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()

	c, err := DialContext(ctx, r.addr, r.dialOpts...)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		_ = c.Close()
		return nil, ErrClientClosed
	}
	if r.cur != nil { // lost a dial race; keep the established one
		go func() { _ = c.Close() }()
		return r.cur, nil
	}
	if r.ever {
		r.metrics.Reconnect()
	}
	r.ever = true
	r.cur = c
	return c, nil
}

// invalidate drops c as the current connection if it still is.
func (r *ReconnClient) invalidate(c *Client) {
	r.mu.Lock()
	if r.cur == c {
		r.cur = nil
	}
	// Deliveries from a dead connection can no longer be acked on it;
	// the broker requeues them itself.
	for id, owner := range r.owners {
		if owner == c {
			delete(r.owners, id)
		}
	}
	r.mu.Unlock()
	_ = c.Close()
}

// do runs op against a live connection under the retry policy,
// invalidating the connection on failure so the next attempt redials.
func (r *ReconnClient) do(ctx context.Context, op func(ctx context.Context, c *Client) error) error {
	return netx.Do(ctx, r.policy, func(ctx context.Context) error {
		c, err := r.conn(ctx)
		if err != nil {
			return err
		}
		if err := op(ctx, c); err != nil {
			var se *ServerError
			if !errors.As(err, &se) {
				r.invalidate(c)
			}
			return err
		}
		return nil
	})
}

// Publish sends body to topic, retrying across connection drops, and
// returns the broker-assigned message ID.
func (r *ReconnClient) Publish(ctx context.Context, topic string, body []byte) (uint64, error) {
	var id uint64
	err := r.do(ctx, func(ctx context.Context, c *Client) error {
		var err error
		id, err = c.Publish(ctx, topic, body)
		return err
	})
	return id, err
}

// Ping checks broker liveness (dialing if necessary).
func (r *ReconnClient) Ping(ctx context.Context) error {
	return r.do(ctx, func(ctx context.Context, c *Client) error { return c.Ping(ctx) })
}

// Stats fetches the broker's queue snapshot.
func (r *ReconnClient) Stats(ctx context.Context) ([]TopicStats, error) {
	var out []TopicStats
	err := r.do(ctx, func(ctx context.Context, c *Client) error {
		var err error
		out, err = c.Stats(ctx)
		return err
	})
	return out, err
}

// Subscribe attaches to topic/channel and keeps the subscription alive
// across broker restarts: when the delivering connection drops, the
// client redials and resubscribes, and deliveries resume on C(). Only
// one subscription per client, matching the wire protocol.
func (r *ReconnClient) Subscribe(ctx context.Context, topic, channel string, maxInFlight int) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClientClosed
	}
	if r.subbed {
		r.mu.Unlock()
		return errors.New("brokerd: client already subscribed")
	}
	r.subbed = true
	r.subTopic, r.subChannel, r.subMaxIF = topic, channel, maxInFlight
	r.pumpDone = make(chan struct{})
	// The pump outlives this call by design, so it keeps the caller's
	// values but not its cancellation; Close ends it.
	r.ctx, r.cancel = context.WithCancel(context.WithoutCancel(ctx))
	r.mu.Unlock()

	// Establish the first subscription synchronously so the caller sees
	// bad-topic errors immediately; the pump owns every one after that.
	c, err := r.subscribeOnce(ctx)
	if err != nil {
		r.mu.Lock()
		r.subbed = false
		r.mu.Unlock()
		close(r.pumpDone)
		return err
	}
	go r.pump(c)
	return nil
}

// subscribeOnce gets a connection subscribed to the recorded topic,
// under the retry policy.
func (r *ReconnClient) subscribeOnce(ctx context.Context) (*Client, error) {
	return netx.DoVal(ctx, r.policy, func(ctx context.Context) (*Client, error) {
		c, err := r.conn(ctx)
		if err != nil {
			return nil, err
		}
		if err := c.Subscribe(ctx, r.subTopic, r.subChannel, r.subMaxIF); err != nil {
			var se *ServerError
			if !errors.As(err, &se) {
				r.invalidate(c)
			}
			return nil, err
		}
		return c, nil
	})
}

// pump forwards deliveries from the current subscribed connection to
// the client's stream, resubscribing on a fresh connection whenever the
// current one dies. It exits only when the client is closed.
func (r *ReconnClient) pump(c *Client) {
	defer close(r.pumpDone)
	for {
		for d := range c.C() {
			r.mu.Lock()
			r.owners[d.MsgID] = c
			r.mu.Unlock()
			select {
			case r.msgs <- d:
			case <-r.ctx.Done():
				return
			}
		}
		// Connection died (or broker restarted). Resubscribe forever —
		// outages longer than one policy's attempt budget should idle the
		// consumer, not kill it.
		r.invalidate(c)
		for {
			if r.ctx.Err() != nil {
				return
			}
			var err error
			c, err = r.subscribeOnce(r.ctx)
			if err == nil {
				break
			}
			select {
			case <-r.sleep():
			case <-r.ctx.Done():
				return
			}
		}
	}
}

// sleep returns a timer channel for one inter-round pause in the
// pump's resubscribe loop, on the policy's clock. subscribeOnce already
// backed off between its attempts, so this just paces the rounds at the
// policy's deepest (capped) backoff.
func (r *ReconnClient) sleep() <-chan time.Time {
	ck := r.policy.Clock
	if ck == nil {
		ck = clock.Real{}
	}
	return ck.After(r.policy.Delay(netx.DefaultMaxAttempts))
}

// C returns the delivery stream; it closes when the client is closed.
func (r *ReconnClient) C() <-chan *Delivery { return r.msgs }

// Ack acknowledges a delivery. If the connection that delivered it has
// since died, the broker has already requeued the message and Ack is a
// successful no-op (the redelivery will carry it again).
func (r *ReconnClient) Ack(ctx context.Context, d *Delivery) error {
	return r.settle(ctx, d, (*Client).Ack)
}

// Requeue returns a delivery to the queue. Like Ack, it is a no-op if
// the delivering connection is gone — the broker already requeued it.
func (r *ReconnClient) Requeue(ctx context.Context, d *Delivery) error {
	return r.settle(ctx, d, (*Client).Requeue)
}

func (r *ReconnClient) settle(ctx context.Context, d *Delivery, op func(*Client, context.Context, *Delivery) error) error {
	r.mu.Lock()
	owner, ok := r.owners[d.MsgID]
	if ok {
		delete(r.owners, d.MsgID)
	}
	r.mu.Unlock()
	if !ok {
		return nil // delivering connection died; broker requeued it
	}
	if err := op(owner, ctx, d); err != nil {
		var se *ServerError
		if !errors.As(err, &se) {
			r.invalidate(owner)
			return nil // transport died mid-settle; broker requeues
		}
		return err
	}
	return nil
}

// Close tears down the connection and stops the resubscribe pump. The
// delivery stream closes.
func (r *ReconnClient) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	c := r.cur
	r.cur = nil
	pumpDone := r.pumpDone
	cancel := r.cancel
	r.mu.Unlock()

	if cancel != nil {
		cancel()
	}
	var err error
	if c != nil {
		err = c.Close()
	}
	if pumpDone != nil {
		<-pumpDone
	}
	r.msgsOnce.Do(func() { close(r.msgs) })
	return err
}
