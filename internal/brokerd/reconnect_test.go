package brokerd

import (
	"testing"
	"time"

	"rai/internal/broker"
	"rai/internal/netx"
	"rai/internal/telemetry"
)

func fastReconnPolicy() netx.Policy {
	return netx.Policy{
		MaxAttempts: 50,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
	}
}

func recvReconnT(t *testing.T, rc *ReconnClient) *Delivery {
	t.Helper()
	select {
	case d, ok := <-rc.C():
		if !ok {
			t.Fatal("delivery stream closed")
		}
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
		return nil
	}
}

// TestReconnectAcrossServerRestart is the broker half of the PR's
// resilience story: kill the TCP server mid-subscription, restart it on
// the same address over the same engine, and the wrapped client
// resubscribes and keeps consuming — including the redelivery of the
// message that was in flight when the server died.
func TestReconnectAcrossServerRestart(t *testing.T) {
	b := broker.New()
	defer b.Close()
	srv, err := NewServer(b, "127.0.0.1:0", WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	reg := telemetry.NewRegistry()
	rc := NewReconnClient(addr,
		WithPolicy(fastReconnPolicy()),
		WithMetrics(netx.NewMetrics(reg, "broker")))
	defer rc.Close()

	if err := rc.Subscribe(bg, "rai", "tasks", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Publish(bg, "rai", []byte("before restart")); err != nil {
		t.Fatal(err)
	}
	d1 := recvReconnT(t, rc)
	if string(d1.Body) != "before restart" {
		t.Fatalf("first delivery = %q", d1.Body)
	}
	// Deliberately do NOT ack d1: the restart must requeue it.

	// Kill the server out from under the client, then bring it back on
	// the same address with the same engine (state survives, as a real
	// broker restart would replay its journal).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Publish during the outage from another goroutine: the retry loop
	// should carry it through to the restarted server.
	pubErr := make(chan error, 1)
	go func() {
		_, err := rc.Publish(bg, "rai", []byte("during outage"))
		pubErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the publish hit the dead addr at least once
	srv2, err := NewServer(b, addr, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	if err := <-pubErr; err != nil {
		t.Fatalf("publish during outage: %v", err)
	}

	// The subscription must come back without any action from us and
	// deliver both the requeued message and the outage-time publish.
	got := map[string]int{}
	for i := 0; i < 2; i++ {
		d := recvReconnT(t, rc)
		got[string(d.Body)] = d.Attempts
		if err := rc.Ack(bg, d); err != nil {
			t.Fatalf("ack %q: %v", d.Body, err)
		}
	}
	if got["before restart"] < 2 {
		t.Errorf("requeued message attempts = %d, want >= 2 (got %v)", got["before restart"], got)
	}
	if _, ok := got["during outage"]; !ok {
		t.Errorf("outage-time publish never delivered: %v", got)
	}

	// Acking the pre-restart delivery again is a successful no-op: its
	// connection is gone and the broker already requeued (and we since
	// acked) it.
	if err := rc.Ack(bg, d1); err != nil {
		t.Errorf("stale ack: %v", err)
	}

	if v, _ := reg.Value(netx.MetricReconnects, telemetry.L("component", "broker")); v < 1 {
		t.Errorf("reconnects counter = %v, want >= 1", v)
	}
}

// TestReconnClientServerErrorNotRetried pins the classification: an
// application-level refusal from the broker must surface immediately,
// not burn the retry budget.
func TestReconnClientServerErrorNotRetried(t *testing.T) {
	b := broker.New()
	defer b.Close()
	srv, err := NewServer(b, "127.0.0.1:0", WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	retries := 0
	p := fastReconnPolicy()
	p.OnRetry = func(int, time.Duration, error) { retries++ }
	rc := NewReconnClient(srv.Addr(), WithPolicy(p))
	defer rc.Close()

	if _, err := rc.Publish(bg, "bad topic name!", nil); err == nil {
		t.Fatal("invalid topic accepted")
	}
	if retries != 0 {
		t.Errorf("server error burned %d retries", retries)
	}
}

// TestReconnClientLazyDial pins that construction does not touch the
// network: dialing a dead address only fails once an operation runs.
func TestReconnClientLazyDial(t *testing.T) {
	p := netx.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	rc := NewReconnClient("127.0.0.1:1", WithPolicy(p)) // port 1: nothing listens
	defer rc.Close()
	if err := rc.Ping(bg); err == nil {
		t.Fatal("ping of dead address succeeded")
	}
}
