package brokerd

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rai/internal/broker"
)

var bg = context.Background()

func newPair(t *testing.T) (*broker.Broker, *Server) {
	t.Helper()
	b := broker.New()
	srv, err := NewServer(b, "127.0.0.1:0", WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		b.Close()
	})
	return b, srv
}

func dialT(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := DialContext(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func recvT(t *testing.T, c *Client) *Delivery {
	t.Helper()
	select {
	case d, ok := <-c.C():
		if !ok {
			t.Fatal("delivery stream closed")
		}
		return d
	case <-time.After(3 * time.Second):
		t.Fatal("timed out waiting for delivery")
		return nil
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Frame{Op: OpMsg, Seq: 7, Topic: "rai", MsgID: 42, Body: []byte("payload"), Attempts: 2}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || out.Seq != in.Seq || out.MsgID != in.MsgID || string(out.Body) != "payload" {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	big := &Frame{Op: OpPub, Body: bytes.Repeat([]byte("x"), maxFrameSize)}
	if err := WriteFrame(&buf, big); err == nil {
		t.Error("oversized frame accepted on write")
	}
	// Forged oversized header on read.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized header: %v", err)
	}
}

func TestPingPublishSubscribe(t *testing.T) {
	_, srv := newPair(t)
	pub := dialT(t, srv)
	subC := dialT(t, srv)

	if err := pub.Ping(bg); err != nil {
		t.Fatal(err)
	}
	if err := subC.Subscribe(bg, "rai", "tasks", 4); err != nil {
		t.Fatal(err)
	}
	id, err := pub.Publish(bg, "rai", []byte("job payload"))
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Error("publish returned zero message id")
	}
	d := recvT(t, subC)
	if string(d.Body) != "job payload" || d.Topic != "rai" || d.Attempts != 1 {
		t.Fatalf("delivery = %+v", d)
	}
	if err := subC.Ack(bg, d); err != nil {
		t.Fatal(err)
	}
}

func TestRequeueOverTCP(t *testing.T) {
	_, srv := newPair(t)
	pub := dialT(t, srv)
	sub := dialT(t, srv)
	sub.Subscribe(bg, "rai", "tasks", 1)
	pub.Publish(bg, "rai", []byte("retry me"))
	d := recvT(t, sub)
	if err := sub.Requeue(bg, d); err != nil {
		t.Fatal(err)
	}
	d2 := recvT(t, sub)
	if d2.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", d2.Attempts)
	}
	sub.Ack(bg, d2)
}

func TestDisconnectRequeuesInFlight(t *testing.T) {
	b, srv := newPair(t)
	pub := dialT(t, srv)
	w1 := dialT(t, srv)
	w1.Subscribe(bg, "rai", "tasks", 1)
	pub.Publish(bg, "rai", []byte("orphaned job"))
	recvT(t, w1) // in flight, never acked
	w1.Close()   // worker crash

	// Give the server a moment to tear down and requeue.
	deadline := time.Now().Add(2 * time.Second)
	for b.Depth("rai", "tasks") == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	w2 := dialT(t, srv)
	w2.Subscribe(bg, "rai", "tasks", 1)
	d := recvT(t, w2)
	if string(d.Body) != "orphaned job" || d.Attempts != 2 {
		t.Fatalf("redelivery = %+v", d)
	}
	w2.Ack(bg, d)
}

func TestDoubleSubscribeRejected(t *testing.T) {
	_, srv := newPair(t)
	c := dialT(t, srv)
	if err := c.Subscribe(bg, "rai", "tasks", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(bg, "rai", "other", 1); err == nil {
		t.Error("second subscribe on one connection succeeded")
	}
}

func TestAckWithoutSubscribe(t *testing.T) {
	_, srv := newPair(t)
	c := dialT(t, srv)
	if err := c.Ack(bg, &Delivery{MsgID: 1}); err == nil {
		t.Error("ack without subscription succeeded")
	}
}

func TestBadTopicNameOverTCP(t *testing.T) {
	_, srv := newPair(t)
	c := dialT(t, srv)
	if _, err := c.Publish(bg, "bad topic name!", nil); err == nil {
		t.Error("invalid topic accepted")
	}
}

func TestCloseSubscriptionThenResubscribe(t *testing.T) {
	_, srv := newPair(t)
	c := dialT(t, srv)
	if err := c.Subscribe(bg, "rai", "tasks", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseSubscription(bg); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(bg, "rai", "tasks", 1); err != nil {
		t.Fatalf("resubscribe after close: %v", err)
	}
}

func TestServerCloseDropsClients(t *testing.T) {
	_, srv := newPair(t)
	c := dialT(t, srv)
	c.Subscribe(bg, "rai", "tasks", 1)
	srv.Close()
	select {
	case _, ok := <-c.C():
		if ok {
			t.Error("got a delivery after server close")
		}
	case <-time.After(2 * time.Second):
		t.Error("delivery stream did not close")
	}
	if err := c.Ping(bg); err == nil {
		t.Error("ping succeeded after server close")
	}
}

func TestConcurrentPublishers(t *testing.T) {
	_, srv := newPair(t)
	sub := dialT(t, srv)
	sub.Subscribe(bg, "rai", "tasks", 64)

	const publishers, each = 4, 25
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		c := dialT(t, srv)
		wg.Add(1)
		go func(p int, c *Client) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := c.Publish(bg, "rai", []byte(fmt.Sprintf("%d:%d", p, i))); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(p, c)
	}
	seen := map[string]bool{}
	for i := 0; i < publishers*each; i++ {
		d := recvT(t, sub)
		if seen[string(d.Body)] {
			t.Fatalf("duplicate %s", d.Body)
		}
		seen[string(d.Body)] = true
		sub.Ack(bg, d)
	}
	wg.Wait()
}

func TestStatsOverTCP(t *testing.T) {
	_, srv := newPair(t)
	pub := dialT(t, srv)
	sub := dialT(t, srv)
	sub.Subscribe(bg, "rai", "tasks", 1)
	pub.Publish(bg, "rai", []byte("a"))
	pub.Publish(bg, "rai", []byte("b"))
	recvT(t, sub) // one in flight, one queued

	stats, err := pub.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Topic != "rai" {
		t.Fatalf("stats = %+v", stats)
	}
	cs := stats[0].Channels[0]
	if cs.Channel != "tasks" || cs.Depth != 1 || cs.InFlight != 1 || cs.Subscribers != 1 {
		t.Fatalf("channel stats = %+v", cs)
	}
}

func TestPipelinedPublishesOnOneConnection(t *testing.T) {
	_, srv := newPair(t)
	c := dialT(t, srv)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Publish(bg, "rai", []byte{byte(i)}); err != nil {
				t.Errorf("pipelined publish %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}
