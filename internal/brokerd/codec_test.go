package brokerd

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"
	"unicode/utf8"
)

var fuzzOps = []string{OpPub, OpSub, OpAck, OpReq, OpPing, OpOK, OpErr, OpMsg, OpClose, OpStats, OpHello}

// FuzzFrameRoundTrip drives both wire encodings with the same frame and
// checks Encode→Decode is the identity. The binary codec must take
// anything; the JSON leg is skipped where encoding/json is lossy by
// design (invalid UTF-8 in strings, years outside RFC 3339).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint64(42), 3, 8, int64(1700000000_000000001), true, "rai", "tasks", "", []byte("job payload"))
	f.Add(uint8(7), uint64(9), uint64(0), 0, 0, int64(0), false, "", "", "boom", []byte{})
	f.Add(uint8(10), uint64(1<<63), uint64(1<<62), -1, -5, int64(-1), true, "log_7#x", "worker#3", "", []byte{0, 0xff, 0x80})
	f.Fuzz(func(t *testing.T, opIdx uint8, seq, msgID uint64, attempts, maxInFlight int, nanos int64, hasTime bool, topic, channel, errStr string, body []byte) {
		in := &Frame{
			Op:          fuzzOps[int(opIdx)%len(fuzzOps)],
			Seq:         seq,
			MsgID:       msgID,
			Attempts:    attempts,
			MaxInFlight: maxInFlight,
			Topic:       topic,
			Channel:     channel,
			Error:       errStr,
			Body:        body,
		}
		if hasTime {
			in.Time = time.Unix(0, nanos).UTC()
		}
		check := func(name string, c Codec, strict bool) {
			var buf bytes.Buffer
			if err := c.Encode(&buf, in); err != nil {
				if strict {
					t.Fatalf("%s: encode: %v", name, err)
				}
				return // e.g. JSON refuses years outside [0,9999]
			}
			out, err := c.Decode(&buf)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if out.Op != in.Op || out.Seq != in.Seq || out.MsgID != in.MsgID ||
				out.Attempts != in.Attempts || out.MaxInFlight != in.MaxInFlight ||
				out.Topic != in.Topic || out.Channel != in.Channel || out.Error != in.Error {
				t.Fatalf("%s: fields drifted:\n in=%+v\nout=%+v", name, in, out)
			}
			if !bytes.Equal(out.Body, in.Body) {
				t.Fatalf("%s: body %q != %q", name, out.Body, in.Body)
			}
			if !out.Time.Equal(in.Time) {
				t.Fatalf("%s: time %v != %v", name, out.Time, in.Time)
			}
			if buf.Len() != 0 {
				t.Fatalf("%s: %d trailing bytes after decode", name, buf.Len())
			}
		}
		check("binary", BinaryCodec, true)
		if utf8.ValidString(topic) && utf8.ValidString(channel) && utf8.ValidString(errStr) {
			check("json", JSONCodec, false)
		}
	})
}

// FuzzBinaryDecode feeds arbitrary length-prefixed payloads to the
// binary decoder: malformed frames must come back as errors, never
// panics or hangs.
func FuzzBinaryDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(bytes.Repeat([]byte{0xff}, binHeaderLen))
	// A valid PUB frame as a seed so the corpus mutates from real shapes.
	var buf bytes.Buffer
	if err := BinaryCodec.Encode(&buf, &Frame{Op: OpPub, Seq: 1, Topic: "rai", Body: []byte("x")}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes()[4:])
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > maxFrameSize {
			t.Skip()
		}
		var hdr [4]byte
		hdr[0] = byte(len(payload) >> 24)
		hdr[1] = byte(len(payload) >> 16)
		hdr[2] = byte(len(payload) >> 8)
		hdr[3] = byte(len(payload))
		r := io.MultiReader(bytes.NewReader(hdr[:]), bytes.NewReader(payload))
		out, err := BinaryCodec.Decode(r)
		if err == nil {
			// Whatever decoded must re-encode cleanly.
			var buf bytes.Buffer
			if err := BinaryCodec.Encode(&buf, out); err != nil {
				t.Fatalf("decoded frame %+v will not re-encode: %v", out, err)
			}
		}
	})
}

func TestStatsFrameBinaryRoundTrip(t *testing.T) {
	in := &Frame{Op: OpOK, Seq: 3, Stats: []TopicStats{
		{Topic: "rai", Backlog: 2, Channels: []ChannelStats{
			{Channel: "tasks", Depth: 5, InFlight: 1, Subscribers: 3},
		}},
		{Topic: "log_1#x", Backlog: 0},
	}}
	var buf bytes.Buffer
	if err := BinaryCodec.Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := BinaryCodec.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stats) != 2 || out.Stats[0].Topic != "rai" || len(out.Stats[0].Channels) != 1 ||
		out.Stats[0].Channels[0].Depth != 5 || out.Stats[1].Topic != "log_1#x" {
		t.Fatalf("stats round trip = %+v", out.Stats)
	}
}

func TestBinaryDecodeMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty payload":    {},
		"short header":     bytes.Repeat([]byte{0}, binHeaderLen-1),
		"unknown op":       append([]byte{0xee}, bytes.Repeat([]byte{0}, binHeaderLen-1)...),
		"field past end":   append(append([]byte{1}, bytes.Repeat([]byte{0}, binHeaderLen-1)...), 0xff, 0xff, 0xff, 0xff),
		"truncated length": append(append([]byte{1}, bytes.Repeat([]byte{0}, binHeaderLen-1)...), 0, 0),
	}
	for name, payload := range cases {
		var buf bytes.Buffer
		var hdr [4]byte
		hdr[3] = byte(len(payload))
		hdr[2] = byte(len(payload) >> 8)
		buf.Write(hdr[:])
		buf.Write(payload)
		if _, err := BinaryCodec.Decode(&buf); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestNegotiatedBinaryProtocol checks the default dial lands on the
// binary encoding against a binary-capable server and the connection
// still does real work afterwards.
func TestNegotiatedBinaryProtocol(t *testing.T) {
	_, srv := newPair(t)
	c := dialT(t, srv)
	if got := c.ProtocolVersion(); got != ProtocolBinary {
		t.Fatalf("ProtocolVersion() = %d, want %d", got, ProtocolBinary)
	}
	if err := c.Ping(bg); err != nil {
		t.Fatal(err)
	}
}

// TestJSONClientAgainstBinaryServer runs the full pub/sub/ack flow with
// a client pinned to the legacy JSON encoding — the interop guarantee
// that pre-HELLO clients keep working against an upgraded server.
func TestJSONClientAgainstBinaryServer(t *testing.T) {
	_, srv := newPair(t)
	c, err := DialContext(bg, srv.Addr(), WithJSONCodec())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if got := c.ProtocolVersion(); got != ProtocolJSON {
		t.Fatalf("ProtocolVersion() = %d, want %d", got, ProtocolJSON)
	}
	if err := c.Subscribe(bg, "rai", "tasks", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish(bg, "rai", []byte("legacy payload")); err != nil {
		t.Fatal(err)
	}
	d := recvT(t, c)
	if string(d.Body) != "legacy payload" || d.Topic != "rai" {
		t.Fatalf("delivery = %+v", d)
	}
	if err := c.Requeue(bg, d); err != nil {
		t.Fatal(err)
	}
	d = recvT(t, c)
	if d.Attempts != 2 {
		t.Fatalf("attempts after requeue = %d, want 2", d.Attempts)
	}
	if err := c.Ack(bg, d); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(bg); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryClientAgainstLegacyServer points a binary-capable client at
// a hand-rolled JSON-only server that rejects HELLO as an unknown op,
// exactly like a pre-binary brokerd. The client must fall back to JSON
// and keep working.
func TestBinaryClientAgainstLegacyServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			f, err := ReadFrame(conn)
			if err != nil {
				return
			}
			switch f.Op {
			case OpPing:
				_ = WriteFrame(conn, &Frame{Op: OpOK, Seq: f.Seq})
			default: // a legacy server has never heard of HELLO
				_ = WriteFrame(conn, &Frame{Op: OpErr, Seq: f.Seq, Error: "unknown op"})
			}
		}
	}()

	c, err := DialContext(bg, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ProtocolVersion(); got != ProtocolJSON {
		t.Fatalf("ProtocolVersion() = %d, want %d (fallback)", got, ProtocolJSON)
	}
	if err := c.Ping(bg); err != nil {
		t.Fatal(err)
	}
	c.Close()
	ln.Close()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("fake server goroutine did not exit")
	}
}

// TestHelloHandshakeTimeout points the client at a server that accepts
// and then never replies: the watchdog must close the connection and
// fail the dial instead of hanging.
func TestHelloHandshakeTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = io.Copy(io.Discard, conn) // read forever, reply never
	}()

	ctx, cancel := context.WithTimeout(bg, 200*time.Millisecond)
	defer cancel()
	if _, err := DialContext(ctx, ln.Addr().String()); err == nil {
		t.Fatal("dial against a mute server succeeded")
	}
}

// TestLegacyWireBytesUnchanged pins the pre-negotiation wire format: a
// hand-written JSON frame must be readable by the server path and the
// reply must be plain length-prefixed JSON, so captured traffic from
// old deployments stays decodable.
func TestLegacyWireBytesUnchanged(t *testing.T) {
	_, srv := newPair(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := WriteFrame(conn, &Frame{Op: OpPing, Seq: 99}); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Op != OpOK || reply.Seq != 99 {
		t.Fatalf("reply = %+v", reply)
	}
}

// TestBrokerdEndToEndBothCodecs cross-pollinates: a binary publisher
// feeding a JSON subscriber and vice versa, through one server.
func TestBrokerdEndToEndBothCodecs(t *testing.T) {
	_, srv := newPair(t)
	binC := dialT(t, srv)
	jsonC, err := DialContext(bg, srv.Addr(), WithJSONCodec())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jsonC.Close() })

	if err := jsonC.Subscribe(bg, "cross", "tasks", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := binC.Publish(bg, "cross", []byte("binary to json")); err != nil {
		t.Fatal(err)
	}
	d := recvT(t, jsonC)
	if string(d.Body) != "binary to json" {
		t.Fatalf("body = %q", d.Body)
	}
	if err := jsonC.Ack(bg, d); err != nil {
		t.Fatal(err)
	}

	if err := binC.Subscribe(bg, "ssorc", "tasks", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := jsonC.Publish(bg, "ssorc", []byte("json to binary")); err != nil {
		t.Fatal(err)
	}
	d = recvT(t, binC)
	if string(d.Body) != "json to binary" {
		t.Fatalf("body = %q", d.Body)
	}
	if err := binC.Ack(bg, d); err != nil {
		t.Fatal(err)
	}
}
