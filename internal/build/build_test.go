package build

import (
	"strings"
	"testing"
)

func TestDefaultRoundTrip(t *testing.T) {
	blob, err := Default().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for _, want := range []string{"cmake /src", "nvprof", "webgpu/rai:root", `version: "0.1"`} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("encoded default spec missing %q:\n%s", want, blob)
		}
	}
	back, err := Parse(blob)
	if err != nil {
		t.Fatalf("Parse(encoded default): %v", err)
	}
	if got, want := len(back.RAI.Commands.Build), len(Default().RAI.Commands.Build); got != want {
		t.Fatalf("round trip lost commands: got %d want %d", got, want)
	}
	if back.RAI.Image != "webgpu/rai:root" {
		t.Errorf("round trip image = %q", back.RAI.Image)
	}
}

func TestSubmissionSpec(t *testing.T) {
	s := Submission()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	blob, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for _, want := range []string{"submission_code", "/usr/bin/time", "testfull.hdf5"} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("submission spec missing %q:\n%s", want, blob)
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"bad version":  "rai:\n  version: 99\n  commands:\n    build:\n      - make\n",
		"no commands":  "rai:\n  version: 0.1\n  image: webgpu/rai:root\n",
		"unknown key":  "rai:\n  version: 0.1\n  bogus: 1\n  commands:\n    build:\n      - make\n",
		"negative gpu": "rai:\n  version: 0.2\n  resources:\n    gpus: -1\n  commands:\n    build:\n      - make\n",
	}
	for name, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("%s: Parse accepted invalid spec", name)
		}
	}
}

func TestParseResources(t *testing.T) {
	s, err := Parse([]byte("rai:\n  version: 0.2\n  image: webgpu/rai:root\n  resources:\n    gpus: 4\n  commands:\n    build:\n      - make\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.RAI.Resources.GPUs != 4 {
		t.Errorf("GPUs = %d, want 4", s.RAI.Resources.GPUs)
	}
}
