// Package build implements the rai-build.yml specification (paper §V,
// Listings 1 and 2): the YAML file a student places at the project root
// to select the container image and the command list the worker runs.
// Final submissions ignore the student file and use the enforced
// Listing 2 spec, which times the full dataset and copies the submitted
// code into /build for auditing.
package build

import (
	"fmt"

	"rai/internal/yamlite"
)

// FileName is the spec file looked up at the project root.
const FileName = "rai-build.yml"

// Versions the course toolchain accepts.
var supportedVersions = map[string]bool{"0.1": true, "0.2": true}

// Spec is a parsed rai-build.yml.
type Spec struct {
	RAI Section `yaml:"rai"`
}

// Section is the top-level "rai:" mapping.
type Section struct {
	Version string `yaml:"version"`
	// Image names the container image; it must be on the course
	// registry's whitelist. Empty means the worker's default image.
	Image string `yaml:"image"`
	// Resources carries the reserved "machine requirements" extension
	// (§V): jobs that ask for more GPUs than a worker offers are handed
	// back for a bigger machine.
	Resources Resources `yaml:"resources,omitempty"`
	Commands  Commands  `yaml:"commands"`
}

// Resources are the machine requirements a spec may request.
type Resources struct {
	GPUs int `yaml:"gpus,omitempty"`
}

// Commands holds the command lists the worker executes in order.
type Commands struct {
	Build []string `yaml:"build"`
}

// Parse decodes and validates a rai-build.yml. Unknown keys are
// rejected (strict mode, like the real client) and a bad version or an
// empty command list is a loud error rather than a silent default.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := yamlite.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the invariants shared by parsed and programmatic specs.
func (s *Spec) Validate() error {
	if !supportedVersions[s.RAI.Version] {
		return fmt.Errorf("build: unsupported rai-build.yml version %q", s.RAI.Version)
	}
	if len(s.RAI.Commands.Build) == 0 {
		return fmt.Errorf("build: spec has no build commands")
	}
	if s.RAI.Resources.GPUs < 0 {
		return fmt.Errorf("build: negative gpu request %d", s.RAI.Resources.GPUs)
	}
	return nil
}

// Encode renders the spec back to YAML (the exact subset Parse accepts).
func (s *Spec) Encode() ([]byte, error) {
	return yamlite.Marshal(s)
}

// Default is Listing 1: the spec used when a student project has no
// rai-build.yml — build with CMake, check correctness on the small
// dataset, and export an nvprof timeline.
func Default() *Spec {
	return &Spec{RAI: Section{
		Version: "0.1",
		Image:   "webgpu/rai:root",
		Commands: Commands{Build: []string{
			`echo "Building project"`,
			`cmake /src`,
			`make`,
			`./ece408 /data/test10.hdf5 /data/model.hdf5`,
			`nvprof --export-profile timeline.nvprof ./ece408 /data/test10.hdf5 /data/model.hdf5`,
		}},
	}}
}

// Submission is Listing 2: the enforced final-submission spec — the
// submitted code is copied into /build (line 7) and the full dataset is
// timed under /usr/bin/time (line 10), feeding the competition ranking.
func Submission() *Spec {
	return &Spec{RAI: Section{
		Version: "0.1",
		Image:   "webgpu/rai:root",
		Commands: Commands{Build: []string{
			`echo "Building project"`,
			`cp -r /src /build/submission_code`,
			`cmake /src`,
			`make`,
			`/usr/bin/time ./ece408 /data/testfull.hdf5 /data/model.hdf5 10000`,
		}},
	}}
}
