// Package sandbox implements the container runtime RAI workers use to
// isolate student code (paper §V "Container Execution"): a container is
// created per job from a whitelisted base image, given read-only /src
// and writable /build mounts plus the course /data volume (the
// nvidia-docker CUDA volume analogue), and constrained exactly as the
// paper describes — no network access, 8 GB of memory, and a maximum
// lifetime of one hour, all adjustable through the worker configuration.
package sandbox

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"rai/internal/registry"
	"rai/internal/shell"
	"rai/internal/vfs"
)

// Paper §V defaults ("These limits can be changed using the RAI worker
// configuration file").
const (
	DefaultMemoryBytes = 8 << 30
	DefaultLifetime    = time.Hour
	DefaultDiskBytes   = 16 << 30
)

// Errors reported by the runtime.
var (
	ErrLifetimeExceeded = errors.New("sandbox: container lifetime exceeded")
	ErrMemoryExceeded   = errors.New("sandbox: container memory limit exceeded")
	ErrDestroyed        = errors.New("sandbox: container destroyed")
	ErrNoNetwork        = errors.New("sandbox: network access is disabled")
)

// Mount binds a directory from another filesystem into the container.
type Mount struct {
	Source     *vfs.FS
	SourcePath string
	Target     string
	ReadOnly   bool
}

// Config describes a container to start.
type Config struct {
	// Image is the whitelisted base image reference (rai-build.yml
	// "image:" key).
	Image string
	// Mounts lists bind mounts (/src read-only, /build writable, /data).
	Mounts []Mount
	// WorkDir is the working directory for commands (default /build).
	WorkDir string
	// MemoryBytes caps modeled memory use (default 8 GiB).
	MemoryBytes int64
	// Lifetime caps accumulated wall time (default 1 h).
	Lifetime time.Duration
	// DiskBytes caps container-local writes (default 16 GiB).
	DiskBytes int64
	// EnableNetwork turns networking on (always off in the course).
	EnableNetwork bool
	// Stdout and Stderr receive command output (the worker pipes them to
	// the log topic).
	Stdout, Stderr io.Writer
	// Cost overrides the default execution cost model.
	Cost shell.CostModel
}

// Runtime starts containers, pulling images through a worker-local cache.
type Runtime struct {
	mu      sync.Mutex
	cache   *registry.Cache
	started int
	active  int
}

// NewRuntime returns a runtime pulling from reg.
func NewRuntime(reg *registry.Registry) *Runtime {
	return &Runtime{cache: registry.NewCache(reg)}
}

// Stats reports lifetime counters (started, currently active).
func (rt *Runtime) Stats() (started, active int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.started, rt.active
}

// Container is one sandboxed execution environment.
type Container struct {
	rt       *Runtime
	fs       *vfs.FS
	sh       *shell.Shell
	cfg      Config
	image    registry.Image
	mu       sync.Mutex
	used     time.Duration // accumulated wall time
	dead     bool
	released bool
	reason   error
	// PullLatency is the modeled time spent fetching the image before
	// the container could start (zero when cached, paper §V step 3).
	PullLatency time.Duration
}

// Start creates a container: resolves and pulls the image, assembles the
// filesystem from the mounts, and prepares the shell.
func (rt *Runtime) Start(cfg Config) (*Container, error) {
	img, pullLat, err := rt.cache.Pull(cfg.Image)
	if err != nil {
		return nil, err
	}
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = DefaultMemoryBytes
	}
	if cfg.Lifetime == 0 {
		cfg.Lifetime = DefaultLifetime
	}
	if cfg.DiskBytes == 0 {
		cfg.DiskBytes = DefaultDiskBytes
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = "/build"
	}
	if cfg.Stdout == nil {
		cfg.Stdout = io.Discard
	}
	if cfg.Stderr == nil {
		cfg.Stderr = io.Discard
	}
	fs := vfs.NewWithQuota(cfg.DiskBytes)
	if err := fs.MkdirAll(cfg.WorkDir); err != nil {
		return nil, err
	}
	for _, m := range cfg.Mounts {
		if err := fs.Mount(m.Target, m.Source, m.SourcePath, m.ReadOnly); err != nil {
			return nil, fmt.Errorf("sandbox: mounting %s: %w", m.Target, err)
		}
	}
	sh := shell.New(fs, cfg.WorkDir, cfg.Stdout, cfg.Stderr, cfg.Cost)
	c := &Container{rt: rt, fs: fs, sh: sh, cfg: cfg, image: img, PullLatency: pullLat}
	c.registerNetworkStubs()
	rt.mu.Lock()
	rt.started++
	rt.active++
	rt.mu.Unlock()
	return c, nil
}

// registerNetworkStubs installs curl/wget/ping programs that fail when
// networking is disabled, demonstrating the isolation the paper requires.
func (c *Container) registerNetworkStubs() {
	netProg := func(name string) shell.Program {
		return func(sh *shell.Shell, argv []string, res *shell.Result) error {
			if !c.cfg.EnableNetwork {
				fmt.Fprintf(sh.Stderr, "%s: could not resolve host: Network is unreachable\n", name)
				return &shell.ExitError{Code: 6, Msg: ErrNoNetwork.Error()}
			}
			fmt.Fprintf(sh.Stdout, "%s: ok (network enabled by worker config)\n", name)
			return nil
		}
	}
	for _, name := range []string{"curl", "wget", "ping"} {
		c.sh.Register(name, netProg(name))
	}
}

// Image returns the resolved base image.
func (c *Container) Image() registry.Image { return c.image }

// FS exposes the container filesystem (the worker reads /build from it
// to upload results).
func (c *Container) FS() *vfs.FS { return c.fs }

// Used reports accumulated wall time.
func (c *Container) Used() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Exec runs one build command. The container dies when a command pushes
// accumulated wall time past the lifetime or exceeds the memory limit;
// the error then wraps the corresponding sentinel.
func (c *Container) Exec(cmdline string) (shell.Result, error) {
	c.mu.Lock()
	if c.dead {
		reason := c.reason
		c.mu.Unlock()
		if reason == nil {
			reason = ErrDestroyed
		}
		return shell.Result{ExitCode: 137}, reason
	}
	c.mu.Unlock()

	res, err := c.sh.Run(cmdline)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.used += res.Wall
	if res.MemBytes > c.cfg.MemoryBytes {
		c.dead = true
		c.reason = fmt.Errorf("%w: %d bytes requested, limit %d", ErrMemoryExceeded, res.MemBytes, c.cfg.MemoryBytes)
		fmt.Fprintf(c.cfg.Stderr, "Killed (container exceeded %d byte memory limit)\n", c.cfg.MemoryBytes)
		res.ExitCode = 137
		return res, c.reason
	}
	if c.used > c.cfg.Lifetime {
		c.dead = true
		c.reason = fmt.Errorf("%w: used %v of %v", ErrLifetimeExceeded, c.used, c.cfg.Lifetime)
		// Clamp the overshoot: the reaper fires at the limit.
		over := c.used - c.cfg.Lifetime
		res.Wall -= over
		c.used = c.cfg.Lifetime
		fmt.Fprintf(c.cfg.Stderr, "Killed (container exceeded %v lifetime)\n", c.cfg.Lifetime)
		res.ExitCode = 137
		return res, c.reason
	}
	return res, err
}

// Destroy tears the container down ("A new container is started for each
// job and is terminated after completion", §V). Idempotent.
func (c *Container) Destroy() {
	c.mu.Lock()
	c.dead = true
	if c.reason == nil {
		c.reason = ErrDestroyed
	}
	release := !c.released
	c.released = true
	c.mu.Unlock()
	if release {
		c.rt.mu.Lock()
		c.rt.active--
		c.rt.mu.Unlock()
	}
}

// Alive reports whether the container can still execute commands.
func (c *Container) Alive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.dead
}
