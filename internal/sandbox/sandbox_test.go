package sandbox

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"rai/internal/cnn"
	"rai/internal/project"
	"rai/internal/registry"
	"rai/internal/vfs"
)

// hostFS builds the worker-side filesystems: student project and the
// course data volume.
func hostFS(t *testing.T, spec project.Spec) (src, data *vfs.FS) {
	t.Helper()
	src = vfs.New()
	if err := project.WriteTo(src, "/job/src", spec); err != nil {
		t.Fatal(err)
	}
	data = vfs.New()
	nw := cnn.NewNetwork(408)
	model, _ := nw.SaveModel()
	data.WriteFile("/data/model.hdf5", model)
	ds, _ := cnn.SynthesizeDataset(nw, 5, 10)
	blob, _ := ds.Encode()
	data.WriteFile("/data/test10.hdf5", blob)
	return src, data
}

func startContainer(t *testing.T, spec project.Spec, mutate func(*Config)) (*Container, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	src, data := hostFS(t, spec)
	rt := NewRuntime(registry.NewCourseRegistry())
	var out, errb bytes.Buffer
	cfg := Config{
		Image: "webgpu/rai:root",
		Mounts: []Mount{
			{Source: src, SourcePath: "/job/src", Target: "/src", ReadOnly: true},
			{Source: data, SourcePath: "/data", Target: "/data", ReadOnly: true},
		},
		Stdout: &out,
		Stderr: &errb,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := rt.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Destroy)
	return c, &out, &errb
}

func TestFullBuildInContainer(t *testing.T) {
	c, out, errb := startContainer(t, project.Spec{Impl: cnn.ImplIm2col, Team: "alpha"}, nil)
	for _, cmd := range []string{
		`echo "Building project"`,
		"cmake /src",
		"make",
		"./ece408 /data/test10.hdf5 /data/model.hdf5",
	} {
		if _, err := c.Exec(cmd); err != nil {
			t.Fatalf("%q: %v\nstderr: %s", cmd, err, errb.String())
		}
	}
	if !strings.Contains(out.String(), "Correctness: 1.0000") {
		t.Errorf("output:\n%s", out.String())
	}
	// The build directory holds the produced binary; /src stayed intact.
	if !c.FS().Exists("/build/ece408") {
		t.Error("binary missing from /build")
	}
	if c.Used() <= 0 {
		t.Error("no wall time accumulated")
	}
}

func TestSrcMountIsReadOnly(t *testing.T) {
	c, _, _ := startContainer(t, project.Spec{Impl: cnn.ImplTiled}, nil)
	if err := c.FS().WriteFile("/src/hack.txt", []byte("x")); !errors.Is(err, vfs.ErrReadOnly) {
		t.Fatalf("write to /src: %v", err)
	}
}

func TestNetworkDisabled(t *testing.T) {
	c, _, errb := startContainer(t, project.Spec{Impl: cnn.ImplTiled}, nil)
	res, err := c.Exec("curl http://example.com/exfiltrate")
	if err == nil || res.ExitCode != 6 {
		t.Fatalf("curl in no-net container: %v %+v", err, res)
	}
	if !strings.Contains(errb.String(), "Network is unreachable") {
		t.Errorf("stderr = %q", errb.String())
	}
	// wget and ping are stubbed the same way.
	if _, err := c.Exec("wget http://example.com"); err == nil {
		t.Error("wget succeeded")
	}
}

func TestNetworkEnabledByConfig(t *testing.T) {
	c, out, _ := startContainer(t, project.Spec{Impl: cnn.ImplTiled}, func(cfg *Config) {
		cfg.EnableNetwork = true
	})
	if _, err := c.Exec("curl http://example.com"); err != nil {
		t.Fatalf("curl with network enabled: %v", err)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("output = %q", out.String())
	}
}

func TestLifetimeLimitKillsContainer(t *testing.T) {
	c, _, errb := startContainer(t, project.Spec{Impl: cnn.ImplTiled}, func(cfg *Config) {
		cfg.Lifetime = 10 * time.Second
	})
	if _, err := c.Exec("sleep 9"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("sleep 5")
	if !errors.Is(err, ErrLifetimeExceeded) {
		t.Fatalf("over-lifetime exec: %v", err)
	}
	if res.ExitCode != 137 {
		t.Errorf("exit code = %d", res.ExitCode)
	}
	if c.Used() != 10*time.Second {
		t.Errorf("Used = %v, want clamped to 10s", c.Used())
	}
	if !strings.Contains(errb.String(), "lifetime") {
		t.Errorf("stderr = %q", errb.String())
	}
	// Dead container rejects further commands.
	if _, err := c.Exec("echo still there"); !errors.Is(err, ErrLifetimeExceeded) {
		t.Errorf("exec after death: %v", err)
	}
	if c.Alive() {
		t.Error("container still alive")
	}
}

func TestHangingJobIsReaped(t *testing.T) {
	c, _, _ := startContainer(t, project.Spec{Impl: cnn.ImplIm2col, Bug: "hang"}, func(cfg *Config) {
		cfg.Lifetime = time.Hour
	})
	c.Exec("cmake /src")
	c.Exec("make")
	_, err := c.Exec("./ece408 /data/test10.hdf5 /data/model.hdf5")
	if !errors.Is(err, ErrLifetimeExceeded) {
		t.Fatalf("hanging kernel: %v", err)
	}
	if c.Used() > time.Hour {
		t.Errorf("Used = %v, want clamped to the 1h lifetime", c.Used())
	}
}

func TestMemoryLimitKillsContainer(t *testing.T) {
	c, _, errb := startContainer(t, project.Spec{Impl: cnn.ImplIm2col, Bug: "oom"}, nil)
	c.Exec("cmake /src")
	c.Exec("make")
	res, err := c.Exec("./ece408 /data/test10.hdf5 /data/model.hdf5")
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("oom kernel: %v", err)
	}
	if res.ExitCode != 137 {
		t.Errorf("exit code = %d", res.ExitCode)
	}
	if !strings.Contains(errb.String(), "memory limit") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestNormalRunFitsDefaultMemory(t *testing.T) {
	c, _, _ := startContainer(t, project.Spec{Impl: cnn.ImplIm2col}, nil)
	c.Exec("cmake /src")
	c.Exec("make")
	if _, err := c.Exec("./ece408 /data/test10.hdf5 /data/model.hdf5"); err != nil {
		t.Fatalf("normal run killed: %v", err)
	}
}

func TestImageWhitelistEnforced(t *testing.T) {
	rt := NewRuntime(registry.NewCourseRegistry())
	_, err := rt.Start(Config{Image: "evil/botnet:latest"})
	if !errors.Is(err, registry.ErrUnknownImage) && !errors.Is(err, registry.ErrNotWhitelisted) {
		t.Fatalf("non-whitelisted image: %v", err)
	}
}

func TestPullLatencyOnlyFirstContainer(t *testing.T) {
	src, data := hostFS(t, project.Spec{Impl: cnn.ImplTiled})
	rt := NewRuntime(registry.NewCourseRegistry())
	cfg := Config{
		Image: "webgpu/rai:root",
		Mounts: []Mount{
			{Source: src, SourcePath: "/job/src", Target: "/src", ReadOnly: true},
			{Source: data, SourcePath: "/data", Target: "/data", ReadOnly: true},
		},
	}
	c1, err := rt.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Destroy()
	if c1.PullLatency <= 0 {
		t.Error("first container had no pull latency")
	}
	c2, err := rt.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Destroy()
	if c2.PullLatency != 0 {
		t.Errorf("second container pull latency = %v, want 0 (cached)", c2.PullLatency)
	}
}

func TestRuntimeStats(t *testing.T) {
	src, data := hostFS(t, project.Spec{Impl: cnn.ImplTiled})
	rt := NewRuntime(registry.NewCourseRegistry())
	cfg := Config{
		Image: "webgpu/rai:root",
		Mounts: []Mount{
			{Source: src, SourcePath: "/job/src", Target: "/src", ReadOnly: true},
			{Source: data, SourcePath: "/data", Target: "/data", ReadOnly: true},
		},
	}
	c1, _ := rt.Start(cfg)
	c2, _ := rt.Start(cfg)
	if s, a := rt.Stats(); s != 2 || a != 2 {
		t.Fatalf("Stats = %d,%d", s, a)
	}
	c1.Destroy()
	c1.Destroy() // idempotent
	if s, a := rt.Stats(); s != 2 || a != 1 {
		t.Fatalf("after destroy: %d,%d", s, a)
	}
	c2.Destroy()
	if _, a := rt.Stats(); a != 0 {
		t.Fatalf("active = %d", a)
	}
}

func TestDiskQuota(t *testing.T) {
	c, _, _ := startContainer(t, project.Spec{Impl: cnn.ImplTiled}, func(cfg *Config) {
		cfg.DiskBytes = 1024
	})
	err := c.FS().WriteFile("/build/big.bin", make([]byte, 4096))
	if !errors.Is(err, vfs.ErrQuota) {
		t.Fatalf("over-quota write: %v", err)
	}
}

func TestBadMountFails(t *testing.T) {
	rt := NewRuntime(registry.NewCourseRegistry())
	_, err := rt.Start(Config{
		Image:  "webgpu/rai:root",
		Mounts: []Mount{{Source: vfs.New(), SourcePath: "/missing", Target: "/src", ReadOnly: true}},
	})
	if err == nil {
		t.Fatal("mount of missing source succeeded")
	}
}
