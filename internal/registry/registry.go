// Package registry models the Docker image registry and the whitelist of
// base images students may select in rai-build.yml ("Students can choose
// from a whitelist of base images", paper §V). Workers consult it before
// starting a container and "pull" images they do not have locally, with
// a pull latency model so simulations account for first-use delay.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors reported by the registry.
var (
	ErrNotWhitelisted = errors.New("registry: image not on the course whitelist")
	ErrUnknownImage   = errors.New("registry: unknown image")
	ErrBadRef         = errors.New("registry: malformed image reference")
)

// Image describes a base image students can run on.
type Image struct {
	// Ref is the full reference, e.g. "webgpu/rai:root".
	Ref string
	// SizeBytes models pull cost.
	SizeBytes int64
	// Toolchains lists what is installed (cuda, cudnn, tensorflow, ...).
	Toolchains []string
	// DeviceSpeedup is the throughput multiplier the image's "GPU"
	// runtime grants compute kernels relative to the serial CPU baseline
	// (the simulation's stand-in for K40 vs K80 class hardware).
	DeviceSpeedup float64
}

// ParseRef splits an image reference into repository and tag. An empty
// tag defaults to "latest".
func ParseRef(ref string) (repo, tag string, err error) {
	if ref == "" || strings.ContainsAny(ref, " \t\n") {
		return "", "", fmt.Errorf("%w: %q", ErrBadRef, ref)
	}
	repo, tag, found := strings.Cut(ref, ":")
	if repo == "" {
		return "", "", fmt.Errorf("%w: %q", ErrBadRef, ref)
	}
	if !found || tag == "" {
		tag = "latest"
	}
	if strings.Contains(tag, "/") {
		return "", "", fmt.Errorf("%w: %q (tag contains '/')", ErrBadRef, ref)
	}
	return repo, tag, nil
}

// Registry is the remote image catalog plus whitelist.
type Registry struct {
	mu        sync.RWMutex
	images    map[string]Image // key: canonical ref
	whitelist map[string]bool
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{images: map[string]Image{}, whitelist: map[string]bool{}}
}

// DefaultImages are the images the fall 2016 course offered: the default
// RAI image with the CUDA toolkit, CUDNN, and reference frameworks
// (paper §V "Container Execution").
func DefaultImages() []Image {
	return []Image{
		{
			Ref:           "webgpu/rai:root",
			SizeBytes:     4 << 30,
			Toolchains:    []string{"cuda-8.0", "cudnn-5", "cmake", "make", "nvprof", "tensorflow", "torch7", "libhdf5"},
			DeviceSpeedup: 1800, // K80-class device vs the 30-minute serial baseline
		},
		{
			Ref:           "webgpu/rai:cpu",
			SizeBytes:     1 << 30,
			Toolchains:    []string{"cmake", "make", "libhdf5"},
			DeviceSpeedup: 1, // no GPU: kernels run at baseline speed
		},
		{
			Ref:           "webgpu/rai:k40",
			SizeBytes:     4 << 30,
			Toolchains:    []string{"cuda-8.0", "cudnn-5", "cmake", "make", "nvprof", "libhdf5"},
			DeviceSpeedup: 1100, // G2-instance class (paper §VII used K40s early on)
		},
	}
}

// NewCourseRegistry returns a registry preloaded and whitelisted with
// DefaultImages.
func NewCourseRegistry() *Registry {
	r := New()
	for _, img := range DefaultImages() {
		_ = r.Add(img)
		_ = r.Whitelist(img.Ref)
	}
	return r
}

// Add registers an image (not yet whitelisted).
func (r *Registry) Add(img Image) error {
	repo, tag, err := ParseRef(img.Ref)
	if err != nil {
		return err
	}
	img.Ref = repo + ":" + tag
	r.mu.Lock()
	defer r.mu.Unlock()
	r.images[img.Ref] = img
	return nil
}

// Whitelist allows students to use ref.
func (r *Registry) Whitelist(ref string) error {
	repo, tag, err := ParseRef(ref)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.whitelist[repo+":"+tag] = true
	return nil
}

// Resolve validates a student-supplied reference: it must parse, exist,
// and be whitelisted.
func (r *Registry) Resolve(ref string) (Image, error) {
	repo, tag, err := ParseRef(ref)
	if err != nil {
		return Image{}, err
	}
	canonical := repo + ":" + tag
	r.mu.RLock()
	defer r.mu.RUnlock()
	img, ok := r.images[canonical]
	if !ok {
		return Image{}, fmt.Errorf("%w: %q", ErrUnknownImage, canonical)
	}
	if !r.whitelist[canonical] {
		return Image{}, fmt.Errorf("%w: %q", ErrNotWhitelisted, canonical)
	}
	return img, nil
}

// Images lists registered refs, sorted.
func (r *Registry) Images() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.images))
	for ref := range r.images {
		out = append(out, ref)
	}
	sort.Strings(out)
	return out
}

// Cache is a worker-local image cache: the first use of an image "pulls"
// it (modelled as size/bandwidth latency), later uses are instant
// (paper §V worker step 3).
type Cache struct {
	mu        sync.Mutex
	reg       *Registry
	present   map[string]bool
	Bandwidth int64 // bytes/second for pull-latency modelling
}

// NewCache returns an empty cache over reg with a 100 MB/s pull model.
func NewCache(reg *Registry) *Cache {
	return &Cache{reg: reg, present: map[string]bool{}, Bandwidth: 100 << 20}
}

// Pull ensures ref is locally available, returning the image and the
// modelled pull latency (zero when cached).
func (c *Cache) Pull(ref string) (Image, time.Duration, error) {
	img, err := c.reg.Resolve(ref)
	if err != nil {
		return Image{}, 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.present[img.Ref] {
		return img, 0, nil
	}
	c.present[img.Ref] = true
	lat := time.Duration(0)
	if c.Bandwidth > 0 {
		lat = time.Duration(float64(img.SizeBytes) / float64(c.Bandwidth) * float64(time.Second))
	}
	return img, lat, nil
}

// Contains reports whether ref is already cached locally.
func (c *Cache) Contains(ref string) bool {
	repo, tag, err := ParseRef(ref)
	if err != nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.present[repo+":"+tag]
}
