package registry

import (
	"errors"
	"testing"
	"time"
)

func TestParseRef(t *testing.T) {
	cases := []struct {
		in, repo, tag string
		ok            bool
	}{
		{"webgpu/rai:root", "webgpu/rai", "root", true},
		{"webgpu/rai", "webgpu/rai", "latest", true},
		{"alpine:3.4", "alpine", "3.4", true},
		{"", "", "", false},
		{":root", "", "", false},
		{"repo:ta/g", "", "", false},
		{"has space:x", "", "", false},
	}
	for _, tc := range cases {
		repo, tag, err := ParseRef(tc.in)
		if tc.ok && (err != nil || repo != tc.repo || tag != tc.tag) {
			t.Errorf("ParseRef(%q) = %q,%q,%v", tc.in, repo, tag, err)
		}
		if !tc.ok && !errors.Is(err, ErrBadRef) {
			t.Errorf("ParseRef(%q) err = %v, want ErrBadRef", tc.in, err)
		}
	}
}

func TestResolveWhitelist(t *testing.T) {
	r := New()
	r.Add(Image{Ref: "webgpu/rai:root", SizeBytes: 1})
	r.Add(Image{Ref: "evil/miner:latest", SizeBytes: 1})
	r.Whitelist("webgpu/rai:root")

	if _, err := r.Resolve("webgpu/rai:root"); err != nil {
		t.Errorf("whitelisted image rejected: %v", err)
	}
	if _, err := r.Resolve("evil/miner"); !errors.Is(err, ErrNotWhitelisted) {
		t.Errorf("non-whitelisted image: %v", err)
	}
	if _, err := r.Resolve("missing/image:x"); !errors.Is(err, ErrUnknownImage) {
		t.Errorf("unknown image: %v", err)
	}
	if _, err := r.Resolve("bad ref"); !errors.Is(err, ErrBadRef) {
		t.Errorf("bad ref: %v", err)
	}
}

func TestCourseRegistryDefaults(t *testing.T) {
	r := NewCourseRegistry()
	img, err := r.Resolve("webgpu/rai:root")
	if err != nil {
		t.Fatal(err)
	}
	if img.DeviceSpeedup <= 1 {
		t.Errorf("default image speedup = %v, want GPU-class", img.DeviceSpeedup)
	}
	has := func(tc string) bool {
		for _, x := range img.Toolchains {
			if x == tc {
				return true
			}
		}
		return false
	}
	// Paper §V: latest CUDA toolkit with CUDNN plus TensorFlow and Torch7.
	for _, tc := range []string{"cuda-8.0", "cudnn-5", "tensorflow", "torch7", "nvprof"} {
		if !has(tc) {
			t.Errorf("default image missing toolchain %s", tc)
		}
	}
	if got := r.Images(); len(got) != 3 {
		t.Errorf("Images = %v", got)
	}
}

func TestCachePullLatencyOnce(t *testing.T) {
	r := NewCourseRegistry()
	c := NewCache(r)
	if c.Contains("webgpu/rai:root") {
		t.Fatal("image cached before pull")
	}
	img, lat, err := c.Pull("webgpu/rai:root")
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Errorf("first pull latency = %v, want > 0", lat)
	}
	wantLat := time.Duration(float64(img.SizeBytes) / float64(c.Bandwidth) * float64(time.Second))
	if lat != wantLat {
		t.Errorf("pull latency = %v, want %v", lat, wantLat)
	}
	_, lat2, err := c.Pull("webgpu/rai:root")
	if err != nil || lat2 != 0 {
		t.Errorf("second pull = %v, %v; want cached (0 latency)", lat2, err)
	}
	if !c.Contains("webgpu/rai:root") {
		t.Error("Contains false after pull")
	}
}

func TestCachePullRejectsNonWhitelisted(t *testing.T) {
	r := New()
	r.Add(Image{Ref: "evil/miner:latest"})
	c := NewCache(r)
	if _, _, err := c.Pull("evil/miner:latest"); !errors.Is(err, ErrNotWhitelisted) {
		t.Errorf("Pull(non-whitelisted) = %v", err)
	}
}

func TestAddCanonicalizesTag(t *testing.T) {
	r := New()
	r.Add(Image{Ref: "plain/repo"})
	r.Whitelist("plain/repo:latest")
	if _, err := r.Resolve("plain/repo:latest"); err != nil {
		t.Errorf("canonical tag lookup: %v", err)
	}
	if _, err := r.Resolve("plain/repo"); err != nil {
		t.Errorf("default tag lookup: %v", err)
	}
}
