package grading

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func TestRerunMinKeepsBest(t *testing.T) {
	times := []time.Duration{900 * time.Millisecond, 450 * time.Millisecond, 610 * time.Millisecond}
	i := 0
	run := func(team string) (time.Duration, float64, error) {
		d := times[i%len(times)]
		i++
		return d, 0.99, nil
	}
	res, err := RerunMin("team-a", 3, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != 450*time.Millisecond {
		t.Errorf("Best = %v", res.Best)
	}
	if len(res.Runs) != 3 || res.Failures != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestRerunMinToleratesFailures(t *testing.T) {
	i := 0
	run := func(team string) (time.Duration, float64, error) {
		i++
		if i%2 == 1 {
			return 0, 0, errors.New("transient worker failure")
		}
		return time.Second, 0.95, nil
	}
	res, err := RerunMin("team-b", 4, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 2 || len(res.Runs) != 2 {
		t.Errorf("res = %+v", res)
	}
}

func TestRerunMinAllFail(t *testing.T) {
	run := func(team string) (time.Duration, float64, error) {
		return 0, 0, errors.New("broken")
	}
	if _, err := RerunMin("team-c", 3, run); !errors.Is(err, ErrNoRuns) {
		t.Fatalf("err = %v", err)
	}
}

func TestPerformanceScoreEndpoints(t *testing.T) {
	fast, slow := 400*time.Millisecond, 2*time.Minute
	if got := PerformanceScore(fast, fast, slow); got != 100 {
		t.Errorf("fastest = %v", got)
	}
	if got := PerformanceScore(slow, fast, slow); got != 0 {
		t.Errorf("slowest = %v", got)
	}
	mid := PerformanceScore(2*time.Second, fast, slow)
	if mid <= 0 || mid >= 100 {
		t.Errorf("mid = %v", mid)
	}
	// Monotonic: faster runtime, higher score.
	if PerformanceScore(time.Second, fast, slow) <= mid {
		t.Error("performance score not monotonic")
	}
	// Degenerate class (everyone equal) gets full marks.
	if got := PerformanceScore(fast, fast, fast); got != 100 {
		t.Errorf("degenerate = %v", got)
	}
}

func TestFunctionalityScore(t *testing.T) {
	if got := FunctionalityScore(0.95, 0.9); got != 100 {
		t.Errorf("above target = %v", got)
	}
	if got := FunctionalityScore(0.45, 0.9); math.Abs(got-50) > 1e-9 {
		t.Errorf("half target = %v", got)
	}
	if got := FunctionalityScore(-1, 0.9); got != 0 {
		t.Errorf("negative = %v", got)
	}
}

func TestGradeClassWeights(t *testing.T) {
	reruns := []*RerunResult{
		{Team: "best", Best: 400 * time.Millisecond, Accuracy: 0.99, Runs: []time.Duration{400 * time.Millisecond}},
		{Team: "worst", Best: 2 * time.Minute, Accuracy: 0.99, Runs: []time.Duration{2 * time.Minute}},
	}
	manual := map[string]ManualScores{
		"best":  {CodeQuality: 100, Report: 100},
		"worst": {CodeQuality: 100, Report: 100},
	}
	g := &Grader{TargetAccuracy: 0.9}
	grades, err := g.GradeClass(reruns, manual)
	if err != nil {
		t.Fatal(err)
	}
	if grades[0].Team != "best" || grades[0].Rank != 1 {
		t.Fatalf("grades = %+v", grades)
	}
	// Perfect everything: 30+20+10+40 = 100.
	if math.Abs(grades[0].Total-100) > 1e-9 {
		t.Errorf("best total = %v", grades[0].Total)
	}
	// Slowest loses exactly the 30 performance points here.
	if math.Abs(grades[1].Total-70) > 1e-9 {
		t.Errorf("worst total = %v", grades[1].Total)
	}
}

func TestGradeClassMissingManualScoresZero(t *testing.T) {
	reruns := []*RerunResult{{Team: "solo", Best: time.Second, Accuracy: 1, Runs: []time.Duration{time.Second}}}
	g := &Grader{TargetAccuracy: 0.9}
	grades, err := g.GradeClass(reruns, nil)
	if err != nil {
		t.Fatal(err)
	}
	// performance 100 (degenerate) * .3 + functionality 100 * .2 = 50.
	if math.Abs(grades[0].Total-50) > 1e-9 {
		t.Errorf("total = %v", grades[0].Total)
	}
}

func TestGradeClassValidatesManual(t *testing.T) {
	reruns := []*RerunResult{{Team: "x", Best: time.Second, Accuracy: 1, Runs: []time.Duration{time.Second}}}
	g := &Grader{}
	if _, err := g.GradeClass(reruns, map[string]ManualScores{"x": {CodeQuality: 150}}); !errors.Is(err, ErrBadScore) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.GradeClass(nil, nil); !errors.Is(err, ErrNoRuns) {
		t.Fatalf("empty class: %v", err)
	}
}

func TestGradeClassWholeCourse(t *testing.T) {
	// 58 teams (paper §VII) with spread runtimes grade without error and
	// produce strictly ranked, weakly decreasing performance scores.
	var reruns []*RerunResult
	for i := 0; i < 58; i++ {
		reruns = append(reruns, &RerunResult{
			Team:     fmt.Sprintf("team%02d", i),
			Best:     400*time.Millisecond + time.Duration(i)*2*time.Second,
			Accuracy: 0.95,
			Runs:     []time.Duration{time.Second},
		})
	}
	g := &Grader{TargetAccuracy: 0.9}
	grades, err := g.GradeClass(reruns, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(grades) != 58 {
		t.Fatalf("grades = %d", len(grades))
	}
	for i := 1; i < len(grades); i++ {
		if grades[i].Performance > grades[i-1].Performance {
			t.Fatalf("performance not monotonic at %d", i)
		}
		if grades[i].Rank != i+1 {
			t.Fatalf("rank %d at index %d", grades[i].Rank, i)
		}
	}
}

func TestFormatReport(t *testing.T) {
	g := Grade{
		Team: "team-a", Performance: 88.5, Functionality: 100, CodeQuality: 90,
		Report: 85, Total: 89.1, BestRuntime: 512 * time.Millisecond, Accuracy: 0.99, Rank: 3,
	}
	text := FormatReport(g)
	for _, want := range []string{"team-a", "#3", "0.512s", "30%", "20%", "10%", "40%", "TOTAL"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}
