// Package grading implements the project grading workflow (paper §VII
// "Project Grading"): the rubric combining performance (30%),
// functionality and correctness (20%), code quality (10%), and the
// written report (40%); the automated pieces — rerunning submissions
// multiple times and keeping the best observed performance, recomputing
// the ranking — and the grade report that merges automated and manual
// feedback.
package grading

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Rubric weights (paper §VII).
const (
	WeightPerformance   = 0.30
	WeightFunctionality = 0.20
	WeightCodeQuality   = 0.10
	WeightReport        = 0.40
)

// Errors reported by the grader.
var (
	ErrNoRuns   = errors.New("grading: no successful reruns")
	ErrBadScore = errors.New("grading: manual score outside [0,100]")
)

// RerunFunc executes one grading rerun of a team's final submission and
// returns the measured runtime and accuracy.
type RerunFunc func(team string) (time.Duration, float64, error)

// RerunResult aggregates the rerun campaign for one team.
type RerunResult struct {
	Team string
	// Best is the minimum observed runtime ("rerun the students'
	// submissions multiple times and display the minimum time", §VI).
	Best time.Duration
	// Runs holds every successful measurement.
	Runs []time.Duration
	// Accuracy is from the best run.
	Accuracy float64
	// Failures counts reruns that errored.
	Failures int
}

// RerunMin reruns a submission n times and keeps the minimum runtime.
func RerunMin(team string, n int, run RerunFunc) (*RerunResult, error) {
	if n <= 0 {
		n = 1
	}
	res := &RerunResult{Team: team, Best: math.MaxInt64}
	for i := 0; i < n; i++ {
		rt, acc, err := run(team)
		if err != nil {
			res.Failures++
			continue
		}
		res.Runs = append(res.Runs, rt)
		if rt < res.Best {
			res.Best = rt
			res.Accuracy = acc
		}
	}
	if len(res.Runs) == 0 {
		return nil, fmt.Errorf("%w for team %s (%d failures)", ErrNoRuns, team, res.Failures)
	}
	return res, nil
}

// ManualScores carries the human-graded components on a 0–100 scale
// ("Both the code quality and the report evaluation are performed with
// human intervention", §VII).
type ManualScores struct {
	CodeQuality float64
	Report      float64
}

// Validate checks manual scores are in range.
func (m ManualScores) Validate() error {
	if m.CodeQuality < 0 || m.CodeQuality > 100 || m.Report < 0 || m.Report > 100 {
		return ErrBadScore
	}
	return nil
}

// PerformanceScore maps a team's best runtime onto 0–100 relative to the
// class: full marks at (or below) the fastest runtime, zero at the
// slowest, log-scaled in between (runtimes span 0.4 s to minutes, so a
// linear scale would collapse the distribution's interesting region).
func PerformanceScore(runtime, fastest, slowest time.Duration) float64 {
	if runtime <= fastest {
		return 100
	}
	if runtime >= slowest || slowest <= fastest {
		if runtime >= slowest && slowest > fastest {
			return 0
		}
		return 100
	}
	lr := math.Log(float64(runtime))
	lf := math.Log(float64(fastest))
	ls := math.Log(float64(slowest))
	return 100 * (ls - lr) / (ls - lf)
}

// FunctionalityScore maps verification accuracy onto 0–100: meeting the
// target accuracy earns full marks; below it, credit falls off linearly.
func FunctionalityScore(accuracy, target float64) float64 {
	if target <= 0 {
		target = 1
	}
	if accuracy >= target {
		return 100
	}
	if accuracy < 0 {
		accuracy = 0
	}
	return 100 * accuracy / target
}

// Grade is a team's final grade breakdown.
type Grade struct {
	Team          string
	Performance   float64 // 0-100 before weighting
	Functionality float64
	CodeQuality   float64
	Report        float64
	Total         float64 // weighted 0-100
	BestRuntime   time.Duration
	Accuracy      float64
	Rank          int
}

// Grader combines automated measurements with manual scores.
type Grader struct {
	// TargetAccuracy is the correctness bar (course used a fixed target).
	TargetAccuracy float64
}

// GradeClass computes grades for every team with a rerun result. Ranks
// come from best runtimes; performance is scaled between the class's
// fastest and slowest qualifying submissions.
func (g *Grader) GradeClass(reruns []*RerunResult, manual map[string]ManualScores) ([]Grade, error) {
	if len(reruns) == 0 {
		return nil, ErrNoRuns
	}
	target := g.TargetAccuracy
	if target <= 0 {
		target = 0.9
	}
	sorted := append([]*RerunResult(nil), reruns...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Best != sorted[j].Best {
			return sorted[i].Best < sorted[j].Best
		}
		return sorted[i].Team < sorted[j].Team
	})
	fastest, slowest := sorted[0].Best, sorted[len(sorted)-1].Best
	grades := make([]Grade, 0, len(sorted))
	for i, r := range sorted {
		ms, ok := manual[r.Team]
		if !ok {
			ms = ManualScores{} // ungraded manual parts score zero
		}
		if err := ms.Validate(); err != nil {
			return nil, fmt.Errorf("%w (team %s)", err, r.Team)
		}
		gr := Grade{
			Team:          r.Team,
			Performance:   PerformanceScore(r.Best, fastest, slowest),
			Functionality: FunctionalityScore(r.Accuracy, target),
			CodeQuality:   ms.CodeQuality,
			Report:        ms.Report,
			BestRuntime:   r.Best,
			Accuracy:      r.Accuracy,
			Rank:          i + 1,
		}
		gr.Total = WeightPerformance*gr.Performance +
			WeightFunctionality*gr.Functionality +
			WeightCodeQuality*gr.CodeQuality +
			WeightReport*gr.Report
		grades = append(grades, gr)
	}
	return grades, nil
}

// FormatReport renders one team's grade report ("A grade report for each
// team was then generated by combining the automated and manual
// feedback", §VII).
func FormatReport(g Grade) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Grade report — %s\n", g.Team)
	fmt.Fprintf(&b, "  Rank:            #%d\n", g.Rank)
	fmt.Fprintf(&b, "  Best runtime:    %.3fs (min over grading reruns)\n", g.BestRuntime.Seconds())
	fmt.Fprintf(&b, "  Accuracy:        %.4f\n", g.Accuracy)
	fmt.Fprintf(&b, "  Performance:     %5.1f /100 (weight %.0f%%)\n", g.Performance, WeightPerformance*100)
	fmt.Fprintf(&b, "  Functionality:   %5.1f /100 (weight %.0f%%)\n", g.Functionality, WeightFunctionality*100)
	fmt.Fprintf(&b, "  Code quality:    %5.1f /100 (weight %.0f%%)\n", g.CodeQuality, WeightCodeQuality*100)
	fmt.Fprintf(&b, "  Written report:  %5.1f /100 (weight %.0f%%)\n", g.Report, WeightReport*100)
	fmt.Fprintf(&b, "  TOTAL:           %5.1f /100\n", g.Total)
	return b.String()
}
