package grading

import (
	"context"
	"strings"
	"testing"
	"time"

	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/project"
	"rai/internal/sim"
	"rai/internal/vfs"
	"rai/internal/workload"
)

// deployWithFinals runs two teams' final submissions through a full
// in-process deployment.
func deployWithFinals(t *testing.T) *sim.Deployment {
	t.Helper()
	d, err := sim.NewDeployment(sim.DeployConfig{RateLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	at := d.Clock.Now()
	for i, spec := range []project.Spec{
		{Impl: cnn.ImplParallel, Tuning: 1.0, Team: "team-fast", WithUsage: true, WithReport: true},
		{Impl: cnn.ImplTiled, Tuning: 1.3, Team: "team-slow", WithUsage: true, WithReport: true},
	} {
		c, err := d.NewClient(spec.Team, nil)
		if err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Duration(i+1) * time.Minute)
		res, err := d.RunSubmission(context.Background(), c, workload.Submission{
			Time: at, Team: spec.Team, Kind: core.KindSubmit, Spec: spec,
		})
		if err != nil || res.Status != core.StatusSucceeded {
			t.Fatalf("final submission for %s: %v %+v", spec.Team, err, res)
		}
	}
	return d
}

func TestDownloadAllFinalSubmissions(t *testing.T) {
	d := deployWithFinals(t)
	dl := &Downloader{DB: d.DB, Objects: d.Objects}
	subs, err := dl.ListFinalSubmissions()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("final submissions = %+v", subs)
	}
	dst := vfs.New()
	teams, err := dl.DownloadAll(context.Background(), dst, "/graded")
	if err != nil {
		t.Fatal(err)
	}
	if len(teams) != 2 || teams[0] != "team-fast" {
		t.Fatalf("teams = %v", teams)
	}
	// The unpacked tree contains the copied source (Listing 2 line 7).
	if !dst.Exists("/graded/team-fast/submission_code/CMakeLists.txt") {
		t.Error("submission code missing")
	}
	// Without cleanup the build intermediates remain.
	if !dst.Exists("/graded/team-fast/Makefile") {
		t.Error("Makefile missing without cleanup")
	}
}

func TestDownloadAllWithCleanup(t *testing.T) {
	d := deployWithFinals(t)
	dl := &Downloader{DB: d.DB, Objects: d.Objects, Cleanup: true}
	dst := vfs.New()
	if _, err := dl.DownloadAll(context.Background(), dst, "/graded"); err != nil {
		t.Fatal(err)
	}
	// Intermediates removed; the submission code retained.
	for _, gone := range []string{"/graded/team-fast/Makefile", "/graded/team-fast/ece408"} {
		if dst.Exists(gone) {
			t.Errorf("%s survived cleanup", gone)
		}
	}
	if !dst.Exists("/graded/team-fast/submission_code/ece408_src/new-forward.cuh") {
		t.Error("cleanup removed student source")
	}
}

func TestRerunThroughDeployment(t *testing.T) {
	// End-to-end §VI "rerun the students' submissions multiple times":
	// RerunFunc drives real resubmissions and the min is recorded.
	d := deployWithFinals(t)
	runCount := 0
	rerun := func(team string) (time.Duration, float64, error) {
		runCount++
		c, err := d.NewClient(team, nil)
		if err != nil {
			return 0, 0, err
		}
		d.Clock.Advance(time.Minute) // clear the rate limit between reruns
		res, err := d.RunSubmission(context.Background(), c, workload.Submission{
			Time: d.Clock.Now(), Team: team, Kind: core.KindSubmit,
			Spec: project.Spec{Impl: cnn.ImplParallel, Tuning: 1.0, Team: team, WithUsage: true, WithReport: true},
		})
		if err != nil {
			return 0, 0, err
		}
		return res.InternalTimer, res.Accuracy, nil
	}
	res, err := RerunMin("team-fast", 3, rerun)
	if err != nil {
		t.Fatal(err)
	}
	if runCount != 3 || len(res.Runs) != 3 {
		t.Fatalf("reruns = %d/%d", runCount, len(res.Runs))
	}
	if res.Best <= 0 || res.Accuracy != 1.0 {
		t.Fatalf("best = %v acc = %v", res.Best, res.Accuracy)
	}
	report := FormatReport(Grade{Team: "team-fast", BestRuntime: res.Best, Accuracy: res.Accuracy, Rank: 1})
	if !strings.Contains(report, "team-fast") {
		t.Error("report rendering")
	}
}
